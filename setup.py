"""Legacy shim so `pip install -e .` works without the `wheel` package
(this environment is offline).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
