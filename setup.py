"""Compatibility shim for fully offline machines whose setuptools lacks a
bundled bdist_wheel (no `wheel` package, no network for build isolation):
there, `python setup.py develop` still produces an editable install.
Everywhere else use `pip install -e .`.  All project metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
