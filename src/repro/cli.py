"""The ``repro`` command line — run specs and campaigns from JSON.

Nine subcommands wrap the experiment front door::

    repro kinds                               # registered experiment kinds
    repro run    --spec examples/specs/dna_assay.json [--backend vectorized]
    repro sweep  --campaign campaign.json --executor process --out results/
    repro sweep  --spec base.json --grid concentration=1e-7,1e-6,1e-5 \\
                 --replicates 4 --store jsonl --out results/
    repro sweep  --resume results/            # finish an interrupted sweep
    repro report  --store results/ --metrics discrimination_ratio
    repro analyze results/ [--analysis dose_response] [--json | --markdown]
    repro serve   --cache-dir cache/ --jobs-root jobs/
    repro submit  --campaign campaign.json --wait
    repro lint    src/ [--json] [--select D,S] [--list-rules]
    repro trace   [--spec spec.json] [--flip 42,43] [--render waveform] [--check]

``run`` executes one spec and prints its scalar metrics (``--json`` for
the full ResultSet payload).  ``sweep`` builds a
:class:`~repro.campaigns.spec.CampaignSpec` — either loaded whole from
``--campaign`` or assembled from ``--spec`` plus ``--grid``/``--zip``/
``--replicates`` flags — picks backend/executor/store from flags, and
prints the per-point metrics table.  ``--executor batched`` compiles
same-spec vectorized-kind point groups into chip-batched engine calls
(bit-identical per point to serial dispatch); ``--flush-every N``
buffers the jsonl store's appends to cut per-point fsync overhead.  ``report`` reloads a finished
JSONL campaign directory and prints the same table without re-running
anything.  ``analyze`` runs a registered statistical analysis
(:mod:`repro.inference`) over a stored campaign — dose–response fits
with LoD and bootstrap CIs, detection ROC, chip-yield statistics — and
emits the report as text, markdown or JSON; reports are bit-identical
however the campaign was executed.

``sweep --cache-dir`` routes the campaign through the content-addressed
result cache (:mod:`repro.service`): points already computed under the
same ``(spec, seed, backend, version)`` key replay from disk, duplicate
points compute once.  ``sweep --resume <dir>`` finishes an interrupted
JSONL campaign in place, skipping every point its partial
``results.jsonl`` already holds — bit-identically to an uninterrupted
run.  ``serve`` starts the background job service (HTTP/JSON, see
:mod:`repro.service.server` for the endpoint table) and ``submit``
sends a campaign to it.  ``lint`` runs the AST-based determinism/purity
linter (:mod:`repro.lint`) over the tree — the static half of the
bit-parity contract, wired into CI at zero findings.  ``trace`` replays
a spec's digital readout under a cycle-accurate recorder
(:mod:`repro.trace`) and renders the capture as an event table, ASCII
waveform or per-bit frame dump, optionally injecting bit corruption
(``--flip``) and checking readout invariants (``--check``).

Installed as a console script (``repro``) and runnable as
``python -m repro`` from a plain checkout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from .campaigns import (
    EXECUTORS,
    STORES,
    CampaignSpec,
    JsonlResultStore,
    make_executor,
    make_store,
    manifest_summary,
    metrics_table,
    run_campaign,
)
from .core.tables import render_kv
from .experiments import (
    BACKENDS,
    Runner,
    experiment_kinds,
    spec_from_dict,
    validate_backend,
)
from .lint.cli import add_lint_parser
from .trace.cli import add_trace_parser


def _load_json(path: str) -> Any:
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SystemExit(f"repro: no such file: {path}")
    except OSError as error:  # directory, permissions, ...
        raise SystemExit(f"repro: cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        raise SystemExit(f"repro: {path} is not valid JSON: {error}")


def _parse_value(token: str) -> Any:
    """Axis/field values: JSON literals when they parse, strings otherwise."""
    try:
        return json.loads(token)
    except json.JSONDecodeError:
        return token


def _split_values(text: str) -> list[str]:
    """Split on top-level commas only, so JSON list and string values
    work: ``"[1,2],[1,2,3]"`` -> ``["[1,2]", "[1,2,3]"]`` and commas
    inside quoted strings never split."""
    items: list[str] = []
    depth, start = 0, 0
    in_string = False
    escaped = False
    for i, char in enumerate(text):
        if in_string:
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
        elif char in "[{":
            depth += 1
        elif char in "]}":
            depth -= 1
        elif char == "," and depth == 0:
            items.append(text[start:i])
            start = i + 1
    items.append(text[start:])
    return items


def _parse_axis(option: str, tokens: Sequence[str]) -> dict[str, tuple]:
    """``field=v1,v2,...`` (repeatable) -> {field: (v1, v2, ...)}.

    Values are JSON literals when they parse (including lists for
    tuple-valued spec fields, split only on top-level commas) and
    strings otherwise.
    """
    axes: dict[str, tuple] = {}
    for token in tokens:
        name, sep, values = token.partition("=")
        if not sep or not name or not values:
            raise SystemExit(f"repro: {option} expects field=v1,v2,..., got {token!r}")
        if name in axes:
            raise SystemExit(f"repro: duplicate {option} axis {name!r}")
        axes[name] = tuple(_parse_value(item) for item in _split_values(values))
    return axes


def _metrics_list(option_value: Optional[str]) -> Optional[list[str]]:
    if option_value is None:
        return None
    return [name.strip() for name in option_value.split(",") if name.strip()]


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------
def _cmd_kinds(args: argparse.Namespace) -> int:
    """Each kind with its sweepable axes (the spec's dataclass fields) —
    every listed field works with ``sweep --grid``/``--zip``, so wafer
    axes like ``reticle_sigma`` are discoverable without reading code."""
    import dataclasses

    from .experiments import experiment_type

    width = max(len(kind) for kind in experiment_kinds())
    for kind in experiment_kinds():
        fields = [field.name for field in dataclasses.fields(experiment_type(kind))]
        print(f"{kind:<{width}}  {','.join(fields)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = spec_from_dict(_load_json(args.spec))
        validate_backend(spec.kind, args.backend)
    except (KeyError, TypeError, ValueError) as error:
        raise SystemExit(f"repro: {error}")
    runner = Runner(seed=args.seed)
    result = runner.run(spec, backend=args.backend)
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(result.summary())
    print(render_kv("metrics", sorted(result.metrics.items())))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.resume:
        return _sweep_resume(args)
    if args.ignore_version:
        raise SystemExit("repro: --ignore-version only applies with --resume")
    # Setup (campaign construction, executor/store resolution) fails
    # with clean one-line messages; errors raised *during* execution
    # are real bugs and keep their tracebacks.
    try:
        if args.campaign:
            builder_flags = [
                flag
                for flag, value in (
                    ("--spec", args.spec),
                    ("--grid", args.grid),
                    ("--zip", args.zip),
                    ("--replicates", args.replicates != 1),
                    ("--name", args.name),
                )
                if value
            ]
            if builder_flags:
                raise SystemExit(
                    f"repro: --campaign already defines the sweep; "
                    f"drop {', '.join(builder_flags)} or build the campaign from --spec"
                )
            campaign = CampaignSpec.from_dict(_load_json(args.campaign))
        else:
            if not args.spec:
                raise SystemExit("repro: sweep needs --campaign or --spec")
            campaign = CampaignSpec(
                base=spec_from_dict(_load_json(args.spec)),
                grid=_parse_axis("--grid", args.grid),
                zip=_parse_axis("--zip", args.zip),
                replicates=args.replicates,
                name=args.name,
            )
        # Per-point spec validation (axis values hitting each spec's
        # __post_init__) and backend-workload support fire first — with
        # clean messages, and before make_store can touch (with
        # --force, truncate) the out directory.
        campaign.compile(args.seed)
        validate_backend(
            campaign.base.kind,
            args.backend if args.backend is not None else campaign.backend,
        )
        executor = make_executor(args.executor, workers=args.workers)
        cache = None
        if args.cache_dir:
            from .service import ResultCache

            cache = ResultCache(root=args.cache_dir)
        store = make_store(
            args.store, out=args.out, overwrite=args.force, flush_every=args.flush_every
        )
    except (FileExistsError, KeyError, TypeError, ValueError) as error:
        raise SystemExit(f"repro: {error}")
    result = run_campaign(
        campaign,
        seed=args.seed,
        executor=executor,
        store=store,
        backend=args.backend,
        cache=cache,
    )
    return _print_sweep_result(args, result)


def _print_sweep_result(args: argparse.Namespace, result: Any) -> int:
    metrics = _metrics_list(args.metrics)
    if args.json:
        print(json.dumps(result.manifest, indent=2, sort_keys=True))
        return 0
    print(manifest_summary(result.manifest))
    if "cache" in result.manifest:
        block = result.manifest["cache"]
        print(
            f"cache: {block['hits']} hits, {block['computed']} computed, "
            f"{block['replayed']} replayed ({block['n_unique']}/{block['n_points']} unique)"
        )
    print()
    print(result.table(metrics=metrics))
    if args.out:
        print(f"\nresults stored under {args.out}")
    return 0


def _sweep_resume(args: argparse.Namespace) -> int:
    conflicts = [
        flag
        for flag, value in (
            ("--campaign", args.campaign),
            ("--spec", args.spec),
            ("--grid", args.grid),
            ("--zip", args.zip),
            ("--replicates", args.replicates != 1),
            ("--name", args.name),
            ("--seed", args.seed != 0),
            ("--store", args.store),
            ("--out", args.out),
            ("--force", args.force),
            ("--backend", args.backend),
        )
        if value
    ]
    if conflicts:
        raise SystemExit(
            f"repro: --resume replays the campaign recorded in the directory's "
            f"campaign.json; drop {', '.join(conflicts)}"
        )
    from .service import resume_campaign

    try:
        result = resume_campaign(
            args.resume,
            executor=args.executor,
            workers=args.workers,
            flush_every=args.flush_every,
            cache=args.cache_dir or None,
            ignore_version=args.ignore_version,
        )
    except (FileExistsError, FileNotFoundError, KeyError, TypeError, ValueError) as error:
        raise SystemExit(f"repro: {error}")
    resumed = result.manifest.get("resumed", {})
    print(
        f"resumed {args.resume}: {resumed.get('previously_completed', 0)} points "
        f"already done, {resumed.get('executed', 0)} executed now"
    )
    return _print_sweep_result(args, result)


def _cmd_report(args: argparse.Namespace) -> int:
    store = _load_campaign_store(args.store)
    if args.json:
        print(json.dumps(store.manifest or {}, indent=2, sort_keys=True))
        return 0
    if store.manifest:
        print(manifest_summary(store.manifest))
        print()
    print(metrics_table(store, metrics=_metrics_list(args.metrics)))
    return 0


def _load_campaign_store(path: str) -> JsonlResultStore:
    try:
        return JsonlResultStore.load(path)
    except FileNotFoundError as error:
        raise SystemExit(f"repro: {error}")
    except json.JSONDecodeError as error:  # before ValueError: its subclass
        raise SystemExit(f"repro: {path} holds corrupt campaign records: {error}")
    except ValueError as error:  # e.g. manifest schema mismatch
        raise SystemExit(f"repro: {error}")


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .inference import analysis_from_dict, analysis_kinds, analyze

    if args.list:
        for kind in analysis_kinds():
            print(kind)
        return 0
    if not args.store:
        raise SystemExit("repro: analyze needs a campaign directory (or --list)")
    store = _load_campaign_store(args.store)
    overrides = {}
    for token in args.set:
        name, sep, value = token.partition("=")
        if not sep or not name:
            raise SystemExit(f"repro: --set expects field=value, got {token!r}")
        overrides[name] = _parse_value(value)
    try:
        if args.spec:
            if args.analysis:
                raise SystemExit("repro: pass --analysis or --spec, not both")
            analysis = analysis_from_dict(_load_json(args.spec))
            report = analyze(store, analysis, **overrides)
        else:
            report = analyze(store, args.analysis, **overrides)
    except (KeyError, TypeError, ValueError) as error:
        raise SystemExit(f"repro: {error}")
    if args.json:
        rendered = report.to_json(indent=2) + "\n"
    elif args.markdown:
        rendered = report.to_markdown()
    else:
        rendered = report.to_text() + "\n"
    if args.out:
        Path(args.out).write_text(rendered, encoding="utf-8")
        print(f"analysis written to {args.out}")
        return 0
    print(rendered, end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import serve

    try:
        return serve(
            args.host,
            args.port,
            workers=args.workers,
            cache=args.cache_dir or None,
            root=args.jobs_root or None,
            verbose=args.verbose,
        )
    except OSError as error:  # port in use, bad cache dir, ...
        raise SystemExit(f"repro: {error}")
    except ValueError as error:  # cache schema mismatch, bad workers
        raise SystemExit(f"repro: {error}")


def _cmd_submit(args: argparse.Namespace) -> int:
    import urllib.error

    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    campaign = _load_json(args.campaign)
    options: dict[str, Any] = {
        "seed": args.seed,
        "executor": args.executor,
        "flush_every": args.flush_every,
    }
    if args.workers is not None:
        options["workers"] = args.workers
    if args.backend is not None:
        options["backend"] = args.backend
    try:
        job = client.submit(campaign, **options)
        if args.wait:
            job = client.wait(job["id"], timeout=args.timeout)
    except ServiceError as error:
        raise SystemExit(f"repro: {error}")
    except urllib.error.URLError as error:
        raise SystemExit(f"repro: cannot reach {args.url}: {error.reason}")
    except TimeoutError as error:
        raise SystemExit(f"repro: {error}")
    if args.json:
        print(json.dumps(job, indent=2, sort_keys=True))
    else:
        line = f"{job['id']}: {job['status']} ({job['n_done']}/{job['n_points']} points)"
        if job.get("cache"):
            block = job["cache"]
            line += f", cache {block['hits']} hits / {block['computed']} computed"
        print(line)
        if job.get("error"):
            print(f"error: {job['error']}")
    return 0 if job["status"] in ("queued", "running", "done") else 1


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run CMOS-biosensor experiment specs and campaigns from JSON.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    kinds = sub.add_parser("kinds", help="list registered experiment kinds")
    kinds.set_defaults(func=_cmd_kinds)

    run = sub.add_parser("run", help="execute one spec JSON and print its metrics")
    run.add_argument("--spec", required=True, help="path to an ExperimentSpec JSON file")
    run.add_argument("--seed", type=int, default=0, help="Runner root seed (default 0)")
    run.add_argument("--backend", choices=BACKENDS, default=None, help="compute backend")
    run.add_argument("--json", action="store_true", help="print the full ResultSet JSON")
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser("sweep", help="run a declarative campaign")
    sweep.add_argument("--campaign", help="path to a CampaignSpec JSON file")
    sweep.add_argument("--spec", help="base ExperimentSpec JSON (with --grid/--zip)")
    sweep.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="FIELD=V1,V2,...",
        help="cartesian-product axis (repeatable)",
    )
    sweep.add_argument(
        "--zip",
        action="append",
        default=[],
        metavar="FIELD=V1,V2,...",
        help="lockstep axis (repeatable, equal lengths)",
    )
    sweep.add_argument("--replicates", type=int, default=1, help="seed-varied repeats per point")
    sweep.add_argument("--name", default="", help="campaign name for the manifest")
    sweep.add_argument("--seed", type=int, default=0, help="campaign root seed (default 0)")
    sweep.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="serial",
        help="serial/thread/process, or 'batched' to compile vectorized-kind "
        "point groups into chip-batched engine calls",
    )
    sweep.add_argument("--workers", type=int, default=None, help="worker count (default: cores)")
    sweep.add_argument("--store", choices=STORES, default=None, help="result store")
    sweep.add_argument("--out", default=None, help="directory for the jsonl store")
    sweep.add_argument(
        "--flush-every",
        type=int,
        default=1,
        metavar="N",
        help="jsonl buffered append mode: flush every N completed points "
        "(default 1 = flush per point)",
    )
    sweep.add_argument(
        "--force",
        action="store_true",
        help="allow --out to replace a directory holding a finalized campaign",
    )
    sweep.add_argument("--backend", choices=BACKENDS, default=None, help="compute backend")
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result cache: replay already-computed points, "
        "store newly computed ones",
    )
    sweep.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="finish an interrupted campaign directory in place (skips points "
        "its partial results.jsonl already holds)",
    )
    sweep.add_argument(
        "--ignore-version",
        action="store_true",
        help="with --resume: accept a directory started by a different engine "
        "version (the finished results.jsonl then mixes versions)",
    )
    sweep.add_argument("--metrics", default=None, help="comma-separated metric columns")
    sweep.add_argument("--json", action="store_true", help="print the manifest JSON instead")
    sweep.set_defaults(func=_cmd_sweep)

    report = sub.add_parser("report", help="re-print the table of a stored campaign")
    report.add_argument("--store", required=True, help="campaign directory (jsonl store)")
    report.add_argument("--metrics", default=None, help="comma-separated metric columns")
    report.add_argument("--json", action="store_true", help="print the manifest JSON instead")
    report.set_defaults(func=_cmd_report)

    analyze = sub.add_parser(
        "analyze", help="run a statistical analysis over a stored campaign"
    )
    analyze.add_argument(
        "store", nargs="?", default=None, help="campaign directory (jsonl store)"
    )
    analyze.add_argument(
        "--analysis",
        default=None,
        help="analysis kind (default: inferred from the campaign; see --list)",
    )
    analyze.add_argument("--spec", help="path to a full AnalysisSpec JSON file")
    analyze.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override an analysis spec field (repeatable)",
    )
    analyze.add_argument("--list", action="store_true", help="list registered analysis kinds")
    analyze.add_argument("--json", action="store_true", help="emit the report as JSON")
    analyze.add_argument("--markdown", action="store_true", help="emit the report as markdown")
    analyze.add_argument("--out", default=None, help="write the report to a file instead of stdout")
    analyze.set_defaults(func=_cmd_analyze)

    serve = sub.add_parser("serve", help="run the campaign job service (HTTP/JSON)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8750, help="bind port (default 8750)")
    serve.add_argument(
        "--workers", type=int, default=1, help="campaign worker threads (default 1)"
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result cache shared by all jobs",
    )
    serve.add_argument(
        "--jobs-root",
        default=None,
        metavar="DIR",
        help="give each job a jsonl directory under DIR/<job-id> "
        "(default: results stay in memory)",
    )
    serve.add_argument("--verbose", action="store_true", help="log every request")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser("submit", help="send a campaign to a running service")
    submit.add_argument("--campaign", required=True, help="path to a CampaignSpec JSON file")
    submit.add_argument(
        "--url", default="http://127.0.0.1:8750", help="service base URL"
    )
    submit.add_argument("--seed", type=int, default=0, help="campaign root seed (default 0)")
    submit.add_argument(
        "--executor",
        choices=[name for name in EXECUTORS if name != "async"],
        default="serial",
        help="executor the service runs the job with (jobs are already "
        "asynchronous server-side)",
    )
    submit.add_argument("--workers", type=int, default=None, help="worker count for the job")
    submit.add_argument("--backend", choices=BACKENDS, default=None, help="compute backend")
    submit.add_argument(
        "--flush-every", type=int, default=1, metavar="N", help="jsonl buffered append mode"
    )
    submit.add_argument(
        "--wait", action="store_true", help="poll until the job finishes before returning"
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0, help="request/wait timeout in seconds"
    )
    submit.add_argument("--json", action="store_true", help="print the status snapshot JSON")
    submit.set_defaults(func=_cmd_submit)

    add_lint_parser(sub)
    add_trace_parser(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # `repro report ... | head` is normal usage; die quietly.  Point
        # stdout at devnull so interpreter shutdown doesn't re-raise.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
