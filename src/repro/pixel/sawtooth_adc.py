"""In-pixel current-to-frequency A/D conversion (Fig. 3).

"An integrating capacitor Cint is charged by the sensor current.  When
the switching level of the comparator is reached, a reset pulse is
generated.  The measured frequency is approximately proportional to the
sensor current.  For A/D conversion, the number of reset pulses is
counted with a digital counter within a given time frame."

The cycle period decomposes exactly as the Fig. 3 waveform sketch:

    tau1      ramp: Cint charges from V_reset to the switching threshold
    tau_cmp   comparator propagation delay (ramp continues)
    tau_delay delay-stage pulse width: Mres discharges Cint
    tau2 = tau1 + tau_cmp + tau_delay   (full period)

With nominal values (Cint = 100 fF, 1 V swing) the frequency runs from
10 Hz at 1 pA to ~1 MHz at 100 nA; the fixed dead time compresses the
top decade and counting quantisation dominates the bottom decade —
which is why the chip counts over an adjustable time frame.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.rng import RngLike, ensure_rng
from ..core.signals import Trace
from ..core.units import fF, ns
from ..devices.capacitor import Capacitor
from ..devices.comparator import Comparator


@dataclass
class SawtoothAdc:
    """One pixel's current-to-frequency converter.

    Parameters
    ----------
    cint:
        Integration capacitor (leakage included).
    comparator:
        Switching-threshold comparator; its ``threshold_v`` is the level
        above the reset baseline.
    v_reset:
        Voltage Cint is discharged to during the reset pulse.
    tau_delay_s:
        Delay-stage pulse width (reset duration).
    leakage_a:
        Constant parasitic discharge current at the integration node
        (junction leakage of Mres and the follower).
    """

    cint: Capacitor = field(default_factory=lambda: Capacitor(100 * fF))
    comparator: Comparator = field(
        default_factory=lambda: Comparator(threshold_v=1.0, delay_s=50 * ns)
    )
    v_reset: float = 0.0
    tau_delay_s: float = 100 * ns
    leakage_a: float = 0.0

    def __post_init__(self) -> None:
        if self.tau_delay_s <= 0:
            raise ValueError("delay-stage pulse width must be positive")
        if self.leakage_a < 0:
            raise ValueError("leakage must be non-negative")
        if self.comparator.effective_threshold <= self.v_reset:
            raise ValueError("comparator threshold must sit above the reset level")

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def swing_v(self) -> float:
        """Integration swing from reset level to nominal threshold."""
        return self.comparator.effective_threshold - self.v_reset

    def net_current(self, i_sensor: float) -> float:
        """Charging current after subtracting node leakage."""
        return i_sensor - self.leakage_a

    def ramp_time(self, i_sensor: float, swing: float | None = None) -> float:
        """tau1: time to slew Cint across the swing at ``i_sensor``.

        Raises ``ValueError`` when the current cannot reach the
        threshold (below the leakage floor) — the pixel then never
        fires, which callers map to a zero count.
        """
        net = self.net_current(i_sensor)
        if net <= 0:
            raise ValueError(
                f"sensor current {i_sensor} A at or below leakage floor {self.leakage_a} A"
            )
        swing = self.swing_v if swing is None else swing
        return self.cint.charge_time(net, swing, start_v=self.v_reset)

    def dead_time(self) -> float:
        """Per-cycle fixed time: comparator delay + reset pulse."""
        return self.comparator.delay_s + self.tau_delay_s

    def cycle_period(self, i_sensor: float) -> float:
        """tau2 of Fig. 3: one full sawtooth period."""
        return self.ramp_time(i_sensor) + self.dead_time()

    def frequency(self, i_sensor: float) -> float:
        """Reset-pulse frequency; 0 if the pixel cannot fire."""
        try:
            return 1.0 / self.cycle_period(i_sensor)
        except ValueError:
            return 0.0

    def ideal_frequency(self, i_sensor: float) -> float:
        """The textbook I/(Cint*swing) line the paper's 'approximately
        proportional' refers to."""
        return max(0.0, i_sensor) / (self.cint.capacitance_f * self.swing_v)

    def current_from_frequency(self, frequency_hz: float) -> float:
        """Controller-side inverse transfer (dead-time corrected).

        I = C*dV / (1/f - dead) — what the chip's host software applies
        to convert counted frequency back into sensor current.
        """
        if frequency_hz <= 0:
            return 0.0
        period = 1.0 / frequency_hz
        ramp = period - self.dead_time()
        if ramp <= 0:
            raise ValueError(f"frequency {frequency_hz} Hz exceeds the dead-time limit")
        return self.cint.capacitance_f * self.swing_v / ramp + self.leakage_a

    def max_frequency(self) -> float:
        """Dead-time-limited ceiling 1/(tau_cmp + tau_delay)."""
        return 1.0 / self.dead_time()

    # ------------------------------------------------------------------
    # Counting (the A/D conversion)
    # ------------------------------------------------------------------
    def count_in_frame(
        self,
        i_sensor: float,
        frame_s: float,
        rng: RngLike = None,
        start_phase: float | None = None,
    ) -> int:
        """Number of reset pulses within a counting frame.

        Includes the random starting phase of the sawtooth relative to
        the frame window and the comparator threshold noise (cycle-to-
        cycle period jitter).  This *is* the digital pixel output.
        """
        if frame_s <= 0:
            raise ValueError("frame must be positive")
        generator = ensure_rng(rng)
        try:
            base_ramp = self.ramp_time(i_sensor)
        except ValueError:
            return 0
        dead = self.dead_time()
        noise_sigma = self.comparator.noise_rms_v
        if start_phase is None:
            start_phase = float(generator.uniform(0.0, 1.0))
        elif not 0.0 <= start_phase <= 1.0:
            raise ValueError("start_phase must lie in [0, 1]")
        # Fast path: noiseless comparator -> closed-form count.
        if noise_sigma == 0:
            period = base_ramp + dead
            return int((frame_s / period) + start_phase) if period > 0 else 0
        period = base_ramp + dead
        expected = frame_s / period
        if expected > 2000.0:
            # Gaussian limit of the per-cycle jitter: each cycle's ramp
            # varies by sigma_T = ramp * (sigma_V / swing); the frame
            # accumulates sqrt(N) of them.  Exact enough above ~2k
            # counts (jitter << quantisation there anyway).
            sigma_cycle = base_ramp * (noise_sigma / self.swing_v)
            sigma_count = math.sqrt(expected) * (sigma_cycle / period)
            jitter = float(generator.normal(0.0, sigma_count))
            return max(0, int(expected + start_phase + jitter))
        # Event-driven: each cycle's swing is perturbed by threshold noise.
        elapsed = -start_phase * (base_ramp + dead)
        count = 0
        net = self.net_current(i_sensor)
        slope = net / self.cint.capacitance_f
        max_cycles = int(frame_s / (base_ramp + dead)) + 16
        for _ in range(max_cycles):
            swing = self.swing_v + float(generator.normal(0.0, noise_sigma))
            swing = max(swing, 0.05 * self.swing_v)
            try:
                ramp = self.cint.charge_time(net, swing, start_v=self.v_reset)
            except ValueError:
                break
            elapsed += ramp + dead
            if elapsed > frame_s:
                break
            count += 1
        return count

    def measured_frequency(
        self, i_sensor: float, frame_s: float, rng: RngLike = None
    ) -> float:
        """count / frame — the quantised frequency estimate."""
        return self.count_in_frame(i_sensor, frame_s, rng=rng) / frame_s

    # ------------------------------------------------------------------
    # Waveform generation (the Fig. 3 sketch)
    # ------------------------------------------------------------------
    def waveform(self, i_sensor: float, duration: float, dt: float) -> Trace:
        """Integration-node voltage over time: ramps, crossing, reset.

        Used by the Fig. 3 benchmark to regenerate the sawtooth sketch
        with its tau1 / tau2 / tau_delay annotations.
        """
        if duration <= 0 or dt <= 0:
            raise ValueError("duration and dt must be positive")
        samples = np.empty(int(round(duration / dt)))
        v = self.v_reset
        state = "ramp"
        timer = 0.0
        net = self.net_current(i_sensor)
        threshold = self.comparator.effective_threshold
        g_leak = self.cint.leakage_conductance_s
        for i in range(len(samples)):
            if state == "ramp":
                dv = (net - g_leak * v) / self.cint.capacitance_f * dt if net > 0 else 0.0
                v = v + dv
                if v >= threshold:
                    state = "delay"
                    timer = self.comparator.delay_s + self.tau_delay_s
            elif state == "delay":
                # Comparator delay: keep ramping; reset pulse: discharge.
                if timer > self.tau_delay_s:
                    dv = (net - g_leak * v) / self.cint.capacitance_f * dt
                    v = v + dv
                else:
                    v = self.v_reset + (v - self.v_reset) * math.exp(-dt / (0.05 * self.tau_delay_s))
                timer -= dt
                if timer <= 0:
                    v = self.v_reset
                    state = "ramp"
            samples[i] = v
        return Trace(samples, dt=dt, label=f"sawtooth @ {i_sensor:.3g} A")

    def reset_pulse_times(self, i_sensor: float, duration: float) -> np.ndarray:
        """Event times of reset pulses within [0, duration) (noiseless)."""
        try:
            period = self.cycle_period(i_sensor)
        except ValueError:
            return np.empty(0)
        first = self.ramp_time(i_sensor) + self.comparator.delay_s
        times = np.arange(first, duration, period)
        return times
