"""Digital counter / shift register of the pixel (Fig. 3 right half).

"For A/D conversion, the number of reset pulses is counted with a
digital counter within a given time frame."  The same flip-flops are
re-used as a shift register for serial readout — the scheme the 6-pin
interface relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PixelCounter:
    """An n-bit counter with selectable overflow behaviour.

    Parameters
    ----------
    bits:
        Counter width (the real chips use 16-24 bits to cover the
        current dynamic range at long frames).
    saturate:
        True: hold at full scale on overflow (easy to detect off-chip);
        False: wrap modulo 2^bits (cheaper hardware, ambiguous reading).
    """

    bits: int = 20
    saturate: bool = True
    _value: int = field(default=0, repr=False)
    _overflowed: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 64:
            raise ValueError("counter width must lie in [1, 64]")

    @property
    def full_scale(self) -> int:
        return (1 << self.bits) - 1

    @property
    def value(self) -> int:
        return self._value

    @property
    def overflowed(self) -> bool:
        return self._overflowed

    def reset(self) -> None:
        self._value = 0
        self._overflowed = False

    def clock(self, pulses: int = 1) -> None:
        """Advance by ``pulses`` reset events."""
        if pulses < 0:
            raise ValueError("pulse count must be non-negative")
        raw = self._value + pulses
        if raw > self.full_scale:
            self._overflowed = True
            self._value = self.full_scale if self.saturate else raw & self.full_scale
        else:
            self._value = raw

    # ------------------------------------------------------------------
    # Shift-register readout
    # ------------------------------------------------------------------
    def to_bits(self) -> list[int]:
        """MSB-first bit vector, as shifted out on the serial pin."""
        return [(self._value >> i) & 1 for i in range(self.bits - 1, -1, -1)]

    @classmethod
    def from_bits(cls, bits_vector: list[int], bits: int | None = None, saturate: bool = True) -> "PixelCounter":
        """Rebuild a counter value from a shifted-in bit vector."""
        if not bits_vector:
            raise ValueError("empty bit vector")
        if any(b not in (0, 1) for b in bits_vector):
            raise ValueError("bit vector must contain only 0/1")
        width = bits if bits is not None else len(bits_vector)
        if len(bits_vector) != width:
            raise ValueError(f"bit vector length {len(bits_vector)} != width {width}")
        counter = cls(bits=width, saturate=saturate)
        value = 0
        for bit in bits_vector:
            value = (value << 1) | bit
        counter._value = value
        return counter

    def shift_out(self, incoming: int = 0) -> tuple[int, "PixelCounter"]:
        """One shift-register clock: returns (msb_out, self) and shifts
        ``incoming`` into the LSB — models the daisy-chained column
        readout where pixel counters form one long register."""
        if incoming not in (0, 1):
            raise ValueError("incoming bit must be 0 or 1")
        msb = (self._value >> (self.bits - 1)) & 1
        self._value = ((self._value << 1) & self.full_scale) | incoming
        return msb, self


def required_bits(max_frequency_hz: float, frame_s: float) -> int:
    """Counter width needed so the largest expected count fits."""
    if max_frequency_hz <= 0 or frame_s <= 0:
        raise ValueError("frequency and frame must be positive")
    import math

    max_count = int(max_frequency_hz * frame_s) + 1
    return max(1, math.ceil(math.log2(max_count + 1)))
