"""A complete DNA sensor pixel: electrode + regulation loop + ADC + counter.

This is the full Fig. 3 block: the potentiostat pins the electrode, the
sensor current charges Cint, the comparator/delay stage generate reset
pulses, the counter accumulates them over the frame.  Pixel-to-pixel
variation (comparator offset, Cint tolerance, leakage) is drawn per
instance; the chip-level auto-calibration measures and corrects it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.process import ProcessSpec, default_process
from ..core.rng import RngLike, ensure_rng
from ..core.units import fF, ns
from ..devices.capacitor import Capacitor
from ..devices.comparator import Comparator
from ..electrochem.potentiostat import Potentiostat
from ..electrochem.redox_cycling import RedoxCyclingSensor
from .counter import PixelCounter
from .sawtooth_adc import SawtoothAdc

#: Leakage level above which a pixel counts as dead — it exceeds the
#: smallest measurable sensor current, so the ADC can never fire.
#: Shared with the vectorized backend (repro.engine.kernels).
DEAD_PIXEL_LEAKAGE_A = 1e-12


@dataclass
class PixelVariation:
    """Per-pixel manufacturing spread, drawn once per instance."""

    comparator_offset_v: float = 0.0
    cint_relative_error: float = 0.0
    leakage_a: float = 0.0

    @classmethod
    def draw(
        cls,
        rng: RngLike = None,
        sigma_offset_v: float = 0.008,
        sigma_cint_rel: float = 0.015,
        leakage_mean_a: float = 2.0e-15,
    ) -> "PixelVariation":
        generator = ensure_rng(rng)
        return cls(
            comparator_offset_v=float(generator.normal(0.0, sigma_offset_v)),
            cint_relative_error=float(generator.normal(0.0, sigma_cint_rel)),
            leakage_a=float(abs(generator.normal(leakage_mean_a, 0.5 * leakage_mean_a))),
        )


class DnaSensorPixel:
    """One of the 16x8 sensor sites.

    Parameters
    ----------
    variation:
        This pixel's parameter deviations.
    cint_nominal:
        Design value of the integration capacitor.
    swing_v:
        Nominal comparator threshold above the reset level.
    frame_s:
        Default counting frame.
    """

    def __init__(
        self,
        variation: PixelVariation | None = None,
        cint_nominal: float = 100 * fF,
        swing_v: float = 1.0,
        tau_delay_s: float = 100 * ns,
        comparator_delay_s: float = 50 * ns,
        counter_bits: int = 24,
        sensor: RedoxCyclingSensor | None = None,
        potentiostat: Potentiostat | None = None,
    ) -> None:
        self.variation = variation or PixelVariation()
        cint = Capacitor(cint_nominal * (1.0 + self.variation.cint_relative_error))
        comparator = Comparator(
            threshold_v=swing_v,
            offset_v=self.variation.comparator_offset_v,
            delay_s=comparator_delay_s,
            noise_rms_v=0.002,
        )
        self.adc = SawtoothAdc(
            cint=cint,
            comparator=comparator,
            v_reset=0.0,
            tau_delay_s=tau_delay_s,
            leakage_a=self.variation.leakage_a,
        )
        self.counter = PixelCounter(bits=counter_bits)
        self.sensor = sensor or RedoxCyclingSensor()
        self.potentiostat = potentiostat or Potentiostat()
        self.gain_correction = 1.0  # set by chip auto-calibration

    # ------------------------------------------------------------------
    @property
    def conversion_gain(self) -> float:
        """Nominal counts-per-ampere-second: 1/(Cint*swing)."""
        return 1.0 / (self.adc.cint.capacitance_f * self.adc.swing_v)

    def convert_current(self, i_sensor: float, frame_s: float, rng: RngLike = None) -> int:
        """Digitise a sensor current: count reset pulses over the frame."""
        self.counter.reset()
        pulses = self.adc.count_in_frame(i_sensor, frame_s, rng=rng)
        self.counter.clock(pulses)
        return self.counter.value

    def measure_concentration(
        self, surface_concentration: float, frame_s: float, rng: RngLike = None
    ) -> int:
        """Full transduction: concentration -> current -> count."""
        current = self.sensor.current(surface_concentration)
        return self.convert_current(current, frame_s, rng=rng)

    def current_estimate(self, count: int, frame_s: float) -> float:
        """Host-side conversion of a count back to amperes, using the
        nominal gain and this pixel's stored calibration factor."""
        if frame_s <= 0:
            raise ValueError("frame must be positive")
        if count < 0:
            raise ValueError("count must be non-negative")
        frequency = count / frame_s
        nominal_cint = self.adc.cint.capacitance_f / (1.0 + self.variation.cint_relative_error)
        raw = frequency * nominal_cint * 1.0  # nominal swing is 1 V by design
        return raw * self.gain_correction

    # ------------------------------------------------------------------
    # Auto-calibration ("auto-calibration circuits" in the paper's
    # periphery list): inject a known reference current, compare the
    # count with the expected one, store the correction.
    # ------------------------------------------------------------------
    def calibrate(self, i_reference: float, frame_s: float, rng: RngLike = None) -> float:
        """Run the calibration cycle; returns (and stores) the gain
        correction factor."""
        if i_reference <= 0:
            raise ValueError("reference current must be positive")
        count = self.convert_current(i_reference, frame_s, rng=rng)
        if count == 0:
            raise ValueError("reference current produced no counts; cannot calibrate")
        measured = count / frame_s
        # Dead-time-corrected expected frequency with nominal parameters.
        nominal_period = (100 * fF * 1.0) / i_reference + self.adc.dead_time()
        expected = 1.0 / nominal_period
        self.gain_correction = expected / measured
        return self.gain_correction

    def is_dead(self) -> bool:
        """Failure-injection hook: a pixel whose leakage exceeds the
        smallest measurable current can never fire."""
        return self.adc.leakage_a >= DEAD_PIXEL_LEAKAGE_A
