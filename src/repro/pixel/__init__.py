"""In-pixel signal conversion: the Fig. 3 sawtooth ADC and its counter."""

from .counter import PixelCounter, required_bits
from .pixel import DnaSensorPixel, PixelVariation
from .sawtooth_adc import SawtoothAdc

__all__ = [
    "DnaSensorPixel",
    "PixelCounter",
    "PixelVariation",
    "SawtoothAdc",
    "required_bits",
]
