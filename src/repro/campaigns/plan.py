"""The compiled form of a campaign: an explicit, ordered list of runs.

A :class:`Plan` is what executors actually consume — every axis already
expanded, every point carrying its own spec, replicate index and derived
Runner root seed.  Because a point's result is a pure function of
``(point.seed, point.spec, backend)``, a Plan can be partitioned across
threads, processes or machines in any order and still reassemble into
bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional, Sequence

from ..experiments.specs import ExperimentSpec

if TYPE_CHECKING:  # pragma: no cover
    from .spec import CampaignSpec


@dataclass(frozen=True)
class PlanPoint:
    """One scheduled run: position, spec, replicate, Runner root seed."""

    index: int
    spec: ExperimentSpec
    replicate: int
    seed: int
    #: The axis fields this point overrides on the campaign base spec —
    #: the columns a report table shows.
    assignment: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> dict[str, Any]:
        """The manifest entry for this point (result-independent half).

        Assignment values are JSON-normalised (tuples become lists) so
        in-memory metadata compares equal to metadata reloaded from a
        JSONL store."""
        return {
            "point": self.index,
            "kind": self.spec.kind,
            "replicate": self.replicate,
            "seed": self.seed,
            "assignment": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in self.assignment.items()
            },
            "spec_hash": self.spec.content_hash(),
        }


@dataclass(frozen=True)
class Plan:
    """An ordered tuple of :class:`PlanPoint` plus its provenance."""

    points: tuple[PlanPoint, ...]
    campaign: Optional["CampaignSpec"] = None
    seed: int = 0

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[PlanPoint]:
        return iter(self.points)

    def __getitem__(self, index: int) -> PlanPoint:
        return self.points[index]

    @classmethod
    def for_specs(
        cls, specs: Sequence[ExperimentSpec] | Iterable[ExperimentSpec], seed: int = 0
    ) -> "Plan":
        """An ad-hoc plan from an explicit spec list — every point at
        replicate 0 under ``seed`` (the ``run_batch`` shim's shape)."""
        points = tuple(
            PlanPoint(index=i, spec=spec, replicate=0, seed=int(seed))
            for i, spec in enumerate(specs)
        )
        return cls(points=points, seed=int(seed))

    def kinds(self) -> list[str]:
        """Distinct experiment kinds in the plan, in first-seen order."""
        seen: list[str] = []
        for point in self.points:
            if point.spec.kind not in seen:
                seen.append(point.spec.kind)
        return seen

    def groups_by_spec(self) -> "dict[tuple[str, str], list[PlanPoint]]":
        """Points grouped by ``(kind, spec content hash)``, first-seen
        order preserved.  Points of one group share an identical spec
        and differ only in replicate/seed — the unit the batched
        executor compiles into one chip-batched engine call."""
        groups: dict[tuple[str, str], list[PlanPoint]] = {}
        for point in self.points:
            groups.setdefault(
                (point.spec.kind, point.spec.content_hash()), []
            ).append(point)
        return groups

    def describe(self) -> list[dict[str, Any]]:
        return [point.describe() for point in self.points]

    def summary(self) -> str:
        kinds = "+".join(self.kinds()) or "empty"
        return f"<Plan {len(self)} points ({kinds}), seed={self.seed}>"
