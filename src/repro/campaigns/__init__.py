"""Campaigns: declarative sweeps, parallel executors, streaming stores.

The paper's results are all *campaigns*, not single runs — Fig. 4's
concentration series, Fig. 6's chip-to-chip Monte Carlo, the screening
funnel's compound sweeps.  This package is the batch-orchestration
layer over :mod:`repro.experiments`:

* :class:`CampaignSpec` (``spec.py``) — a frozen, serializable sweep:
  base spec + ``grid`` (cartesian product) / ``zip`` (lockstep) axes +
  seed-varied ``replicates``;
* :class:`Plan` (``plan.py``) — the compiled form: every point explicit,
  each carrying a Runner root seed derived stably from
  ``(campaign seed, replicate)`` so results never depend on point
  position, execution order or worker count;
* executors (``executors.py``) — ``serial`` / ``thread`` / ``process``,
  parity-tested bit-identical per point, plus the ``batched`` fast path
  (``batched.py``) that compiles same-spec vectorized-kind point groups
  into chip-batched engine calls (bit-identical to serial);
* stores (``store.py``) — in-memory, or JSONL-on-disk with a
  ``manifest.json`` (provenance, point index, wall time per run) so
  million-point sweeps never hold every ResultSet in RAM;
* reports (``report.py``) — per-point metrics tables for the CLI.

Use::

    from repro.campaigns import CampaignSpec, run_campaign
    from repro.experiments import DnaAssaySpec

    campaign = CampaignSpec(
        base=DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1)),
        grid={"concentration": (1e-7, 1e-6, 1e-5)},
        replicates=4,                       # chip-to-chip Monte Carlo
    )
    result = run_campaign(campaign, seed=1, executor="process")
    print(result.table())

or, from a Runner / the shell::

    Runner(seed=1).run_campaign(campaign, executor="thread", workers=8)
    # python -m repro sweep --campaign campaign.json --executor process
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Optional, Union

from .batched import BatchedExecutor, batchable_kinds, register_batch_compiler
from .executors import (
    EXECUTORS,
    Executor,
    PointOutcome,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from .plan import Plan, PlanPoint
from .report import manifest_summary, metrics_table, report_rows
from .spec import CampaignSpec, campaign_from_dict, replicate_seed
from .store import (
    MANIFEST_SCHEMA,
    STORES,
    CampaignResult,
    JsonlResultStore,
    MemoryResultStore,
    ResultStore,
    make_store,
)

__all__ = [
    "EXECUTORS",
    "MANIFEST_SCHEMA",
    "STORES",
    "BatchedExecutor",
    "CampaignResult",
    "CampaignSpec",
    "Executor",
    "batchable_kinds",
    "register_batch_compiler",
    "JsonlResultStore",
    "MemoryResultStore",
    "Plan",
    "PlanPoint",
    "PointOutcome",
    "ProcessExecutor",
    "ResultStore",
    "SerialExecutor",
    "ThreadExecutor",
    "campaign_from_dict",
    "make_executor",
    "make_store",
    "manifest_summary",
    "metrics_table",
    "replicate_seed",
    "report_rows",
    "run_campaign",
]


def run_campaign(
    campaign: Union[CampaignSpec, Mapping[str, Any]],
    *,
    seed: int = 0,
    executor: Union[str, Executor] = "serial",
    workers: Optional[int] = None,
    store: Union[None, str, ResultStore] = None,
    out: Optional[str] = None,
    overwrite: bool = False,
    flush_every: int = 1,
    backend: Optional[str] = None,
    inputs: Optional[dict[str, Any]] = None,
) -> CampaignResult:
    """Compile ``campaign``, stream it through an executor into a store,
    and return the :class:`CampaignResult`.

    ``campaign`` may be a :class:`CampaignSpec` or its ``to_dict()``
    payload.  ``executor`` is a name from :data:`EXECUTORS` or an
    instance; ``store`` a name from :data:`STORES` (``"jsonl"`` needs
    ``out``; ``overwrite`` permits replacing a finalized campaign
    directory), a :class:`ResultStore`, or ``None`` for in-memory.
    ``flush_every`` enables the jsonl store's buffered append mode
    (flush every N points instead of per point — cuts per-point fsync
    overhead in large campaigns; buffered lines always land by
    ``finalize``).  ``backend`` overrides the campaign's own
    ``backend`` field (and ``None`` defers to it, then to each spec's
    default).  Results are bit-identical across executors and worker
    counts; only wall times and completion order differ.
    """
    if not isinstance(campaign, CampaignSpec):
        campaign = CampaignSpec.from_dict(campaign)
    resolved_backend = backend if backend is not None else campaign.backend
    plan = campaign.compile(seed)
    chosen = make_executor(executor, workers=workers)
    # Every setup error — executor arguments (validated eagerly in
    # run()) and the backend — must fire before make_store touches the
    # filesystem: an overwrite=True run must not destroy an old
    # campaign and then die on a bad argument.
    from ..experiments.workloads import validate_backend

    for kind in plan.kinds():
        validate_backend(kind, resolved_backend)
    outcomes = chosen.run(plan, backend=resolved_backend, inputs=inputs)
    sink = make_store(store, out=out, overwrite=overwrite, flush_every=flush_every)
    start = time.perf_counter()
    for outcome in outcomes:
        sink.add(outcome)
    total_wall_s = time.perf_counter() - start
    from .. import __version__

    point_meta = {meta["point"]: meta for meta in sink.point_metas()}
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "name": campaign.name,
        "campaign": campaign.to_dict(),
        "seed": int(seed),
        "version": __version__,
        "backend": resolved_backend,
        "executor": chosen.name,
        "workers": getattr(chosen, "workers", 1),
        "store": sink.name,
        "n_points": len(plan),
        "total_wall_s": total_wall_s,
        "points": [
            point_meta[point.index] if point.index in point_meta else point.describe()
            for point in plan
        ],
    }
    sink.finalize(manifest)
    return CampaignResult(plan=plan, store=sink, manifest=manifest)
