"""Campaigns: declarative sweeps, parallel executors, streaming stores.

The paper's results are all *campaigns*, not single runs — Fig. 4's
concentration series, Fig. 6's chip-to-chip Monte Carlo, the screening
funnel's compound sweeps.  This package is the batch-orchestration
layer over :mod:`repro.experiments`:

* :class:`CampaignSpec` (``spec.py``) — a frozen, serializable sweep:
  base spec + ``grid`` (cartesian product) / ``zip`` (lockstep) axes +
  seed-varied ``replicates``;
* :class:`Plan` (``plan.py``) — the compiled form: every point explicit,
  each carrying a Runner root seed derived stably from
  ``(campaign seed, replicate)`` so results never depend on point
  position, execution order or worker count;
* executors (``executors.py``) — ``serial`` / ``thread`` / ``process``,
  parity-tested bit-identical per point, plus the ``batched`` fast path
  (``batched.py``) that compiles same-spec vectorized-kind point groups
  into chip-batched engine calls (bit-identical to serial);
* stores (``store.py``) — in-memory, or JSONL-on-disk with a
  ``manifest.json`` (provenance, point index, wall time per run) so
  million-point sweeps never hold every ResultSet in RAM;
* reports (``report.py``) — per-point metrics tables for the CLI.

Use::

    from repro.campaigns import CampaignSpec, run_campaign
    from repro.experiments import DnaAssaySpec

    campaign = CampaignSpec(
        base=DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1)),
        grid={"concentration": (1e-7, 1e-6, 1e-5)},
        replicates=4,                       # chip-to-chip Monte Carlo
    )
    result = run_campaign(campaign, seed=1, executor="process")
    print(result.table())

or, from a Runner / the shell::

    Runner(seed=1).run_campaign(campaign, executor="thread", workers=8)
    # python -m repro sweep --campaign campaign.json --executor process
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Optional, Union

from .batched import BatchedExecutor, batchable_kinds, register_batch_compiler
from .executors import (
    EXECUTORS,
    Executor,
    PointOutcome,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from .plan import Plan, PlanPoint
from .report import manifest_summary, metrics_table, report_rows
from .spec import CampaignSpec, campaign_from_dict, replicate_seed
from .store import (
    MANIFEST_SCHEMA,
    PENDING_SCHEMA,
    STORES,
    CampaignResult,
    JsonlResultStore,
    MemoryResultStore,
    ResultStore,
    make_store,
    read_campaign_sidecar,
    write_campaign_sidecar,
)

__all__ = [
    "EXECUTORS",
    "MANIFEST_SCHEMA",
    "PENDING_SCHEMA",
    "STORES",
    "BatchedExecutor",
    "CampaignResult",
    "CampaignSpec",
    "Executor",
    "batchable_kinds",
    "register_batch_compiler",
    "JsonlResultStore",
    "MemoryResultStore",
    "Plan",
    "PlanPoint",
    "PointOutcome",
    "ProcessExecutor",
    "ResultStore",
    "SerialExecutor",
    "ThreadExecutor",
    "campaign_from_dict",
    "make_executor",
    "make_store",
    "manifest_summary",
    "metrics_table",
    "read_campaign_sidecar",
    "replicate_seed",
    "report_rows",
    "run_campaign",
    "write_campaign_sidecar",
]


def build_manifest(
    campaign: CampaignSpec,
    plan: Plan,
    sink: ResultStore,
    *,
    seed: int,
    backend: Optional[str],
    executor_name: str,
    workers: int,
    total_wall_s: float,
    cache: Optional[dict[str, Any]] = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """The finalize-time manifest shared by ``run_campaign``, the job
    manager and the resume path.  ``cache`` is the cache-accounting
    block of a cache-aware run; ``extra`` merges additional provenance
    (e.g. resume bookkeeping)."""
    from .. import __version__

    point_meta = {meta["point"]: meta for meta in sink.point_metas()}
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "name": campaign.name,
        "campaign": campaign.to_dict(),
        "seed": int(seed),
        "version": __version__,
        "backend": backend,
        "executor": executor_name,
        "workers": workers,
        "store": sink.name,
        "n_points": len(plan),
        "total_wall_s": total_wall_s,
        "points": [
            point_meta[point.index] if point.index in point_meta else point.describe()
            for point in plan
        ],
    }
    if cache is not None:
        manifest["cache"] = dict(cache)
    if extra:
        manifest.update(extra)
    return manifest


def run_campaign(
    campaign: Union[CampaignSpec, Mapping[str, Any]],
    *,
    seed: int = 0,
    executor: Union[str, Executor] = "serial",
    workers: Optional[int] = None,
    store: Union[None, str, ResultStore] = None,
    out: Optional[str] = None,
    overwrite: bool = False,
    flush_every: int = 1,
    backend: Optional[str] = None,
    inputs: Optional[dict[str, Any]] = None,
    cache: Any = None,
) -> CampaignResult:
    """Compile ``campaign``, stream it through an executor into a store,
    and return the :class:`CampaignResult`.

    ``campaign`` may be a :class:`CampaignSpec` or its ``to_dict()``
    payload.  ``executor`` is a name from :data:`EXECUTORS` or an
    instance; ``store`` a name from :data:`STORES` (``"jsonl"`` needs
    ``out``; ``overwrite`` permits replacing a finalized campaign
    directory), a :class:`ResultStore`, or ``None`` for in-memory.
    ``flush_every`` enables the jsonl store's buffered append mode
    (flush every N points instead of per point — cuts per-point fsync
    overhead in large campaigns; buffered lines always land by
    ``finalize``).  ``backend`` overrides the campaign's own
    ``backend`` field (and ``None`` defers to it, then to each spec's
    default).  Results are bit-identical across executors and worker
    counts; only wall times and completion order differ.

    ``cache`` enables content-addressed result caching (CLI:
    ``--cache-dir``): a directory path or a
    :class:`~repro.service.cache.ResultCache` instance.  Points whose
    ``(spec, seed, backend, version)`` key is already cached are served
    without touching the engine, duplicate points within the campaign
    are computed once, and every computed point is cached for later
    campaigns; the manifest gains a ``cache`` accounting block.  Cached
    replay is bit-identical to recomputation (the reproduction
    invariant), so enabling a cache never changes numbers.  Because
    injected ``inputs`` substrates would break exactly that invariant
    (they alter results without altering the content key), combining
    ``cache`` with non-empty ``inputs`` raises ``ValueError``.
    """
    if not isinstance(campaign, CampaignSpec):
        campaign = CampaignSpec.from_dict(campaign)
    resolved_backend = backend if backend is not None else campaign.backend
    plan = campaign.compile(seed)
    chosen = make_executor(executor, workers=workers)
    # Every setup error — executor arguments (validated eagerly in
    # run()), the backend, and the cache — must fire before make_store
    # touches the filesystem: an overwrite=True run must not destroy an
    # old campaign and then die on a bad argument.
    from ..experiments.workloads import validate_backend

    for kind in plan.kinds():
        validate_backend(kind, resolved_backend)
    outcomes = chosen.run(plan, backend=resolved_backend, inputs=inputs)
    dispatch = None
    if cache is not None:
        from ..service.cache import CachedDispatch, make_cache

        result_cache = make_cache(cache)
        # The executor's eager argument validation already ran above;
        # the un-started generator is safe to drop.
        close = getattr(outcomes, "close", None)
        if close is not None:
            close()
        dispatch = CachedDispatch(
            plan, chosen, result_cache, backend=resolved_backend, inputs=inputs
        )
        outcomes = dispatch.outcomes()
    sink = make_store(store, out=out, overwrite=overwrite, flush_every=flush_every)
    if isinstance(sink, JsonlResultStore) and sink.writable:
        from .. import __version__

        write_campaign_sidecar(
            sink.root,
            {
                "name": campaign.name,
                "campaign": campaign.to_dict(),
                "seed": int(seed),
                "backend": resolved_backend,
                "version": __version__,
            },
        )
    start = time.perf_counter()  # repro: allow-wallclock
    for outcome in outcomes:
        sink.add(outcome)
    total_wall_s = time.perf_counter() - start  # repro: allow-wallclock
    manifest = build_manifest(
        campaign,
        plan,
        sink,
        seed=seed,
        backend=resolved_backend,
        executor_name=chosen.name,
        workers=getattr(chosen, "workers", 1),
        total_wall_s=total_wall_s,
        cache=dispatch.summary() if dispatch is not None else None,
    )
    sink.finalize(manifest)
    return CampaignResult(plan=plan, store=sink, manifest=manifest)
