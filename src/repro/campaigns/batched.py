"""The batched campaign fast path: chip-batched engine calls per plan.

Serial per-point dispatch pays the full Runner / chip re-entry cost for
every campaign point — seed-tree streams, spec hashing, chip
provisioning, one small kernel call, one records pass — even when the
workload is fully vectorizable.  :class:`BatchedExecutor` compiles
groups of same-spec points into *chip-batched* engine calls instead:
the points' chips are stacked along the engine's ``n_chips`` axis (or,
for neural recording, their neurons along the batched-HH neuron axis)
and digitised in one kernel invocation.

Determinism contract — enforced by ``tests/test_campaign_batched.py``:

* Per-point results are **bit-identical to the serial executor** (and
  therefore to ``Runner(point.seed).run(point.spec, backend)``): every
  point's random streams are drawn from its own
  ``SeedTree(point.seed)`` exactly as the Runner draws them, and the
  batched kernels evaluate elementwise math whose per-chip results do
  not depend on the batch size.
* Like the process executor, batched results come back artifact-free
  (compare against ``result.without_artifacts()``); records, metrics,
  spec and seed provenance are identical.
* The streaming stores are unchanged: the executor yields ordinary
  :class:`PointOutcome` objects (batch wall time amortised over the
  batch's points).

Points whose kind has no batch compiler — or whose resolved backend is
not ``"vectorized"`` — fall back to serial per-point dispatch inside
the same executor, so ``executor="batched"`` is always safe to request.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable, Iterator, Optional

import numpy as np

from .. import __version__
from ..chip.dna_chip import ChipSpecs
from ..core.rng import ensure_rng, spawn_children, stable_entropy
from ..devices.bandgap import BandgapReference
from ..devices.current_mirror import ReferenceCurrentFanout
from ..devices.dac import ResistorStringDac
from ..engine import PixelArrayParams, VectorizedNeuroChip, kernels, neuro_kernels
from ..experiments.results import ResultSet
from ..experiments.runner import Runner
from ..experiments.workloads import (
    array_scale_records_and_metrics,
    neural_records_and_metrics,
    workload_for,
)
from ..neuro.culture import ArrayGeometry, Culture
from .executors import Executor, PointOutcome, _run_point
from .plan import Plan, PlanPoint

#: A batch compiler turns a group of same-spec plan points into chunks
#: of ``(point, ResultSet)`` pairs (a generator of lists, one list per
#: compiled chunk, points in input order), bit-identical to serial
#: per-point dispatch on the vectorized backend.  Yielding per chunk —
#: rather than returning the whole group — keeps resident memory
#: bounded by the chunk size, so the streaming stores' O(1)-memory
#: profile survives million-point campaigns.
BatchCompiler = Callable[[list, str], Iterator[list]]

BATCH_COMPILERS: dict[str, BatchCompiler] = {}

#: Memory bounds: one batched array-scale call holds ~10 full-precision
#: planes per site, one neural batch holds every neuron's HH state
#: history.  Groups larger than these are processed in chunks.
ARRAY_SCALE_CHUNK_SITES = 1 << 22
NEURAL_CHUNK_NEURONS = 1024


def register_batch_compiler(kind: str, compiler: BatchCompiler) -> None:
    """Plug a batched execution path in for an experiment kind."""
    if kind in BATCH_COMPILERS:
        raise ValueError(f"batch compiler for kind {kind!r} already registered")
    BATCH_COMPILERS[kind] = compiler


def batchable_kinds() -> list[str]:
    """Experiment kinds the batched executor can compile, sorted."""
    return sorted(BATCH_COMPILERS)


# ---------------------------------------------------------------------------
# Shared per-point plumbing
# ---------------------------------------------------------------------------
class _GroupStreams:
    """Per-group stream plan: every point of a same-spec group shares
    its stream *paths* (they hash only the spec), so the spawn keys and
    the provenance metadata are computed once; per point only the three
    generators are instantiated — exactly the streams
    ``SeedTree(point.seed).generator(*path)`` would return."""

    def __init__(self, spec) -> None:
        paths = workload_for(spec.kind).streams(spec)
        self.spawn_keys = {
            name: stable_entropy(*path) for name, path in paths.items()
        }
        self.streams_meta = {
            name: [str(part) for part in path] for name, path in paths.items()
        }

    def rngs(self, point: PlanPoint) -> dict:
        return {
            name: np.random.default_rng(
                np.random.SeedSequence(entropy=point.seed, spawn_key=key)
            )
            for name, key in self.spawn_keys.items()
        }

    def seeds(self, point: PlanPoint) -> dict:
        return {"root": point.seed, "streams": self.streams_meta}


def _result(
    point: PlanPoint, seeds: dict, record_name: str, records: dict, metrics: dict
) -> ResultSet:
    """An artifact-free ResultSet with the Runner's exact provenance."""
    return ResultSet(
        kind=point.spec.kind,
        spec=point.spec.to_dict(),
        seeds=seeds,
        version=__version__,
        record_name=record_name,
        records=records,
        metrics=metrics,
        artifacts={},
    )


def _chunks(points: list, size: int) -> Iterator[list]:
    size = max(1, size)
    for start in range(0, len(points), size):
        yield points[start : start + size]


# ---------------------------------------------------------------------------
# array_scale: points stacked along the engine's n_chips axis
# ---------------------------------------------------------------------------
def _compile_array_scale(points: list, backend: str) -> list:
    """All points' chips drawn from their own chip streams, stacked into
    one :class:`PixelArrayParams` batch, digitised in one kernel call.

    Replicates :class:`~repro.engine.vchip.VectorizedDnaChip`'s stream
    consumption per chip (params first, then — only when calibrating —
    the periphery devices, in constructor order), and replays each
    point's calibration/measure draws explicitly so the stacked
    conversion is bit-identical per point.
    """
    spec = points[0].spec
    streams = _GroupStreams(spec)
    chip_specs = ChipSpecs(rows=spec.rows, cols=spec.cols)
    currents = spec.site_currents()
    chunk_points = max(1, ARRAY_SCALE_CHUNK_SITES // max(1, spec.n_chips * chip_specs.sites))
    for chunk in _chunks(points, chunk_points):
        params_list: list = []
        trees_list: list = []
        contexts: list = []
        for point in chunk:
            rngs = streams.rngs(point)
            contexts.append((rngs, streams.seeds(point)))
            generator = ensure_rng(rngs["chip"])
            chip_rngs = (
                [generator]
                if spec.n_chips == 1
                else spawn_children(generator, spec.n_chips)
            )
            for chip_rng in chip_rngs:
                params_list.append(
                    PixelArrayParams.draw(
                        spec.rows,
                        spec.cols,
                        rng=chip_rng,
                        mode=spec.mismatch,
                        counter_bits=chip_specs.counter_bits,
                    )
                )
                if spec.calibrate:
                    # The periphery consumes the chip stream after the
                    # pixel draws; only the reference trees feed the
                    # calibration conversion, but the DACs must still
                    # be sampled to keep the stream position exact.
                    bandgap = BandgapReference.sample(chip_rng)
                    ResistorStringDac.sample(chip_rng, bits=8, v_low=0.0, v_high=2.0)
                    ResistorStringDac.sample(chip_rng, bits=8, v_low=-1.0, v_high=1.0)
                    trees_list.append(
                        ReferenceCurrentFanout.build(
                            master_current=bandgap.reference_current(1.2e6),
                            count=8,
                            rng=chip_rng,
                        )
                    )
        params = PixelArrayParams.stack(params_list)
        shape = params.shape
        per_point = spec.n_chips

        def _stacked_draws(stream: str) -> tuple[np.ndarray, np.ndarray]:
            """Each point's (uniform phase, standard-normal jitter)
            draws, in the kernel's own order, stacked per chip."""
            phase = np.empty(shape)
            z = np.empty(shape)
            for index, (rngs, _) in enumerate(contexts):
                generator = ensure_rng(rngs[stream])
                lo = index * per_point
                block = (per_point, spec.rows, spec.cols)
                phase[lo : lo + per_point] = generator.uniform(0.0, 1.0, size=block)
                z[lo : lo + per_point] = generator.normal(0.0, 1.0, size=block)
            return phase, z

        if spec.calibrate:
            site_index = np.arange(chip_specs.sites)
            i_ref = np.empty((params.n_chips, chip_specs.sites))
            for position, tree in enumerate(trees_list):
                branches = tree.branch_currents() / 100.0
                i_ref[position] = branches[site_index % len(branches)]
            i_ref = i_ref.reshape(shape)
            phase, z = _stacked_draws("calibration")
            counts_cal = kernels.count_in_frame(
                i_ref,
                spec.calibration_frame_s,
                start_phase=phase,
                jitter_z=z,
                counter_bits=chip_specs.counter_bits,
                **params.kernel_kwargs(),
            )
            # Raises exactly where per-point auto_calibrate would.
            kernels.calibration_corrections(
                counts_cal, i_ref, spec.calibration_frame_s, params.dead_time_s
            )
        phase, z = _stacked_draws("measure")
        counts = kernels.count_in_frame(
            np.broadcast_to(currents, shape),
            spec.frame_s,
            start_phase=phase,
            jitter_z=z,
            counter_bits=chip_specs.counter_bits,
            **params.kernel_kwargs(),
        )
        dead = (
            kernels.dead_pixel_mask(params.leakage_a)
            .reshape(params.n_chips, -1)
            .sum(axis=1)
        )
        compiled = []
        for index, (point, (_, seeds)) in enumerate(zip(chunk, contexts)):
            lo = index * per_point
            records, metrics = array_scale_records_and_metrics(
                spec,
                "vectorized",
                counts[lo : lo + per_point],
                dead[lo : lo + per_point],
                chip_specs.counter_bits,
                params.cint_nominal_f,
                params.swing_nominal_v,
                currents,
            )
            compiled.append((point, _result(point, seeds, "chip", records, metrics)))
        yield compiled


# ---------------------------------------------------------------------------
# neural_recording: points' neurons batched through one HH integration
# ---------------------------------------------------------------------------
def _compile_neural(points: list, backend: str) -> list:
    """Every point's neurons integrated in one batched Hodgkin-Huxley
    sweep (the per-step cost is flat in the neuron count), then each
    point's frames synthesised and scored on its own streams."""
    from ..chip.neuro_chip import RecordingResult

    spec = points[0].spec
    streams = _GroupStreams(spec)
    geometry_args = (spec.rows, spec.cols, spec.pitch_m)
    chunk_points = max(1, NEURAL_CHUNK_NEURONS // max(1, spec.n_neurons))
    for chunk in _chunks(points, chunk_points):
        prepared: list = []
        for point in chunk:
            rngs, seeds = streams.rngs(point), streams.seeds(point)
            chip = VectorizedNeuroChip(geometry=ArrayGeometry(*geometry_args), rng=rngs["chip"])
            chip.calibrate()
            culture = Culture.random(
                spec.n_neurons,
                chip.geometry,
                diameter_range=spec.diameter_range_m,
                rng=rngs["culture"],
            )
            record_rng = ensure_rng(rngs["record"])
            stimuli = chip.draw_spike_trains(
                culture, spec.duration_s, spec.firing_rate_hz, record_rng
            )
            prepared.append((point, seeds, chip, culture, record_rng, stimuli))
        tables_per_point: list = []
        if spec.use_hh:
            all_stimuli = [s for (*_, stimuli) in prepared for s in stimuli]
            hh_all = neuro_kernels.hh_batch(all_stimuli, spec.duration_s, dt_s=20e-6)
            offset = 0
            for _, _, chip, culture, _, stimuli in prepared:
                subset = hh_all.subset(np.arange(offset, offset + len(stimuli)))
                offset += len(stimuli)
                tables_per_point.append(chip._hh_tables(culture, subset))
        else:
            for _, _, chip, culture, _, stimuli in prepared:
                tables_per_point.append(
                    chip.activity_tables(culture, stimuli, spec.duration_s, use_hh=False)
                )
        compiled = []
        for (point, seeds, chip, culture, record_rng, _), (
            tables,
            table_dt_s,
            ground_truth,
        ) in zip(prepared, tables_per_point):
            n_frames = int(spec.duration_s * chip.scan.frame_rate_hz)
            electrode_movie = chip.movie_from_tables(
                culture, tables, table_dt_s, n_frames, record_rng
            )
            recording = RecordingResult(
                electrode_movie=electrode_movie,
                output_movie=chip.output_movie(electrode_movie),
                ground_truth=ground_truth,
                culture=culture,
            )
            records, metrics = neural_records_and_metrics(
                spec, chip, culture, recording, "vectorized"
            )
            compiled.append((point, _result(point, seeds, "neuron", records, metrics)))
        yield compiled


register_batch_compiler("array_scale", _compile_array_scale)
register_batch_compiler("neural_recording", _compile_neural)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------
class BatchedExecutor(Executor):
    """Compile same-spec vectorized-kind point groups into chip-batched
    engine calls; everything else runs serially in the same stream."""

    name = "batched"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers not in (None, 1):
            raise ValueError("the batched executor runs in the calling thread")
        self.workers = 1

    def run(
        self,
        plan: Plan,
        *,
        backend: Optional[str] = None,
        inputs: Optional[dict[str, Any]] = None,
        runner_factory=None,
        capture_errors: bool = False,
    ) -> Iterator[PointOutcome]:
        # Validate eagerly, NOT inside the generator: run_campaign must
        # see bad arguments before any store touches the filesystem.
        if inputs:
            raise ValueError(
                "pre-built `inputs` substrates cannot ride a batched compile; "
                "use the serial or thread executor to inject them"
            )
        if runner_factory is not None:
            raise ValueError("the batched executor derives Runners from point seeds")
        return self._iter(plan, backend, capture_errors)

    def _iter(
        self, plan: Plan, backend: Optional[str], capture_errors: bool = False
    ) -> Iterator[PointOutcome]:
        fallback: list[PlanPoint] = []
        for (kind, _), group in plan.groups_by_spec().items():
            # One group shares one spec, so the whole group resolves to
            # one backend; only vectorized groups with a compiler batch.
            spec = group[0].spec
            resolved = backend if backend is not None else getattr(spec, "backend", "object")
            # Fault injection drives the per-frame serial path, which no
            # batch compiler models — those points take the serial lane.
            if (
                resolved != "vectorized"
                or kind not in BATCH_COMPILERS
                or getattr(spec, "faults", ())
            ):
                fallback.extend(group)
                continue
            compiler = BATCH_COMPILERS[kind]
            # Chunks stream out as they compile (each chunk's wall time
            # amortised over its points), so resident memory is bounded
            # by the chunk size, not the campaign size.
            start = time.perf_counter()  # repro: allow-wallclock
            for compiled in compiler(group, "vectorized"):
                wall_each = (time.perf_counter() - start) / max(1, len(compiled))  # repro: allow-wallclock
                for point, result in compiled:
                    yield PointOutcome(point=point, result=result, wall_s=wall_each)
                start = time.perf_counter()  # repro: allow-wallclock
        runners: "OrderedDict[int, Runner]" = OrderedDict()
        for point in fallback:
            yield _run_point(runners, Runner, point, backend, None, capture_errors)
