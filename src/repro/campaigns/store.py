"""Streaming result stores and the campaign result handle.

A store consumes :class:`~repro.campaigns.executors.PointOutcome`s as
they complete — in whatever order the executor produces them — and is
the reason a million-point sweep never holds a million ResultSets in
RAM:

* :class:`MemoryResultStore` keeps everything in memory (including
  artifacts when the executor ran in-process) — the default for
  interactive work and small sweeps.
* :class:`JsonlResultStore` appends each result to
  ``<dir>/results.jsonl`` the moment it lands and drops it, keeping
  only small per-point metadata (index, seed, wall time, scalar
  metrics) — resident memory scales with points × metadata, never with
  record payloads; ``finalize`` writes ``<dir>/manifest.json`` with
  full provenance (campaign dict, seed, executor, point index, wall
  time per run).  ``JsonlResultStore.load(dir)`` reopens a finished
  campaign for reporting, streaming results back lazily.

:class:`CampaignResult` is what ``run_campaign`` returns: the compiled
plan + manifest + store, with ordered access to results and the report
table.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence, Union

from ..experiments.results import ResultSet
from .executors import PointOutcome
from .plan import Plan

#: Manifest schema tag, bumped on incompatible layout changes.
MANIFEST_SCHEMA = "repro-campaign/1"

#: Schema tag of the ``campaign.json`` sidecar written *before* any
#: point executes — the half of the provenance that makes a partial
#: (crashed or cancelled) directory resumable without re-supplying the
#: campaign spec.
PENDING_SCHEMA = "repro-campaign-pending/1"

#: Names accepted by :func:`make_store` (and the CLI's ``--store``).
STORES = ("memory", "jsonl")


def write_campaign_sidecar(root: Union[str, Path], payload: dict[str, Any]) -> Path:
    """Persist ``<dir>/campaign.json`` (campaign dict, seed, backend,
    version) at execution start.  The manifest only lands at finalize;
    this sidecar is what ``repro sweep --resume`` reads to reconstruct
    an interrupted campaign's plan."""
    path = Path(root) / JsonlResultStore.CAMPAIGN_NAME
    data = {"schema": PENDING_SCHEMA, **payload}
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def read_campaign_sidecar(root: Union[str, Path]) -> Optional[dict[str, Any]]:
    """Load ``<dir>/campaign.json`` or ``None`` when absent; raises
    ``ValueError`` on a schema this reader does not understand."""
    path = Path(root) / JsonlResultStore.CAMPAIGN_NAME
    if not path.exists():
        return None
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("schema") != PENDING_SCHEMA:
        raise ValueError(
            f"{path} has schema {data.get('schema')!r}; this reader "
            f"understands {PENDING_SCHEMA!r}"
        )
    return data


class ResultStore:
    """Interface: consume outcomes as they stream in, then finalize."""

    name: str = "base"

    def add(self, outcome: PointOutcome) -> None:
        raise NotImplementedError

    def finalize(self, manifest: dict[str, Any]) -> None:
        """Called once, after the last ``add``; persists provenance."""
        raise NotImplementedError

    @property
    def manifest(self) -> Optional[dict[str, Any]]:
        raise NotImplementedError

    def iter_results(self) -> Iterator[tuple[dict[str, Any], ResultSet]]:
        """Yield ``(point_meta, ResultSet)`` in storage order."""
        raise NotImplementedError

    def point_metas(self) -> list[dict[str, Any]]:
        """Per-point metadata (index, replicate, wall time, ...) without
        materialising result payloads where the store can avoid it."""
        return [meta for meta, _ in self.iter_results()]

    def results(self) -> list[ResultSet]:
        """All ResultSets ordered by point index (materialises the full
        campaign — prefer :meth:`iter_results` for very large sweeps)."""
        pairs = sorted(self.iter_results(), key=lambda pair: pair[0]["point"])
        return [result for _, result in pairs]

    def result_for(self, point: int) -> ResultSet:
        """The stored ResultSet for one point index."""
        for meta, result in self.iter_results():
            if meta["point"] == point:
                return result
        raise KeyError(f"no stored result for point {point}")

    def load_point(self, point: int) -> ResultSet:
        """The streaming read API's point accessor: one point's
        ResultSet without materialising any other point.  Disk-backed
        stores implement :meth:`result_for` with an O(1) seek, so
        analyses can random-access a campaign far larger than RAM."""
        return self.result_for(point)


_SCALARS = (bool, int, float, str)


def _outcome_meta(outcome: PointOutcome) -> dict[str, Any]:
    import numpy as np

    meta = outcome.point.describe()
    meta["wall_s"] = float(outcome.wall_s)
    meta["n_records"] = outcome.result.n_records
    # Scalar metrics ride along in the metadata so reports (and the
    # manifest) never need to re-parse record payloads.  Numpy scalars
    # (np.int64 sums etc. from custom workloads) count as scalars too.
    metrics: dict[str, Any] = {}
    for name, value in outcome.result.metrics.items():
        if isinstance(value, np.generic):
            value = value.item()
        if isinstance(value, _SCALARS):
            metrics[name] = value
    meta["metrics"] = metrics
    return meta


class MemoryResultStore(ResultStore):
    """Keep every outcome in RAM, artifacts included."""

    name = "memory"

    def __init__(self) -> None:
        self._outcomes: dict[int, PointOutcome] = {}
        self._manifest: Optional[dict[str, Any]] = None

    def add(self, outcome: PointOutcome) -> None:
        self._outcomes[outcome.point.index] = outcome

    def finalize(self, manifest: dict[str, Any]) -> None:
        self._manifest = manifest

    @property
    def manifest(self) -> Optional[dict[str, Any]]:
        return self._manifest

    def __len__(self) -> int:
        return len(self._outcomes)

    def iter_results(self) -> Iterator[tuple[dict[str, Any], ResultSet]]:
        for index in sorted(self._outcomes):
            outcome = self._outcomes[index]
            yield _outcome_meta(outcome), outcome.result

    def point_metas(self) -> list[dict[str, Any]]:
        return [_outcome_meta(self._outcomes[index]) for index in sorted(self._outcomes)]

    def result_for(self, point: int) -> ResultSet:
        try:
            return self._outcomes[point].result
        except KeyError:
            raise KeyError(f"no stored result for point {point}") from None

    def outcomes(self) -> list[PointOutcome]:
        return [self._outcomes[index] for index in sorted(self._outcomes)]


class JsonlResultStore(ResultStore):
    """Stream results to ``<dir>/results.jsonl`` + ``manifest.json``.

    Each completed point becomes one JSON line the moment it lands —
    everything finished before a crash is on disk and greppable, and
    resident memory holds only per-point metadata (never the record
    payloads, which dominate ResultSet size).  Lines are written in
    completion order and carry the point index explicitly; loaders
    sort on it.  The manifest only appears at ``finalize``, so a
    directory without one is recognisably a partial run.
    """

    name = "jsonl"
    RESULTS_NAME = "results.jsonl"
    MANIFEST_NAME = "manifest.json"
    CAMPAIGN_NAME = "campaign.json"

    def __init__(
        self, root: Union[str, Path], overwrite: bool = False, flush_every: int = 1
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.root = Path(root)
        self.flush_every = int(flush_every)
        self.root.mkdir(parents=True, exist_ok=True)
        manifest_path = self.root / self.MANIFEST_NAME
        # A manifest marks a *finished* campaign: refuse to destroy it
        # unless explicitly told to.  (A results.jsonl without one is a
        # crashed partial run — overwriting that is the normal retry.)
        if manifest_path.exists() and not overwrite:
            raise FileExistsError(
                f"{self.root} already holds a finalized campaign "
                f"({self.MANIFEST_NAME}); pass overwrite=True (CLI: --force) "
                f"or choose a new directory"
            )
        # The old manifest goes first so stale provenance can never sit
        # next to the new records written below.
        manifest_path.unlink(missing_ok=True)
        self._manifest: Optional[dict[str, Any]] = None
        self._metas: list[dict[str, Any]] = []
        #: point index -> byte offset of its line, for O(1) result_for.
        self._offsets: dict[int, int] = {}
        #: Whole lines awaiting their next batched write+flush (buffered
        #: append mode, ``flush_every > 1``): only complete lines ever
        #: reach the file, so a crash loses at most the buffered tail —
        #: never leaves a torn line.
        self._pending: list[str] = []
        self._written_bytes = 0
        self._handle = (self.root / self.RESULTS_NAME).open("w", encoding="utf-8")

    def add(self, outcome: PointOutcome) -> None:
        if self._handle is None:
            raise RuntimeError("store is finalized (or was opened read-only)")
        meta = _outcome_meta(outcome)
        line = dict(meta)
        line["result"] = outcome.result.to_dict()
        # json.dumps keeps ASCII, so character count == byte count.
        text = json.dumps(line, sort_keys=True) + "\n"
        self._offsets[outcome.point.index] = self._written_bytes + sum(
            len(pending) for pending in self._pending
        )
        self._pending.append(text)
        self._metas.append(meta)  # metadata only: the ResultSet is dropped
        if len(self._pending) >= self.flush_every:
            self._flush()

    def _flush(self) -> None:
        """Write all buffered lines and fsync-flush the stream."""
        if self._handle is None or not self._pending:
            return
        block = "".join(self._pending)
        self._handle.write(block)
        self._handle.flush()
        self._written_bytes += len(block)
        self._pending.clear()

    def finalize(self, manifest: dict[str, Any]) -> None:
        self._flush()
        self._manifest = manifest
        (self.root / self.MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def manifest(self) -> Optional[dict[str, Any]]:
        return self._manifest

    @property
    def writable(self) -> bool:
        """True while the append handle is open (False after
        ``finalize``/``close`` and for ``load``-opened stores)."""
        return self._handle is not None

    def close(self) -> None:
        """Flush buffered lines and release the append handle *without*
        finalizing — deliberately leaves a manifest-less partial
        directory that :meth:`open_partial` (``repro sweep --resume``)
        can pick up.  The cancel path of the job manager uses this."""
        self._flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __len__(self) -> int:
        return len(self._metas)

    def point_metas(self) -> list[dict[str, Any]]:
        return list(self._metas)

    def iter_results(self) -> Iterator[tuple[dict[str, Any], ResultSet]]:
        """Stream ``(meta, ResultSet)`` pairs back from disk, lazily, in
        completion (file) order."""
        if self._handle is not None:
            self._flush()  # buffered lines must land before reading back
        path = self.root / self.RESULTS_NAME
        with path.open("r", encoding="utf-8") as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                line = json.loads(raw)
                result = ResultSet.from_dict(line.pop("result"))
                yield line, result

    def result_for(self, point: int) -> ResultSet:
        """One point's ResultSet, via its recorded byte offset — no
        rescan of the preceding lines."""
        if point not in self._offsets:
            raise KeyError(f"no stored result for point {point}")
        if self._handle is not None:
            self._flush()  # the line may still sit in the append buffer
        with (self.root / self.RESULTS_NAME).open("r", encoding="utf-8") as handle:
            handle.seek(self._offsets[point])
            line = json.loads(handle.readline())
        return ResultSet.from_dict(line["result"])

    @classmethod
    def load(cls, root: Union[str, Path]) -> "JsonlResultStore":
        """Reopen a finished campaign directory for reading."""
        root = Path(root)
        path = root / cls.RESULTS_NAME
        if not path.exists():
            raise FileNotFoundError(f"no {cls.RESULTS_NAME} under {root}")
        store = cls.__new__(cls)
        store.root = root
        store._handle = None
        manifest_path = root / cls.MANIFEST_NAME
        store._manifest = (
            json.loads(manifest_path.read_text(encoding="utf-8"))
            if manifest_path.exists()
            else None
        )
        if store._manifest is not None:
            schema = store._manifest.get("schema")
            if schema != MANIFEST_SCHEMA:
                raise ValueError(
                    f"{manifest_path} has schema {schema!r}; this reader "
                    f"understands {MANIFEST_SCHEMA!r}"
                )
        store._metas = []
        store._offsets = {}
        with path.open("r", encoding="utf-8") as handle:
            while True:
                offset = handle.tell()
                raw = handle.readline()
                if not raw:
                    break
                if not raw.strip():
                    continue
                line = json.loads(raw)
                line.pop("result", None)
                store._offsets[line["point"]] = offset
                store._metas.append(line)
        return store

    @classmethod
    def open_partial(
        cls, root: Union[str, Path], flush_every: int = 1
    ) -> "JsonlResultStore":
        """Reopen a *partial* campaign directory for appending — the
        resume path.

        Pre-loads every intact line's metadata and byte offset, then
        truncates anything after the last intact line (a process killed
        mid-write can leave exactly one torn tail line; every line
        before it is complete by construction) and reopens the file in
        append mode.  Completed point indices are whatever
        :meth:`point_metas` reports.  Refuses a directory that already
        holds a manifest: a finalized campaign has nothing to resume.
        """
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        root = Path(root)
        path = root / cls.RESULTS_NAME
        if not path.exists():
            raise FileNotFoundError(f"no {cls.RESULTS_NAME} under {root}")
        if (root / cls.MANIFEST_NAME).exists():
            raise FileExistsError(
                f"{root} holds a finalized campaign ({cls.MANIFEST_NAME}); "
                f"there is nothing to resume"
            )
        store = cls.__new__(cls)
        store.root = root
        store.flush_every = int(flush_every)
        store._manifest = None
        store._metas = []
        store._offsets = {}
        store._pending = []
        valid_end = 0
        with path.open("rb") as handle:
            while True:
                offset = handle.tell()
                raw = handle.readline()
                if not raw:
                    break
                if not raw.endswith(b"\n"):
                    break  # torn tail: the write was cut mid-line
                text = raw.strip()
                if not text:
                    valid_end = handle.tell()
                    continue
                try:
                    line = json.loads(text)
                except json.JSONDecodeError:
                    break  # torn tail that still ends in a newline
                if "point" not in line or "result" not in line:
                    break
                line.pop("result")
                if line["point"] not in store._offsets:
                    store._offsets[line["point"]] = offset
                    store._metas.append(line)
                valid_end = handle.tell()
        os.truncate(path, valid_end)
        store._written_bytes = valid_end
        store._handle = path.open("a", encoding="utf-8")
        return store


def make_store(
    store: Union[None, str, Path, ResultStore],
    out: Union[None, str, Path] = None,
    overwrite: bool = False,
    flush_every: int = 1,
) -> ResultStore:
    """Resolve a store name (``"memory"``/``"jsonl"``), a directory
    (``pathlib.Path``), or a :class:`ResultStore` instance.

    The ``"jsonl"`` name requires ``out`` (the campaign directory); a
    ``Path`` implies a JSONL store rooted there.  Directory *strings*
    are deliberately not accepted — a typo'd store name must error, not
    become a directory.  ``overwrite`` permits replacing a directory
    that already holds a finalized campaign.  ``flush_every`` selects
    the jsonl store's buffered append mode (flush every N completed
    points instead of every point); it is an error with any store that
    does not append to disk.
    """
    if store is None:
        if out is not None:
            return JsonlResultStore(out, overwrite=overwrite, flush_every=flush_every)
        if flush_every != 1:
            raise ValueError("flush_every only applies to the jsonl store")
        return MemoryResultStore()
    if isinstance(store, ResultStore):
        already_there = (
            isinstance(store, JsonlResultStore) and out is not None and Path(out) == store.root
        )
        if out is not None and not already_there:
            raise ValueError(
                "out= conflicts with the provided store instance; root the "
                "JsonlResultStore at the directory instead"
            )
        if flush_every != 1:
            if not isinstance(store, JsonlResultStore):
                raise ValueError("flush_every only applies to the jsonl store")
            if store.flush_every != flush_every:
                raise ValueError(
                    f"flush_every={flush_every} conflicts with the provided store "
                    f"instance (flush_every={store.flush_every}); configure the "
                    f"instance instead"
                )
        return store
    if store == "memory":
        if out is not None:
            raise ValueError(
                "the memory store writes nothing to disk; drop --out or use the jsonl store"
            )
        if flush_every != 1:
            raise ValueError("flush_every only applies to the jsonl store")
        return MemoryResultStore()
    if store == "jsonl":
        if out is None:
            raise ValueError("the jsonl store needs an output directory (--out)")
        return JsonlResultStore(out, overwrite=overwrite, flush_every=flush_every)
    if isinstance(store, Path):
        return JsonlResultStore(store, overwrite=overwrite, flush_every=flush_every)
    raise ValueError(
        f"unknown store {store!r}; choose from {STORES}, pass a pathlib.Path "
        f"(or out=...) for a jsonl directory, or pass a ResultStore instance"
    )


@dataclass
class CampaignResult:
    """What ``run_campaign`` hands back: plan + manifest + store."""

    plan: Plan
    store: ResultStore
    manifest: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.plan)

    @property
    def n_points(self) -> int:
        return len(self.plan)

    def results(self) -> list[ResultSet]:
        """ResultSets ordered by point index."""
        return self.store.results()

    def iter_results(self) -> Iterator[tuple[dict[str, Any], ResultSet]]:
        return self.store.iter_results()

    def result_for(self, point: int) -> ResultSet:
        return self.store.result_for(point)

    def load_point(self, point: int) -> ResultSet:
        return self.store.load_point(point)

    def analyze(self, analysis: Any = None, **overrides: Any) -> Any:
        """Run a statistical analysis over this campaign's store and
        return the :class:`~repro.inference.report.AnalysisReport` —
        see :func:`repro.inference.analyze` for the ``analysis``
        argument (``None`` infers one from the campaign's shape)."""
        from ..inference import analyze

        return analyze(self, analysis, **overrides)

    @property
    def total_wall_s(self) -> float:
        return float(self.manifest.get("total_wall_s", 0.0))

    def table(self, metrics: Optional[Sequence[str]] = None) -> str:
        """The per-point metrics table (see :mod:`repro.campaigns.report`)."""
        from .report import metrics_table

        return metrics_table(self, metrics=metrics)

    def summary(self) -> str:
        executor = self.manifest.get("executor", "?")
        return (
            f"<CampaignResult {len(self)} points via {executor}, "
            f"{self.total_wall_s:.3g}s, store={self.store.name}>"
        )
