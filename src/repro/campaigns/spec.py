"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a whole family of experiment runs the
way an :class:`~repro.experiments.specs.ExperimentSpec` describes one:
frozen, serializable, no imperative state.  It wraps a *base* spec and
three axis constructs:

* ``grid`` — a mapping of spec field -> value tuple; axes combine as a
  cartesian product (Fig. 4's concentration series × bias sweeps);
* ``zip`` — equal-length value tuples advanced in lockstep (paired
  parameter trajectories that must not cross-product);
* ``replicates`` — seed-varied repeats of every grid×zip point (Fig. 6's
  chip-to-chip Monte Carlo).

``compile(seed)`` expands the axes into an explicit
:class:`~repro.campaigns.plan.Plan` whose per-point seeds derive from
the campaign root via :func:`replicate_seed` — stable functions of
``(root, replicate)`` only, never of point position, executor or worker
count.  Replicate 0 keeps the root itself, so a single-replicate
campaign point is bit-identical to ``Runner(seed).run(spec)``.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from ..core.rng import stable_entropy
from ..experiments.specs import BACKENDS, ExperimentSpec, spec_from_dict


def _normalize_axis_value(value: Any) -> Any:
    """Strip numpy scalar/array types from axis values at construction,
    so specs built from them serialize (content_hash, JSONL lines,
    manifests) without 'int64 is not JSON serializable' surprises."""
    import numpy as np

    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return tuple(_normalize_axis_value(item) for item in value)
    if isinstance(value, (list, tuple)):
        return type(value)(_normalize_axis_value(item) for item in value)
    return value


def replicate_seed(root: int, replicate: int) -> int:
    """The Runner root seed for replicate ``replicate`` of a campaign
    rooted at ``root``.

    Replicate 0 is the root itself; higher replicates hash
    ``(root, replicate)`` through the same process-stable digest the
    SeedTree uses, so the mapping never depends on how many points or
    axes surround the replicate.
    """
    if replicate < 0:
        raise ValueError(f"replicate must be non-negative, got {replicate}")
    if replicate == 0:
        return int(root)
    words = stable_entropy("campaign", "replicate", int(root), int(replicate))
    return int(words[0] | (words[1] << 32))


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative, serializable sweep over one experiment kind."""

    base: ExperimentSpec
    grid: Mapping[str, tuple] = field(default_factory=dict)
    zip: Mapping[str, tuple] = field(default_factory=dict)
    replicates: int = 1
    backend: Optional[str] = None
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.base, ExperimentSpec):
            raise TypeError(f"base must be an ExperimentSpec, got {type(self.base).__name__}")
        for axis, mapping in (("grid", self.grid), ("zip", self.zip)):
            for key, values in dict(mapping).items():
                # Reject a bare string (would silently explode char-by-
                # char) and any other scalar, naming the axis.
                if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
                    raise ValueError(
                        f"{axis} axis {key!r} must be a sequence of values, "
                        f"got the single value {values!r} — wrap it in a list"
                    )
        object.__setattr__(
            self,
            "grid",
            {
                key: tuple(_normalize_axis_value(value) for value in values)
                for key, values in dict(self.grid).items()
            },
        )
        object.__setattr__(
            self,
            "zip",
            {
                key: tuple(_normalize_axis_value(value) for value in values)
                for key, values in dict(self.zip).items()
            },
        )
        field_names = {f.name for f in dataclasses.fields(self.base)}
        for axis, mapping in (("grid", self.grid), ("zip", self.zip)):
            # Dotted axes ("faults.rate") sweep one sub-field across
            # every entry of a tuple-of-mappings spec field.
            unknown = {
                key for key in mapping if key.split(".", 1)[0] not in field_names
            }
            if unknown:
                raise ValueError(
                    f"{axis} axis field(s) {sorted(unknown)} not on "
                    f"{type(self.base).__name__}"
                )
            for key in mapping:
                if "." not in key:
                    continue
                parent, sub = key.split(".", 1)
                entries = getattr(self.base, parent)
                if not (
                    isinstance(entries, tuple)
                    and entries
                    and all(isinstance(entry, Mapping) for entry in entries)
                ):
                    raise ValueError(
                        f"{axis} axis {key!r} sweeps entries of base.{parent}, "
                        f"which must be a non-empty tuple of mappings "
                        f"(e.g. base.faults=[{{'kind': ..., '{sub}': ...}}])"
                    )
                missing = [
                    dict(entry).get("kind", index)
                    for index, entry in enumerate(entries)
                    if sub not in entry
                ]
                if missing:
                    raise ValueError(
                        f"{axis} axis {key!r}: base.{parent} entries "
                        f"{missing} have no field {sub!r}"
                    )
            empty = [key for key, values in mapping.items() if not values]
            if empty:
                raise ValueError(f"{axis} axis {empty[0]!r} has no values")
        overlap = set(self.grid) & set(self.zip)
        if overlap:
            raise ValueError(f"field(s) {sorted(overlap)} appear in both grid and zip")
        zip_lengths = {key: len(values) for key, values in self.zip.items()}
        if len(set(zip_lengths.values())) > 1:
            raise ValueError(f"zip axes must have equal lengths, got {zip_lengths}")
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; choose from {BACKENDS}")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def zip_length(self) -> int:
        """Positions along the zipped axes (1 when there are none)."""
        for values in self.zip.values():
            return len(values)
        return 1

    @property
    def n_points(self) -> int:
        total = self.replicates * self.zip_length
        for values in self.grid.values():
            total *= len(values)
        return total

    def axis_names(self) -> list[str]:
        """The spec fields that vary across the campaign, in expansion
        order (grid axes, then zip axes)."""
        return [*self.grid, *self.zip]

    def assignments(self) -> list[dict[str, Any]]:
        """One field-assignment dict per grid×zip point (replicates not
        expanded): grid axes vary outermost in declaration order, the
        zip position innermost."""
        import itertools

        grid_axes = [[(key, value) for value in values] for key, values in self.grid.items()]
        zip_rows = [
            {key: values[i] for key, values in self.zip.items()}
            for i in range(self.zip_length)
        ] or [{}]
        points = []
        for combo in itertools.product(*grid_axes):
            for zip_row in zip_rows:
                points.append({**dict(combo), **zip_row})
        return points

    def compile(self, seed: int = 0) -> "Plan":
        """Expand into an explicit :class:`~repro.campaigns.plan.Plan`
        of runs, replicates innermost."""
        from .plan import Plan, PlanPoint

        points = []
        index = 0
        for assignment in self.assignments():
            # Lists arrive from JSON campaigns / CLI axes; specs store
            # sequence fields as tuples (mirrors ExperimentSpec.from_dict).
            assignment = {
                key: tuple(value) if isinstance(value, list) else value
                for key, value in assignment.items()
            }
            direct = {key: v for key, v in assignment.items() if "." not in key}
            spec = self.base.replace(**direct) if direct else self.base
            for key, value in assignment.items():
                # Dotted axes rebuild the parent tuple with the sub-field
                # replaced in every entry (a "faults.rate" sweep moves
                # all fault entries' rates together).
                if "." not in key:
                    continue
                parent, sub = key.split(".", 1)
                entries = tuple(
                    {**dict(entry), sub: value} for entry in getattr(spec, parent)
                )
                spec = spec.replace(**{parent: entries})
            for replicate in range(self.replicates):
                points.append(
                    PlanPoint(
                        index=index,
                        spec=spec,
                        replicate=replicate,
                        seed=replicate_seed(seed, replicate),
                        assignment=assignment,
                    )
                )
                index += 1
        return Plan(points=tuple(points), campaign=self, seed=int(seed))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "grid": {key: list(values) for key, values in self.grid.items()},
            "zip": {key: list(values) for key, values in self.zip.items()},
            "replicates": self.replicates,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        payload = dict(data)
        base = payload.pop("base", None)
        if base is None:
            raise ValueError("campaign dict needs a 'base' spec entry")
        known = {f.name for f in dataclasses.fields(cls)} - {"base"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown campaign fields: {sorted(unknown)}")
        return cls(base=spec_from_dict(dict(base)), **payload)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(payload))

    def summary(self) -> str:
        axes = ", ".join(
            f"{key}×{len(values)}" for key, values in {**self.grid, **self.zip}.items()
        )
        label = self.name or self.base.kind
        return (
            f"<CampaignSpec {label}: {self.n_points} points"
            + (f" [{axes}]" if axes else "")
            + (f" ×{self.replicates} replicates" if self.replicates > 1 else "")
            + ">"
        )


def campaign_from_dict(data: Mapping[str, Any]) -> CampaignSpec:
    """Module-level alias mirroring ``spec_from_dict``."""
    return CampaignSpec.from_dict(data)
