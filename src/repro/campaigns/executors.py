"""Pluggable campaign executors: serial, thread pool, process pool.

An executor turns a :class:`~repro.campaigns.plan.Plan` into a stream of
:class:`PointOutcome` — one per completed run, possibly out of plan
order.  All three built-ins honour the SeedTree contract: a point's
result depends only on ``(point.seed, point.spec, backend)``, never on
which worker ran it, in what order, or how many workers there are, so
``serial``, ``thread`` and ``process`` are bit-identical per point (the
parity tests in ``tests/test_campaign_executors.py`` enforce this).

* :class:`SerialExecutor` — runs in the calling thread, one Runner per
  distinct point seed; the only executor that accepts a shared
  ``runner_factory`` (how ``Runner.run_batch`` executes a plan on an
  existing Runner, preserving its caches/stats/artifacts).
* :class:`ThreadExecutor` — a thread pool; each worker thread owns its
  own Runner clones.  NumPy kernels release the GIL poorly for the
  object backend, so expect ~1× there; useful when runs block on I/O or
  to overlap vectorized kernels.  Injected ``inputs`` values are shared
  by reference across threads: only *read-only* substrates (e.g. a
  compound library) are safe — a stateful chip would be mutated
  concurrently; inject those with the serial executor.
* :class:`ProcessExecutor` — a process pool; each worker process owns
  cloned Runners keyed by point seed.  Specs travel as their
  ``to_dict()`` payloads and results come back artifact-free (rich
  model objects stay in the worker).  The throughput choice for CPU-
  bound campaigns on multi-core hosts.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Executor as _PoolExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Union

from ..experiments.results import ResultSet
from ..experiments.runner import Runner
from ..experiments.specs import spec_from_dict
from .plan import Plan, PlanPoint

#: Names accepted by :func:`make_executor` (and the CLI's ``--executor``).
#: ``"batched"`` (see :mod:`repro.campaigns.batched`) compiles same-spec
#: vectorized-kind point groups into chip-batched engine calls and runs
#: everything else serially.  ``"async"`` (see :mod:`repro.service.jobs`)
#: submits the plan to a background job manager and streams outcomes back
#: as they land — same bit-identical results, non-blocking submission.
EXECUTORS = ("serial", "thread", "process", "batched", "async")

RunnerFactory = Callable[[int], Runner]


@dataclass(frozen=True)
class PointOutcome:
    """One completed plan point: the result plus its wall time.

    With ``capture_errors`` a failed point streams out as an outcome
    whose ``result`` is ``None`` and whose ``error`` holds the rendered
    exception (plus any trace-violation summary), so a fault-heavy
    campaign keeps flowing instead of dying at the first broken point.
    """

    point: PlanPoint
    result: Optional[ResultSet]
    wall_s: float
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _error_text(exc: BaseException) -> str:
    """Render a captured per-point failure, surfacing the structured
    violation list when the exception carries one (TraceAssertionError)."""
    text = f"{type(exc).__name__}: {exc}"
    violations = getattr(exc, "violations", None)
    if violations:
        rules = sorted({getattr(v, "rule", str(v)) for v in violations})
        text = f"{type(exc).__name__}: {len(violations)} trace violation(s) [{', '.join(rules)}]"
    return text


def _check_workers(workers: Optional[int]) -> int:
    """``None`` means all cores; anything below 1 is an operator error,
    not something to clamp silently."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


class Executor:
    """Interface: stream PointOutcomes for a Plan."""

    name: str = "base"

    def run(
        self,
        plan: Plan,
        *,
        backend: Optional[str] = None,
        inputs: Optional[dict[str, Any]] = None,
        runner_factory: Optional[RunnerFactory] = None,
        capture_errors: bool = False,
    ) -> Iterator[PointOutcome]:
        raise NotImplementedError


#: Per-worker bound on cached Runners (each holds built chips/layouts).
#: A campaign has one distinct seed per replicate, so without a bound a
#: 10k-replicate Monte Carlo would pin 10k calibrated chips per worker.
#: Eviction only costs a rebuild (results are seed-pure), never changes
#: numbers.
MAX_CACHED_RUNNERS = 16


def _cached_runner(
    runners: "OrderedDict[int, Runner]", factory: RunnerFactory, seed: int
) -> Runner:
    """LRU fetch-or-clone bounded at :data:`MAX_CACHED_RUNNERS`."""
    runner = runners.get(seed)
    if runner is None:
        runner = runners[seed] = factory(seed)
    else:
        runners.move_to_end(seed)
    while len(runners) > MAX_CACHED_RUNNERS:
        runners.popitem(last=False)
    return runner


def _stream_pool(
    pool: _PoolExecutor, submit: Callable[[PlanPoint], Any], plan: Plan, workers: int
) -> Iterator[Any]:
    """Submit plan points with a bounded in-flight window and yield
    future results as they complete.

    Submitting everything upfront would let completed-but-unconsumed
    Futures pin their ResultSets (workers outpacing the single store
    consumer), growing RAM with campaign size.  A window of a few
    multiples of the worker count keeps every worker busy while the
    backlog — and its memory — stays flat.
    """
    window = max(4, workers * 4)
    points = iter(plan)
    pending: set = set()
    while True:
        while len(pending) < window:
            point = next(points, None)
            if point is None:
                break
            pending.add(submit(point))
        if not pending:
            break
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            yield future.result()


def _run_point(
    runners: "OrderedDict[int, Runner]",
    factory: RunnerFactory,
    point: PlanPoint,
    backend: Optional[str],
    inputs: Optional[dict[str, Any]],
    capture_errors: bool = False,
) -> PointOutcome:
    """Shared inner loop: fetch-or-clone the Runner for the point's
    seed, execute, time.  ``capture_errors`` turns a per-point exception
    into a failed outcome instead of killing the whole stream."""
    runner = _cached_runner(runners, factory, point.seed)
    start = time.perf_counter()  # repro: allow-wallclock
    try:
        result = runner.run(point.spec, backend=backend, inputs=inputs)
    except Exception as exc:  # noqa: BLE001 — opted into by capture_errors
        if not capture_errors:
            raise
        wall_s = time.perf_counter() - start  # repro: allow-wallclock
        return PointOutcome(point=point, result=None, wall_s=wall_s, error=_error_text(exc))
    return PointOutcome(point=point, result=result, wall_s=time.perf_counter() - start)  # repro: allow-wallclock


class SerialExecutor(Executor):
    """Run every point in the calling thread, in plan order."""

    name = "serial"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers not in (None, 1):
            raise ValueError("the serial executor has exactly one worker")
        self.workers = 1

    def run(
        self,
        plan: Plan,
        *,
        backend: Optional[str] = None,
        inputs: Optional[dict[str, Any]] = None,
        runner_factory: Optional[RunnerFactory] = None,
        capture_errors: bool = False,
    ) -> Iterator[PointOutcome]:
        factory = runner_factory or Runner
        runners: "OrderedDict[int, Runner]" = OrderedDict()
        for point in plan:
            yield _run_point(runners, factory, point, backend, inputs, capture_errors)


class ThreadExecutor(Executor):
    """Run points on a thread pool; each thread owns its Runners."""

    name = "thread"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = _check_workers(workers)

    def run(
        self,
        plan: Plan,
        *,
        backend: Optional[str] = None,
        inputs: Optional[dict[str, Any]] = None,
        runner_factory: Optional[RunnerFactory] = None,
        capture_errors: bool = False,
    ) -> Iterator[PointOutcome]:
        # Validate eagerly, NOT inside the generator: run_campaign must
        # see bad arguments before any store touches the filesystem.
        if runner_factory is not None:
            # Runner carries per-run mutable state (_active_backend,
            # _overridden, provenance); a factory handing threads a
            # shared instance would race on it silently.
            raise ValueError(
                "the thread executor owns per-thread Runners; a shared "
                "runner_factory is only meaningful with the serial executor"
            )
        return self._iter(plan, backend, inputs, capture_errors)

    def _iter(
        self,
        plan: Plan,
        backend: Optional[str],
        inputs: Optional[dict[str, Any]],
        capture_errors: bool = False,
    ) -> Iterator[PointOutcome]:
        factory: RunnerFactory = Runner
        local = threading.local()

        def task(point: PlanPoint) -> PointOutcome:
            runners = getattr(local, "runners", None)
            if runners is None:
                runners = local.runners = OrderedDict()
            return _run_point(runners, factory, point, backend, inputs, capture_errors)

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            yield from _stream_pool(
                pool, lambda point: pool.submit(task, point), plan, self.workers
            )


# Per-process Runner clones, keyed by point seed.  Module-level so the
# cache survives across tasks dispatched to the same worker process;
# bounded like the in-process caches.
_WORKER_RUNNERS: "OrderedDict[int, Runner]" = OrderedDict()


def _process_worker(payload: tuple) -> tuple[int, float, Optional[ResultSet], Optional[str]]:
    """Top-level (picklable) task body for :class:`ProcessExecutor`."""
    index, seed, spec_dict, backend, capture_errors = payload
    runner = _cached_runner(_WORKER_RUNNERS, Runner, seed)
    spec = spec_from_dict(spec_dict)
    start = time.perf_counter()  # repro: allow-wallclock
    try:
        result = runner.run(spec, backend=backend)
    except Exception as exc:  # noqa: BLE001 — opted into by capture_errors
        if not capture_errors:
            raise
        wall_s = time.perf_counter() - start  # repro: allow-wallclock
        return index, wall_s, None, _error_text(exc)
    wall_s = time.perf_counter() - start  # repro: allow-wallclock
    # Artifacts (chips, cultures, ...) stay in the worker: only the
    # columnar result crosses the process boundary.
    return index, wall_s, result.without_artifacts(), None


class ProcessExecutor(Executor):
    """Run points on a process pool of cloned Runners."""

    name = "process"

    def __init__(
        self, workers: Optional[int] = None, start_method: Optional[str] = None
    ) -> None:
        self.workers = _check_workers(workers)
        self.start_method = start_method

    def run(
        self,
        plan: Plan,
        *,
        backend: Optional[str] = None,
        inputs: Optional[dict[str, Any]] = None,
        runner_factory: Optional[RunnerFactory] = None,
        capture_errors: bool = False,
    ) -> Iterator[PointOutcome]:
        # Validate eagerly, NOT inside the generator: run_campaign must
        # see bad arguments before any store touches the filesystem.
        if inputs:
            raise ValueError(
                "in-memory `inputs` substrates cannot cross process boundaries; "
                "use the serial or thread executor to inject pre-built objects"
            )
        if runner_factory is not None:
            raise ValueError("the process executor always clones fresh Runners per worker")
        return self._iter(plan, backend, capture_errors)

    def _iter(
        self, plan: Plan, backend: Optional[str], capture_errors: bool = False
    ) -> Iterator[PointOutcome]:
        by_index = {point.index: point for point in plan}
        context = multiprocessing.get_context(self.start_method)
        with ProcessPoolExecutor(max_workers=self.workers, mp_context=context) as pool:

            def submit(point: PlanPoint):
                return pool.submit(
                    _process_worker,
                    (point.index, point.seed, point.spec.to_dict(), backend, capture_errors),
                )

            for index, wall_s, result, error in _stream_pool(pool, submit, plan, self.workers):
                yield PointOutcome(
                    point=by_index[index], result=result, wall_s=wall_s, error=error
                )


def make_executor(
    executor: Union[str, Executor], workers: Optional[int] = None
) -> Executor:
    """Resolve an executor name (or pass an instance through).

    ``workers`` configures a *named* executor; combining it with an
    already-configured instance is a conflict, not a silent no-op.
    """
    if isinstance(executor, Executor):
        if workers is not None and getattr(executor, "workers", workers) != workers:
            raise ValueError(
                f"workers={workers} conflicts with the provided {executor.name} "
                f"executor instance (workers={executor.workers}); configure the "
                f"instance instead"
            )
        return executor
    if executor == "serial":
        return SerialExecutor(workers)
    if executor == "thread":
        return ThreadExecutor(workers)
    if executor == "process":
        return ProcessExecutor(workers)
    if executor == "batched":
        from .batched import BatchedExecutor

        return BatchedExecutor(workers)
    if executor == "async":
        from ..service.jobs import AsyncExecutor

        return AsyncExecutor(workers)
    raise ValueError(f"unknown executor {executor!r}; choose from {EXECUTORS}")
