"""Campaign reporting: per-point metrics tables and manifest summaries.

Since the inference subsystem landed, the table construction lives in
:mod:`repro.inference.tabulate` (the same :class:`CampaignFrame` the
statistical analyses consume) — this module is the campaign-facing
facade that renders those rows with :mod:`repro.core.tables` so CLI
output matches the benchmark tables' look.  Reports are driven entirely
by what the store holds — each point's axis assignment, replicate, wall
time and scalar metrics — so a campaign reloaded from a
``JsonlResultStore`` directory reports identically to one still in
memory.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

from ..core.tables import render_kv, render_table
from ..inference.tabulate import report_rows as _frame_report_rows
from .store import CampaignResult, ResultStore


def report_rows(
    source: Union[CampaignResult, ResultStore],
    metrics: Optional[Sequence[str]] = None,
) -> tuple[list[str], list[list[Any]]]:
    """``(headers, rows)`` for the per-point table, ordered by point.

    Columns: point, replicate, every axis field that appears in any
    point's assignment, wall time, then the requested metrics
    (defaulting to the scalar metrics shared by every point, sorted).
    Delegates to :func:`repro.inference.tabulate.report_rows`, which is
    built entirely from :meth:`ResultStore.point_metas` — per-point
    metadata carries the scalar metrics, so no record payload is ever
    deserialized for a report.
    """
    return _frame_report_rows(source, metrics=metrics)


def metrics_table(
    source: Union[CampaignResult, ResultStore],
    metrics: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """The aligned per-point metrics table the CLI prints."""
    headers, rows = report_rows(source, metrics=metrics)
    if not rows:
        return title or "(no stored results)"
    return render_table(headers, rows, title=title)


def manifest_summary(manifest: dict[str, Any]) -> str:
    """Key/value header block for ``repro report``."""
    pairs = [
        ("name", manifest.get("name") or "(unnamed)"),
        ("kind", manifest.get("campaign", {}).get("base", {}).get("kind", "?")),
        ("points", manifest.get("n_points", "?")),
        ("seed", manifest.get("seed", "?")),
        ("executor", f"{manifest.get('executor', '?')} ×{manifest.get('workers', '?')}"),
        ("backend", manifest.get("backend") or "(spec default)"),
        ("total wall", f"{float(manifest.get('total_wall_s', 0.0)):.3g} s"),
        ("version", manifest.get("version", "?")),
    ]
    return render_kv("campaign", pairs)
