"""Campaign reporting: per-point metrics tables and manifest summaries.

Built on :mod:`repro.core.tables` so CLI output matches the benchmark
tables' look.  Reports are driven entirely by what the store holds —
each point's axis assignment, replicate, wall time and scalar metrics —
so a campaign reloaded from a ``JsonlResultStore`` directory reports
identically to one still in memory.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

from ..core.tables import render_kv, render_table
from .store import CampaignResult, ResultStore


def _store_of(source: Union[CampaignResult, ResultStore]) -> ResultStore:
    return source.store if isinstance(source, CampaignResult) else source


def report_rows(
    source: Union[CampaignResult, ResultStore],
    metrics: Optional[Sequence[str]] = None,
) -> tuple[list[str], list[list[Any]]]:
    """``(headers, rows)`` for the per-point table, ordered by point.

    Columns: point, replicate, every axis field that appears in any
    point's assignment, wall time, then the requested metrics
    (defaulting to the scalar metrics shared by every point, in the
    first point's order).

    Built entirely from :meth:`ResultStore.point_metas` — per-point
    metadata carries the scalar metrics, so no record payload is ever
    deserialized for a report.
    """
    store = _store_of(source)
    metas = sorted(store.point_metas(), key=lambda meta: meta["point"])
    if not metas:
        return ["point"], []
    axis_names: list[str] = []
    for meta in metas:
        for name in meta.get("assignment", {}):
            if name not in axis_names:
                axis_names.append(name)
    if metrics is None:
        # Sorted, not insertion order: JSONL lines store metrics with
        # sorted keys, so this keeps live and reloaded tables identical.
        first_metrics = metas[0].get("metrics", {})
        metrics = sorted(
            name
            for name in first_metrics
            if all(name in meta.get("metrics", {}) for meta in metas[1:])
        )
    headers = ["point", "replicate", *axis_names, "wall_s", *metrics]
    rows = []
    for meta in metas:
        assignment = meta.get("assignment", {})
        point_metrics = meta.get("metrics", {})
        rows.append(
            [
                meta["point"],
                meta.get("replicate", 0),
                *[assignment.get(name, "") for name in axis_names],
                float(meta.get("wall_s", 0.0)),
                *[point_metrics.get(name, "") for name in metrics],
            ]
        )
    return headers, rows


def metrics_table(
    source: Union[CampaignResult, ResultStore],
    metrics: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """The aligned per-point metrics table the CLI prints."""
    headers, rows = report_rows(source, metrics=metrics)
    if not rows:
        return title or "(no stored results)"
    return render_table(headers, rows, title=title)


def manifest_summary(manifest: dict[str, Any]) -> str:
    """Key/value header block for ``repro report``."""
    pairs = [
        ("name", manifest.get("name") or "(unnamed)"),
        ("kind", manifest.get("campaign", {}).get("base", {}).get("kind", "?")),
        ("points", manifest.get("n_points", "?")),
        ("seed", manifest.get("seed", "?")),
        ("executor", f"{manifest.get('executor', '?')} ×{manifest.get('workers', '?')}"),
        ("backend", manifest.get("backend") or "(spec default)"),
        ("total wall", f"{float(manifest.get('total_wall_s', 0.0)):.3g} s"),
        ("version", manifest.get("version", "?")),
    ]
    return render_kv("campaign", pairs)
