"""Behavioural MOSFET model (EKV-style continuous weak/strong inversion).

The sensor transistors of both chips operate across regimes: the DNA
pixel's reset device and source follower sit in strong inversion, while
pixel leakage floors and the neural pixel's small-signal behaviour hinge
on an accurate transconductance around the calibration bias.  A smooth
single-expression model (forward/reverse EKV interpolation) avoids the
discontinuities of piecewise square-law models, which matters when the
calibration loop solves for a gate voltage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.mismatch import MismatchSample
from ..core.process import ProcessSpec, default_process
from ..core.units import thermal_voltage


@dataclass
class Mosfet:
    """An NMOS or PMOS transistor instance.

    All voltages are *device-referred*: for PMOS pass source-gate /
    source-drain magnitudes, the model is symmetric.  ``mismatch`` shifts
    the threshold and the current factor of this instance.

    Parameters
    ----------
    width, length:
        Drawn dimensions in meters.
    polarity:
        ``"n"`` or ``"p"``; selects nominal Vth and mobility.
    process:
        Technology parameters.
    mismatch:
        Per-device deviation (from :class:`~repro.core.mismatch.MismatchSampler`).
    temperature_k:
        Junction temperature for the thermal voltage and leakage.
    """

    width: float
    length: float
    polarity: str = "n"
    process: ProcessSpec = field(default_factory=default_process)
    mismatch: MismatchSample | None = None
    temperature_k: float = 300.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise ValueError("device dimensions must be positive")
        if self.polarity not in ("n", "p"):
            raise ValueError(f"polarity must be 'n' or 'p', got {self.polarity!r}")

    # ------------------------------------------------------------------
    # Derived parameters
    # ------------------------------------------------------------------
    @property
    def vth(self) -> float:
        """Effective threshold of this instance (nominal + mismatch)."""
        nominal = self.process.vth_n if self.polarity == "n" else self.process.vth_p
        delta = self.mismatch.delta_vth if self.mismatch else 0.0
        return nominal + delta

    @property
    def beta(self) -> float:
        """Current factor mu*Cox*W/L of this instance, A/V^2."""
        mu_cox = self.process.mu_n_cox if self.polarity == "n" else self.process.mu_p_cox
        rel = 1.0 + (self.mismatch.delta_beta_rel if self.mismatch else 0.0)
        return mu_cox * (self.width / self.length) * rel

    @property
    def n_factor(self) -> float:
        return self.process.subthreshold_slope_n

    @property
    def gate_capacitance(self) -> float:
        """Gate-oxide capacitance, the storage cap of the neural pixel."""
        return self.process.gate_capacitance(self.width, self.length)

    @property
    def specific_current(self) -> float:
        """EKV specific current 2*n*beta*Vt^2 separating weak/strong inversion."""
        vt = thermal_voltage(self.temperature_k)
        return 2.0 * self.n_factor * self.beta * vt * vt

    def junction_leakage(self) -> float:
        """Drain-junction leakage (A); the integration-node floor current.

        Scales with drawn drain area approximated as W * 3 Lmin.
        """
        area = self.width * 3.0 * self.process.l_min
        return self.process.junction_leak_density * area

    # ------------------------------------------------------------------
    # Large-signal current
    # ------------------------------------------------------------------
    def _inversion_charge(self, v_pinch_minus_vchannel: float) -> float:
        """EKV interpolation ln^2(1 + exp(x/2)) in normalised units."""
        vt = thermal_voltage(self.temperature_k)
        x = v_pinch_minus_vchannel / vt
        # Numerically safe log1p(exp(x/2)).
        half = 0.5 * x
        if half > 40.0:
            log_term = half
        else:
            log_term = math.log1p(math.exp(half))
        return log_term * log_term

    def ids(self, vgs: float, vds: float, vsb: float = 0.0) -> float:
        """Drain current in amperes for the given terminal voltages.

        Symmetric EKV form: I = Is * (i_f - i_r) with pinch-off voltage
        Vp = (Vgs - Vth)/n.  Channel-length modulation multiplies the
        saturation component.  Negative ``vds`` returns the negated
        current of the mirrored device (model symmetry).
        """
        if vds < 0:
            return -self.ids(vgs - vds, -vds, vsb)
        vp = (vgs - self.vth - 0.2 * vsb) / self.n_factor
        i_f = self._inversion_charge(vp - 0.0)
        i_r = self._inversion_charge(vp - vds)
        current = self.specific_current * (i_f - i_r)
        # Channel-length modulation, scaled to drawn length.
        lam = self.process.lambda_chl * (self.process.l_min / self.length)
        current *= 1.0 + lam * vds
        return current

    def ids_saturation(self, vgs: float) -> float:
        """Current with the drain far in saturation (vds = vdd/2)."""
        return self.ids(vgs, self.process.vdd / 2.0)

    # ------------------------------------------------------------------
    # Small-signal
    # ------------------------------------------------------------------
    def gm(self, vgs: float, vds: float, delta: float = 1e-6) -> float:
        """Transconductance dId/dVgs by symmetric difference."""
        return (self.ids(vgs + delta, vds) - self.ids(vgs - delta, vds)) / (2 * delta)

    def gds(self, vgs: float, vds: float, delta: float = 1e-6) -> float:
        """Output conductance dId/dVds by symmetric difference."""
        return (self.ids(vgs, vds + delta) - self.ids(vgs, vds - delta)) / (2 * delta)

    def gm_over_id(self, vgs: float, vds: float) -> float:
        current = self.ids(vgs, vds)
        if current <= 0:
            raise ValueError("gm/Id undefined at non-positive current")
        return self.gm(vgs, vds) / current

    # ------------------------------------------------------------------
    # Inverse solve — the calibration primitive
    # ------------------------------------------------------------------
    def vgs_for_current(self, target_ids: float, vds: float | None = None) -> float:
        """Gate-source voltage that makes the device carry ``target_ids``.

        This is what the pixel calibration loop of Fig. 6 physically does:
        force a current through M1 and let the feedback find (and store)
        the gate voltage.  Solved by bisection on the monotone ids(vgs).
        """
        if target_ids <= 0:
            raise ValueError(f"target current must be positive, got {target_ids}")
        if vds is None:
            vds = self.process.vdd / 2.0
        lo, hi = -1.0, self.process.vdd + 2.0
        f_lo = self.ids(lo, vds) - target_ids
        f_hi = self.ids(hi, vds) - target_ids
        if f_lo > 0 or f_hi < 0:
            raise ValueError(
                f"target {target_ids} A out of range [{self.ids(lo, vds)}, {self.ids(hi, vds)}]"
            )
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            if self.ids(mid, vds) < target_ids:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def flicker_corner_hz(self, vgs: float, vds: float) -> float:
        """Approximate 1/f corner frequency at this bias.

        Corner where flicker input-referred PSD Kf/(Cox^2 W L f) equals the
        thermal channel noise referred to the gate.
        """
        gm = self.gm(vgs, vds)
        if gm <= 0:
            raise ValueError("flicker corner undefined at zero gm")
        from ..core.units import BOLTZMANN

        thermal_psd = 4.0 * BOLTZMANN * self.temperature_k * (2.0 / 3.0) / gm
        cox2_wl = (self.process.c_ox**2) * self.width * self.length
        if cox2_wl <= 0:
            raise ValueError("invalid geometry")
        flicker_num = self.process.flicker_kf / cox2_wl
        return flicker_num / thermal_psd
