"""Bandgap voltage reference — DNA-chip periphery (Section 2).

The paper lists "bandgap and current references" among the peripheral
circuits.  The behavioural model captures the curvature-limited
temperature dependence and the mismatch-driven untrimmed spread, and
derives the reference currents the pixel DACs and ADCs consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import RngLike, ensure_rng


@dataclass
class BandgapReference:
    """Curvature-model bandgap.

    V(T) = v_nominal - curvature * (T - t_peak)^2 + sample_offset

    Parameters
    ----------
    v_nominal:
        Output at the curvature peak (~1.2 V plus any internal gain).
    curvature:
        Parabolic TC coefficient in V/K^2 (typ. 1e-6 for first-order
        compensated designs).
    t_peak_k:
        Temperature of zero TC.
    untrimmed_sigma_v:
        One-sigma part-to-part spread before trimming.
    """

    v_nominal: float = 1.205
    curvature: float = 1.2e-6
    t_peak_k: float = 320.0
    untrimmed_sigma_v: float = 0.015
    sample_offset: float = 0.0

    def voltage(self, temperature_k: float = 300.0) -> float:
        if temperature_k <= 0:
            raise ValueError("temperature must be positive")
        return self.v_nominal - self.curvature * (temperature_k - self.t_peak_k) ** 2 + self.sample_offset

    def tempco_ppm_per_k(self, t_low: float = 273.0, t_high: float = 358.0) -> float:
        """Box-method temperature coefficient over [t_low, t_high]."""
        if t_high <= t_low:
            raise ValueError("need t_low < t_high")
        temps = np.linspace(t_low, t_high, 64)
        volts = np.array([self.voltage(t) for t in temps])
        return float((volts.max() - volts.min()) / self.v_nominal / (t_high - t_low) * 1e6)

    @classmethod
    def sample(cls, rng: RngLike = None, **kwargs) -> "BandgapReference":
        """Draw one untrimmed part from the population."""
        generator = ensure_rng(rng)
        ref = cls(**kwargs)
        ref.sample_offset = float(generator.normal(0.0, ref.untrimmed_sigma_v))
        return ref

    def trim(self, target_v: float | None = None, step_v: float = 0.002) -> int:
        """Digital trim toward ``target_v`` in ``step_v`` increments.

        Returns the signed number of trim steps applied; emulates the
        chip's production trim DAC.
        """
        target = target_v if target_v is not None else self.v_nominal
        error = self.voltage() - target
        steps = int(round(-error / step_v))
        self.sample_offset += steps * step_v
        return steps

    def reference_current(self, resistor_ohm: float, temperature_k: float = 300.0) -> float:
        """V_ref / R current reference (R assumed temperature-flat)."""
        if resistor_ohm <= 0:
            raise ValueError("resistor must be positive")
        return self.voltage(temperature_k) / resistor_ohm
