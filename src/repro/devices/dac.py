"""Resistor-string D/A converter — DNA-chip periphery.

The paper: "D/A-converters to provide the required voltages for the
electrochemical operation".  Redox-cycling needs two electrode potentials
(generator/collector) placed around the redox potential of the label
product; the DACs set those potentials.  The model includes resistor
mismatch (INL/DNL) and a buffered output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.rng import RngLike, ensure_rng


@dataclass
class ResistorStringDac:
    """N-bit single-string DAC.

    Parameters
    ----------
    bits:
        Resolution.
    v_low, v_high:
        Reference rails.
    resistor_sigma:
        Relative sigma of each unit resistor (sets INL/DNL).
    rng:
        Seeded generator for the mismatch draw of this instance.
    """

    bits: int = 8
    v_low: float = 0.0
    v_high: float = 5.0
    resistor_sigma: float = 0.002
    _tap_voltages: np.ndarray = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise ValueError("bits must lie in [1, 16]")
        if self.v_high <= self.v_low:
            raise ValueError("v_high must exceed v_low")
        if self.resistor_sigma < 0:
            raise ValueError("resistor sigma must be non-negative")
        if self._tap_voltages is None:
            self._build_string(None)

    def _build_string(self, rng: RngLike) -> None:
        generator = ensure_rng(rng)
        count = 2**self.bits
        resistors = 1.0 + generator.normal(0.0, self.resistor_sigma, size=count)
        resistors = np.clip(resistors, 0.01, None)
        cumulative = np.concatenate([[0.0], np.cumsum(resistors)])
        self._tap_voltages = self.v_low + (self.v_high - self.v_low) * cumulative / cumulative[-1]

    @classmethod
    def sample(cls, rng: RngLike = None, **kwargs) -> "ResistorStringDac":
        dac = cls(**kwargs)
        dac._build_string(rng)
        return dac

    @property
    def lsb(self) -> float:
        return (self.v_high - self.v_low) / (2**self.bits)

    @property
    def full_scale(self) -> float:
        return self.v_high - self.v_low

    def output(self, code: int) -> float:
        """Tap voltage for a digital input code."""
        if not 0 <= code < 2**self.bits:
            raise ValueError(f"code {code} out of range for {self.bits} bits")
        return float(self._tap_voltages[code])

    def code_for_voltage(self, voltage: float) -> int:
        """Nearest code producing ``voltage`` (controller-side helper)."""
        if not self.v_low <= voltage <= self.v_high:
            raise ValueError(f"voltage {voltage} outside [{self.v_low}, {self.v_high}]")
        codes = np.arange(2**self.bits)
        ideal = self.v_low + codes * self.lsb
        return int(np.argmin(np.abs(ideal - voltage)))

    def inl_lsb(self) -> np.ndarray:
        """Integral nonlinearity per code, in LSB (endpoint-corrected)."""
        codes = np.arange(2**self.bits)
        actual = self._tap_voltages[:-1] if len(self._tap_voltages) == 2**self.bits + 1 else self._tap_voltages[codes]
        actual = np.array([self.output(int(c)) for c in codes])
        endpoints = np.linspace(actual[0], actual[-1], len(codes))
        return (actual - endpoints) / self.lsb

    def dnl_lsb(self) -> np.ndarray:
        """Differential nonlinearity per step, in LSB."""
        codes = np.arange(2**self.bits)
        actual = np.array([self.output(int(c)) for c in codes])
        steps = np.diff(actual)
        return steps / self.lsb - 1.0

    def worst_inl(self) -> float:
        return float(np.max(np.abs(self.inl_lsb())))

    def worst_dnl(self) -> float:
        return float(np.max(np.abs(self.dnl_lsb())))
