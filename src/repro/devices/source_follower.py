"""Source follower — the level shifter inside the Fig. 3 regulation loop.

The op-amp output drives the sensor electrode through a source follower
transistor; its sub-unity gain and level shift are part of the loop's
static error budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.process import ProcessSpec, default_process
from .mosfet import Mosfet


@dataclass
class SourceFollower:
    """NMOS source follower with a current-source load.

    Parameters
    ----------
    device:
        The follower transistor.
    bias_current:
        Load current pulled from the source node.
    body_effect_factor:
        Fractional gain reduction from the bulk transconductance
        (gmb/gm); typical 0.1-0.25 for the paper's technology.
    """

    device: Mosfet
    bias_current: float
    body_effect_factor: float = 0.2

    def __post_init__(self) -> None:
        if self.bias_current <= 0:
            raise ValueError("bias current must be positive")
        if not 0.0 <= self.body_effect_factor < 1.0:
            raise ValueError("body effect factor must lie in [0, 1)")

    def level_shift(self) -> float:
        """Gate-to-source DC shift at the bias current."""
        return self.device.vgs_for_current(self.bias_current)

    def small_signal_gain(self) -> float:
        """vout/vin = gm/(gm + gmb) < 1."""
        vgs = self.level_shift()
        gm = self.device.gm(vgs, self.device.process.vdd / 2.0)
        gmb = self.body_effect_factor * gm
        return gm / (gm + gmb)

    def output_for_input(self, v_in: float) -> float:
        """Static output voltage: input minus the bias-dependent Vgs."""
        return v_in - self.level_shift()

    def output_resistance(self) -> float:
        """1/gm output resistance seen by the electrode node."""
        vgs = self.level_shift()
        gm = self.device.gm(vgs, self.device.process.vdd / 2.0)
        if gm <= 0:
            raise ValueError("follower has no transconductance at this bias")
        return 1.0 / gm


def default_follower(process: ProcessSpec | None = None, bias_current: float = 10e-6) -> SourceFollower:
    """Follower sized like the DNA pixel's electrode driver."""
    process = process or default_process()
    device = Mosfet(width=10e-6, length=1e-6, polarity="n", process=process)
    return SourceFollower(device=device, bias_current=bias_current)
