"""Gain stages and amplifier chains — the Fig. 6 signal path building block.

The neural readout multiplies the pixel signal by x100 and x7 on chip
(readout amplifier, 4 MHz) and x4, x2 off chip (32 MHz output driver in
between).  Each stage has gain error, offset, bandwidth, saturation and
input-referred noise; stages can be *calibrated* (offset measured and
subtracted), mirroring the paper's statement that "the subsequent current
gain stages also undergo a calibration procedure".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.noise import single_pole_enbw, white_noise_trace
from ..core.rng import RngLike, ensure_rng
from ..core.signals import Trace


@dataclass
class GainStage:
    """One amplifier stage.

    Parameters
    ----------
    nominal_gain:
        Design gain (V/V); may be <1 for attenuators.
    bandwidth_hz:
        Single-pole -3 dB bandwidth.
    gain_error:
        Relative static gain error of this instance.
    offset_v:
        Input-referred offset.
    input_noise_density:
        Input-referred white noise PSD, V^2/Hz.
    rail_low, rail_high:
        Output clipping limits.
    label:
        Stage name for reports ("x100", "mux buffer", ...).
    """

    nominal_gain: float
    bandwidth_hz: float
    gain_error: float = 0.0
    offset_v: float = 0.0
    input_noise_density: float = 0.0
    rail_low: float = -np.inf
    rail_high: float = np.inf
    label: str = ""
    _offset_correction: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.nominal_gain == 0:
            raise ValueError("gain must be non-zero")
        if self.bandwidth_hz <= 0:
            raise ValueError("bandwidth must be positive")
        if self.rail_high <= self.rail_low:
            raise ValueError("rail_high must exceed rail_low")
        if self.input_noise_density < 0:
            raise ValueError("noise density must be non-negative")

    @property
    def actual_gain(self) -> float:
        return self.nominal_gain * (1.0 + self.gain_error)

    @property
    def residual_offset(self) -> float:
        """Offset remaining after any calibration."""
        return self.offset_v - self._offset_correction

    def calibrate_offset(self, residual_v: float = 0.0) -> None:
        """Measure-and-subtract offset calibration.

        ``residual_v`` models the imperfection of the correction (e.g.
        charge injection of the zeroing switch).
        """
        self._offset_correction = self.offset_v - residual_v

    def reset_calibration(self) -> None:
        self._offset_correction = 0.0

    def output_noise_rms(self) -> float:
        """RMS output noise from this stage's own input-referred source."""
        enbw = single_pole_enbw(self.bandwidth_hz)
        return abs(self.actual_gain) * float(np.sqrt(self.input_noise_density * enbw))

    def process(self, trace: Trace, rng: RngLike = None, include_noise: bool = True) -> Trace:
        """Amplify a waveform: add offset+noise at the input, multiply by
        the actual gain, bandlimit, clip to the rails."""
        x = trace
        if self.residual_offset != 0.0:
            x = x + self.residual_offset
        if include_noise and self.input_noise_density > 0:
            noise = white_noise_trace(self.input_noise_density, x.duration, x.dt, rng=rng)
            if noise.n == x.n:
                x = x + noise
        amplified = x * self.actual_gain
        limited = amplified.lowpass_fast(self.bandwidth_hz)
        out = limited.clipped(self.rail_low, self.rail_high)
        out.label = f"{trace.label} -> {self.label or 'stage'}"
        return out

    def dc_transfer(self, v_in: float) -> float:
        """Static transfer including offset and clipping."""
        out = (v_in + self.residual_offset) * self.actual_gain
        return float(np.clip(out, self.rail_low, self.rail_high))


@dataclass
class AmplifierChain:
    """A cascade of gain stages with chain-level metrics."""

    stages: list[GainStage]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("chain needs at least one stage")

    @property
    def nominal_gain(self) -> float:
        gain = 1.0
        for stage in self.stages:
            gain *= stage.nominal_gain
        return gain

    @property
    def actual_gain(self) -> float:
        gain = 1.0
        for stage in self.stages:
            gain *= stage.actual_gain
        return gain

    def bandwidth_hz(self) -> float:
        """Approximate cascade -3 dB bandwidth of the single-pole stages.

        Uses the standard shrinkage factor sqrt(2^(1/n) - 1) applied to
        the dominant (lowest) pole when poles are close; exact for one
        stage.
        """
        poles = sorted(stage.bandwidth_hz for stage in self.stages)
        dominant = poles[0]
        same = sum(1 for p in poles if p < 3.0 * dominant)
        if same <= 1:
            return dominant
        return dominant * float(np.sqrt(2.0 ** (1.0 / same) - 1.0))

    def input_referred_offset(self) -> float:
        """Chain offset referred to the input: each stage offset divided
        by the gain preceding it."""
        total = 0.0
        preceding = 1.0
        for stage in self.stages:
            total += stage.residual_offset / preceding
            preceding *= stage.actual_gain
        return total

    def input_referred_noise_rms(self) -> float:
        """RMS noise referred to the chain input (quadrature sum)."""
        total_sq = 0.0
        preceding = 1.0
        for stage in self.stages:
            enbw = single_pole_enbw(min(s.bandwidth_hz for s in self.stages))
            stage_rms = float(np.sqrt(stage.input_noise_density * enbw))
            total_sq += (stage_rms / preceding) ** 2
            preceding *= abs(stage.actual_gain)
        return float(np.sqrt(total_sq))

    def calibrate_all(self, residual_v: float = 0.0) -> None:
        for stage in self.stages:
            stage.calibrate_offset(residual_v)

    def process(self, trace: Trace, rng: RngLike = None, include_noise: bool = True) -> Trace:
        generator = ensure_rng(rng)
        out = trace
        for stage in self.stages:
            out = stage.process(out, rng=generator, include_noise=include_noise)
        return out

    def dc_transfer(self, v_in: float) -> float:
        value = v_in
        for stage in self.stages:
            value = stage.dc_transfer(value)
        return value
