"""MOS switch with on-resistance, charge injection and off-state leakage.

Switches S1-S3 of the neural pixel (Fig. 6) and the reset transistor of
the DNA pixel (Fig. 3) are where the calibration concept meets reality:
opening S1 injects channel charge onto the storage gate, perturbing the
just-calibrated voltage, and off-state leakage slowly discharges it —
both set how often the array must be re-calibrated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.process import ProcessSpec, default_process


@dataclass
class MosSwitch:
    """A single NMOS pass switch.

    Parameters
    ----------
    width, length:
        Device dimensions (meters); set Ron and injected charge.
    process:
        Technology parameters.
    """

    width: float
    length: float
    process: ProcessSpec = field(default_factory=default_process)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise ValueError("switch dimensions must be positive")

    def on_resistance(self, v_signal: float) -> float:
        """Triode on-resistance at the given signal level (gate at VDD)."""
        v_ov = self.process.vdd - self.process.vth_n - v_signal
        if v_ov <= 0.05:
            v_ov = 0.05  # switch barely on; clamp to avoid divergence
        beta = self.process.mu_n_cox * self.width / self.length
        return 1.0 / (beta * v_ov)

    def channel_charge(self, v_signal: float) -> float:
        """Total channel charge when on, Q = Cox W L (VDD - Vth - Vsig)."""
        v_ov = max(0.0, self.process.vdd - self.process.vth_n - v_signal)
        return self.process.c_ox * self.width * self.length * v_ov

    def injection_step(self, v_signal: float, node_capacitance: float, split: float = 0.5) -> float:
        """Voltage step on the storage node when the switch opens.

        ``split`` is the fraction of the channel charge that lands on the
        node (0.5 for symmetric fast switching).  Negative step because
        NMOS channel charge is electrons.
        """
        if node_capacitance <= 0:
            raise ValueError("node capacitance must be positive")
        if not 0.0 <= split <= 1.0:
            raise ValueError("split must lie in [0, 1]")
        return -split * self.channel_charge(v_signal) / node_capacitance

    def clock_feedthrough(self, node_capacitance: float, overlap_cap_per_width: float = 0.3e-9) -> float:
        """Step from gate-overlap coupling of the falling clock edge.

        ``overlap_cap_per_width`` in F/m (0.3 fF/um default).
        """
        if node_capacitance <= 0:
            raise ValueError("node capacitance must be positive")
        c_ov = overlap_cap_per_width * self.width
        return -self.process.vdd * c_ov / (c_ov + node_capacitance)

    def off_leakage(self) -> float:
        """Off-state leakage current (junction-dominated), amperes."""
        area = self.width * 3.0 * self.process.l_min
        return self.process.junction_leak_density * area

    def settling_time_constant(self, v_signal: float, node_capacitance: float) -> float:
        """Ron*C time constant when the switch is closed."""
        if node_capacitance <= 0:
            raise ValueError("node capacitance must be positive")
        return self.on_resistance(v_signal) * node_capacitance

    def droop_rate(self, node_capacitance: float) -> float:
        """Storage-node droop in V/s caused by off-state leakage."""
        if node_capacitance <= 0:
            raise ValueError("node capacitance must be positive")
        return self.off_leakage() / node_capacitance
