"""Behavioural operational amplifier.

Used twice in the paper: the regulation loop holding the DNA sensor
electrode at its electrochemical potential (Fig. 3) and the neural pixel
loop A/M3/M4 (Fig. 6).  The model captures finite DC gain, input offset,
a single-pole bandwidth, and output saturation — the nonidealities those
loops must tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.signals import Trace


@dataclass
class OpAmp:
    """Single-pole op-amp with offset and rail limits.

    Parameters
    ----------
    dc_gain:
        Open-loop DC gain (V/V).
    gbw_hz:
        Gain-bandwidth product; the open-loop pole sits at gbw/dc_gain.
    offset_v:
        Input-referred offset voltage.
    rail_low, rail_high:
        Output saturation limits.
    slew_rate:
        Maximum output slope in V/s (0 disables slew limiting).
    """

    dc_gain: float = 10_000.0
    gbw_hz: float = 10e6
    offset_v: float = 0.0
    rail_low: float = 0.0
    rail_high: float = 5.0
    slew_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.dc_gain <= 0 or self.gbw_hz <= 0:
            raise ValueError("dc_gain and gbw must be positive")
        if self.rail_high <= self.rail_low:
            raise ValueError("rail_high must exceed rail_low")

    # ------------------------------------------------------------------
    # Static (settled) behaviour
    # ------------------------------------------------------------------
    def output_static(self, v_plus: float, v_minus: float) -> float:
        """Settled open-loop output with saturation."""
        out = self.dc_gain * (v_plus - v_minus + self.offset_v)
        return float(np.clip(out, self.rail_low, self.rail_high))

    def follower_error(self, v_target: float) -> float:
        """Static error of a unity-feedback buffer: target/(1+A) + offset.

        This quantifies how precisely the regulation loop pins the sensor
        electrode voltage.
        """
        return (v_target - self.rail_low) / (1.0 + self.dc_gain) + self.offset_v * (
            self.dc_gain / (1.0 + self.dc_gain)
        )

    def closed_loop_gain(self, feedback_fraction: float) -> float:
        """A / (1 + A*beta) for a resistive feedback fraction beta."""
        if not 0.0 < feedback_fraction <= 1.0:
            raise ValueError("feedback fraction must lie in (0, 1]")
        return self.dc_gain / (1.0 + self.dc_gain * feedback_fraction)

    def closed_loop_bandwidth(self, feedback_fraction: float) -> float:
        """Closed-loop -3 dB bandwidth ~ GBW * beta."""
        if not 0.0 < feedback_fraction <= 1.0:
            raise ValueError("feedback fraction must lie in (0, 1]")
        return self.gbw_hz * feedback_fraction

    # ------------------------------------------------------------------
    # Dynamic behaviour
    # ------------------------------------------------------------------
    def follower_response(self, target: Trace) -> Trace:
        """Unity-gain buffer response: single pole at GBW plus slew limit.

        Processes the target waveform sample by sample; used to model the
        electrode-regulation settling after a reset pulse.
        """
        pole_hz = self.closed_loop_bandwidth(1.0)
        alpha = 1.0 - np.exp(-2.0 * np.pi * pole_hz * target.dt)
        out = np.empty_like(target.samples)
        state = float(np.clip(target.samples[0] + self.offset_v, self.rail_low, self.rail_high))
        max_step = self.slew_rate * target.dt if self.slew_rate > 0 else np.inf
        for i, x in enumerate(target.samples):
            desired = x + self.offset_v
            step = alpha * (desired - state)
            step = float(np.clip(step, -max_step, max_step))
            state = float(np.clip(state + step, self.rail_low, self.rail_high))
            out[i] = state
        return Trace(out, target.dt, target.t0, label=f"{target.label} (buffered)")

    def settling_time(self, step_v: float, tolerance: float = 1e-3) -> float:
        """Time for a unity-feedback step to settle within ``tolerance``
        (relative).  Includes the slew-limited phase when applicable."""
        if step_v == 0:
            return 0.0
        if tolerance <= 0 or tolerance >= 1:
            raise ValueError("tolerance must lie in (0, 1)")
        pole_hz = self.closed_loop_bandwidth(1.0)
        tau = 1.0 / (2.0 * np.pi * pole_hz)
        linear_time = tau * np.log(1.0 / tolerance)
        if self.slew_rate <= 0:
            return float(linear_time)
        # Slew phase until the exponential slope falls below the slew rate.
        slew_boundary = self.slew_rate * tau
        step_abs = abs(step_v)
        if step_abs <= slew_boundary:
            return float(linear_time)
        slew_time = (step_abs - slew_boundary) / self.slew_rate
        return float(slew_time + tau * np.log(slew_boundary / (tolerance * step_abs)) + tau)
