"""Integration capacitor with leakage and voltage coefficient.

Cint of the Fig. 3 sawtooth generator: the sensor current charges it, the
reset transistor discharges it.  Leakage across it (plus junction leakage
of the attached devices) sets the error floor of the 1 pA measurements.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Capacitor:
    """Linear capacitor with parallel leakage and first-order V-coefficient.

    Parameters
    ----------
    capacitance_f:
        Nominal value at 0 V bias.
    leakage_conductance_s:
        Parallel conductance (A/V of leak).
    voltage_coefficient:
        Fractional capacitance change per volt.
    """

    capacitance_f: float
    leakage_conductance_s: float = 0.0
    voltage_coefficient: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0:
            raise ValueError("capacitance must be positive")
        if self.leakage_conductance_s < 0:
            raise ValueError("leakage conductance must be non-negative")

    def effective_capacitance(self, voltage: float) -> float:
        return self.capacitance_f * (1.0 + self.voltage_coefficient * voltage)

    def leakage_current(self, voltage: float) -> float:
        return self.leakage_conductance_s * voltage

    def charge_time(self, current_a: float, delta_v: float, start_v: float = 0.0) -> float:
        """Time for a constant current to slew the cap by ``delta_v``.

        Accounts for the leakage opposing the charge: dV/dt =
        (I - G*V)/C.  Raises if the current cannot reach the target
        (leak-limited plateau below delta_v).
        """
        if current_a <= 0 or delta_v <= 0:
            raise ValueError("current and delta_v must be positive")
        cap = self.effective_capacitance(start_v + 0.5 * delta_v)
        g = self.leakage_conductance_s
        if g == 0:
            return cap * delta_v / current_a
        import math

        v_inf = current_a / g
        v_end = start_v + delta_v
        if v_inf <= v_end:
            raise ValueError(
                f"current {current_a} A cannot charge past {v_inf:.3g} V "
                f"(leak-limited); target {v_end:.3g} V"
            )
        tau = cap / g
        return tau * math.log((v_inf - start_v) / (v_inf - v_end))

    def droop(self, voltage: float, duration_s: float) -> float:
        """Voltage lost to leakage over ``duration_s`` starting at ``voltage``."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if self.leakage_conductance_s == 0:
            return 0.0
        import math

        tau = self.effective_capacitance(voltage) / self.leakage_conductance_s
        return voltage * (1.0 - math.exp(-duration_s / tau))
