"""Behavioural comparator with offset, hysteresis and delay.

The heart of the Fig. 3 sawtooth generator: when the integrated sensor
voltage crosses the switching threshold, the comparator (after its
propagation delay) fires the reset pulse.  Offset shifts the effective
swing, hysteresis guards against chatter, and the delay adds dead time
that compresses the transfer characteristic at high currents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import RngLike, ensure_rng
from ..core.signals import Trace


@dataclass
class Comparator:
    """Threshold comparator.

    Parameters
    ----------
    threshold_v:
        Nominal switching threshold.
    offset_v:
        Input-referred offset of this instance (adds to threshold).
    hysteresis_v:
        Full hysteresis width; the falling threshold is
        ``threshold - hysteresis``.
    delay_s:
        Propagation delay from crossing to output toggle.
    noise_rms_v:
        Input-referred RMS noise, randomising individual trip points.
    """

    threshold_v: float
    offset_v: float = 0.0
    hysteresis_v: float = 0.0
    delay_s: float = 0.0
    noise_rms_v: float = 0.0

    def __post_init__(self) -> None:
        if self.hysteresis_v < 0:
            raise ValueError("hysteresis must be non-negative")
        if self.delay_s < 0:
            raise ValueError("delay must be non-negative")
        if self.noise_rms_v < 0:
            raise ValueError("noise must be non-negative")

    @property
    def effective_threshold(self) -> float:
        """Rising-edge trip level including offset."""
        return self.threshold_v + self.offset_v

    def trip_level(self, rng: RngLike = None) -> float:
        """One noisy realisation of the rising trip level."""
        if self.noise_rms_v == 0:
            return self.effective_threshold
        generator = ensure_rng(rng)
        return self.effective_threshold + float(generator.normal(0.0, self.noise_rms_v))

    def compare_static(self, v_in: float, state: bool = False) -> bool:
        """Settled output for input ``v_in`` given the previous ``state``
        (hysteresis memory)."""
        rising = self.effective_threshold
        falling = rising - self.hysteresis_v
        if state:
            return v_in > falling
        return v_in > rising

    def process(self, trace: Trace, rng: RngLike = None) -> Trace:
        """Produce the comparator's 0/1 output waveform for an input trace.

        The propagation delay is applied as a sample shift; per-crossing
        noise jitters the trip instant.
        """
        generator = ensure_rng(rng)
        rising = self.effective_threshold
        falling = rising - self.hysteresis_v
        out = np.zeros(trace.n)
        state = False
        noisy_threshold = self.trip_level(generator)
        for i, v in enumerate(trace.samples):
            if not state and v > noisy_threshold:
                state = True
            elif state and v <= falling:
                state = False
                noisy_threshold = self.trip_level(generator)
            out[i] = 1.0 if state else 0.0
        result = Trace(out, trace.dt, trace.t0, label="comparator out")
        if self.delay_s > 0:
            result = result.delayed(self.delay_s)
        return result

    def first_crossing_time(self, trace: Trace, rng: RngLike = None) -> float | None:
        """Time of the first rising crossing (plus delay), or None."""
        level = self.trip_level(rng)
        above = trace.samples > level
        indices = np.nonzero(above)[0]
        if len(indices) == 0:
            return None
        return float(trace.t0 + indices[0] * trace.dt + self.delay_s)
