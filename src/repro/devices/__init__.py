"""Behavioural analog device models (0.5 um CMOS per the paper's Fig. 4)."""

from .amplifier import AmplifierChain, GainStage
from .bandgap import BandgapReference
from .capacitor import Capacitor
from .comparator import Comparator
from .current_mirror import CurrentMirror, ReferenceCurrentFanout
from .dac import ResistorStringDac
from .mosfet import Mosfet
from .opamp import OpAmp
from .source_follower import SourceFollower, default_follower
from .switches import MosSwitch

__all__ = [
    "AmplifierChain",
    "BandgapReference",
    "Capacitor",
    "Comparator",
    "CurrentMirror",
    "GainStage",
    "Mosfet",
    "MosSwitch",
    "OpAmp",
    "ReferenceCurrentFanout",
    "ResistorStringDac",
    "SourceFollower",
    "default_follower",
]
