"""Current mirrors and reference current sources.

The DNA chip periphery distributes bandgap-derived reference currents to
all 128 pixels; the neural pixel's M2 is a mirrored calibration current
source.  Mirror ratio errors come from threshold and beta mismatch of the
device pair, so mirrors are built from two :class:`~repro.devices.mosfet.Mosfet`
instances rather than an abstract gain number.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.mismatch import MismatchSampler
from ..core.process import ProcessSpec, default_process
from ..core.rng import RngLike, ensure_rng
from .mosfet import Mosfet


@dataclass
class CurrentMirror:
    """A two-transistor mirror with explicit devices.

    Parameters
    ----------
    reference, output:
        The diode-connected input device and the output device.  Their
        W/L ratio sets the nominal gain.
    """

    reference: Mosfet
    output: Mosfet

    @classmethod
    def matched_pair(
        cls,
        width: float,
        length: float,
        gain: float = 1.0,
        process: ProcessSpec | None = None,
        rng: RngLike = None,
    ) -> "CurrentMirror":
        """Build a mirror whose output device is ``gain`` times wider,
        with Pelgrom mismatch applied to both devices."""
        if gain <= 0:
            raise ValueError("mirror gain must be positive")
        process = process or default_process()
        sampler = MismatchSampler(process, width, length)
        generator = ensure_rng(rng)
        m_ref = Mosfet(width, length, "n", process, sampler.draw(generator))
        sampler_out = MismatchSampler(process, width * gain, length)
        m_out = Mosfet(width * gain, length, "n", process, sampler_out.draw(generator))
        return cls(reference=m_ref, output=m_out)

    @property
    def nominal_gain(self) -> float:
        return (self.output.width / self.output.length) / (
            self.reference.width / self.reference.length
        )

    def transfer(self, i_in: float, v_out: float | None = None) -> float:
        """Output current for input current ``i_in``.

        Solves the diode-connected input for its gate voltage, then
        evaluates the output device at that gate voltage — mismatch and
        channel-length modulation produce the realistic ratio error.
        """
        if i_in <= 0:
            raise ValueError("mirror input current must be positive")
        v_gate = self.reference.vgs_for_current(i_in, vds=None)
        # Diode connection: vds = vgs on the reference side.
        v_gate = self._solve_diode(i_in)
        if v_out is None:
            v_out = self.reference.process.vdd / 2.0
        return self.output.ids(v_gate, v_out)

    def _solve_diode(self, i_in: float) -> float:
        """Gate voltage of the diode-connected reference carrying i_in."""
        lo, hi = -1.0, self.reference.process.vdd + 2.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.reference.ids(mid, mid) < i_in:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def gain_error(self, i_in: float) -> float:
        """Relative deviation of the realised gain from nominal."""
        realised = self.transfer(i_in) / i_in
        return realised / self.nominal_gain - 1.0


@dataclass
class ReferenceCurrentFanout:
    """Distributes one master current to many outputs through mirrors.

    Models the DNA chip's current-reference tree: each branch has its own
    mismatch, so pixels see slightly different bias currents; the chip's
    auto-calibration must absorb this spread.
    """

    master_current: float
    branches: list[CurrentMirror]

    @classmethod
    def build(
        cls,
        master_current: float,
        count: int,
        width: float = 4e-6,
        length: float = 2e-6,
        process: ProcessSpec | None = None,
        rng: RngLike = None,
    ) -> "ReferenceCurrentFanout":
        if master_current <= 0:
            raise ValueError("master current must be positive")
        if count <= 0:
            raise ValueError("need at least one branch")
        generator = ensure_rng(rng)
        branches = [
            CurrentMirror.matched_pair(width, length, 1.0, process, generator)
            for _ in range(count)
        ]
        return cls(master_current=master_current, branches=branches)

    def branch_currents(self) -> np.ndarray:
        return np.asarray([mirror.transfer(self.master_current) for mirror in self.branches])

    def spread(self) -> float:
        """sigma/mean of the distributed currents."""
        currents = self.branch_currents()
        return float(np.std(currents) / np.mean(currents))
