"""ASCII histograms for benchmark reports (no plotting dependency)."""

from __future__ import annotations

import numpy as np


def ascii_histogram(
    values: np.ndarray,
    bins: int = 12,
    width: int = 40,
    unit: str = "",
    log_x: bool = False,
) -> str:
    """Render a horizontal-bar histogram of ``values``.

    ``log_x`` buckets on a log axis — used for the sensor-current maps
    that span five decades.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ValueError("cannot histogram an empty array")
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be positive")
    if log_x:
        positive = values[values > 0]
        if positive.size == 0:
            raise ValueError("log histogram needs positive values")
        data = np.log10(positive)
    else:
        data = values
    counts, edges = np.histogram(data, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = []
    from ..core.units import si_format

    for i, count in enumerate(counts):
        lo, hi = edges[i], edges[i + 1]
        if log_x:
            label = f"{si_format(10**lo, unit)} .. {si_format(10**hi, unit)}"
        else:
            label = f"{si_format(lo, unit)} .. {si_format(hi, unit)}"
        bar = "#" * max(0, int(round(width * count / peak)))
        lines.append(f"{label:>24} | {bar} {count}")
    return "\n".join(lines)
