"""Experiment analysis: ADC transfer, calibration statistics, histograms."""

from .calibration_stats import CalibrationReport, calibration_report
from .histograms import ascii_histogram
from .transfer import TransferAnalysis, TransferRow, characterize_adc

__all__ = [
    "CalibrationReport",
    "TransferAnalysis",
    "TransferRow",
    "ascii_histogram",
    "calibration_report",
    "characterize_adc",
]
