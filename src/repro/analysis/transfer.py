"""Transfer-characteristic analysis of the in-pixel ADC (Fig. 3 claims).

Produces the rows the Fig. 3 benchmark prints: frequency, counts,
proportionality error and dead-time model across the 1 pA - 100 nA
sweep, plus summary metrics (log-log slope, usable decades).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.fitting import loglog_slope, proportionality_error, usable_dynamic_range
from ..core.rng import RngLike, ensure_rng
from ..core.sweep import log_space
from ..pixel.sawtooth_adc import SawtoothAdc


@dataclass
class TransferRow:
    """One sweep point of the ADC transfer characteristic."""

    current_a: float
    frequency_hz: float
    ideal_frequency_hz: float
    count: int
    measured_frequency_hz: float
    relative_error: float


@dataclass
class TransferAnalysis:
    """Full sweep plus summary metrics."""

    rows: list[TransferRow]
    loglog_slope: float
    usable_low_a: float
    usable_high_a: float
    usable_decades: float

    def currents(self) -> np.ndarray:
        return np.asarray([row.current_a for row in self.rows])

    def frequencies(self) -> np.ndarray:
        return np.asarray([row.frequency_hz for row in self.rows])

    def worst_error_in(self, low_a: float, high_a: float) -> float:
        """Largest |relative error| among points inside [low, high]."""
        errors = [
            abs(row.relative_error)
            for row in self.rows
            if low_a <= row.current_a <= high_a
        ]
        if not errors:
            raise ValueError("no sweep points inside the requested range")
        return max(errors)


def characterize_adc(
    adc: SawtoothAdc,
    i_low: float = 1e-12,
    i_high: float = 100e-9,
    points_per_decade: int = 4,
    frame_s: float = 1.0,
    rng: RngLike = None,
    max_rel_error: float = 0.05,
) -> TransferAnalysis:
    """Sweep the ADC over the paper's current range.

    ``relative_error`` compares the *measured* (counted, quantised)
    frequency against the best proportional fit of the analytic
    frequency — i.e. it contains both the dead-time compression and the
    counting quantisation, the two mechanisms that bound the usable
    range.
    """
    generator = ensure_rng(rng)
    currents = log_space(i_low, i_high, points_per_decade)
    analytic = np.asarray([adc.frequency(i) for i in currents])
    counts = [adc.count_in_frame(float(i), frame_s, rng=generator) for i in currents]
    measured = np.asarray(counts, dtype=float) / frame_s
    valid = measured > 0
    if valid.sum() < 2:
        raise ValueError("ADC produced fewer than two firing sweep points")
    errors = np.zeros_like(measured)
    errors[valid] = proportionality_error(currents[valid], measured[valid])
    low, high, decades = usable_dynamic_range(
        currents[valid], measured[valid], max_rel_error=max_rel_error
    )
    rows = [
        TransferRow(
            current_a=float(currents[i]),
            frequency_hz=float(analytic[i]),
            ideal_frequency_hz=float(adc.ideal_frequency(float(currents[i]))),
            count=int(counts[i]),
            measured_frequency_hz=float(measured[i]),
            relative_error=float(errors[i]),
        )
        for i in range(len(currents))
    ]
    return TransferAnalysis(
        rows=rows,
        loglog_slope=loglog_slope(currents[valid], measured[valid]),
        usable_low_a=low,
        usable_high_a=high,
        usable_decades=decades,
    )
