"""Calibration-effect statistics (the Fig. 6 / T3 claims).

Quantifies "all sensor transistors M1 within a row provide the same
current when selected independent of their individual device
parameters": spread before vs after calibration, improvement factor,
and chain-headroom consequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..neuro.array import NeuralArrayModel


@dataclass(frozen=True)
class CalibrationReport:
    """Before/after spread of the pixel offsets."""

    uncalibrated_sigma_a: float
    calibrated_sigma_a: float
    uncalibrated_sigma_v: float  # input-referred (sensor volts)
    calibrated_sigma_v: float
    improvement: float
    saturated_fraction_uncalibrated: float
    saturated_fraction_calibrated: float
    #: Wilson 95% intervals on the saturated fractions (they are
    #: binomial proportions over n_pixels finite pixels — a 24x24 test
    #: array says much less than a 128x128 one, and the CI shows it).
    n_pixels: int = 0
    saturated_ci_uncalibrated: tuple[float, float] = (float("nan"), float("nan"))
    saturated_ci_calibrated: tuple[float, float] = (float("nan"), float("nan"))

    def as_rows(self) -> list[tuple[str, float, float]]:
        return [
            ("offset sigma (A)", self.uncalibrated_sigma_a, self.calibrated_sigma_a),
            ("input-referred sigma (V)", self.uncalibrated_sigma_v, self.calibrated_sigma_v),
            (
                "chain-saturated fraction",
                self.saturated_fraction_uncalibrated,
                self.saturated_fraction_calibrated,
            ),
        ]


def calibration_report(
    array: NeuralArrayModel,
    chain_gain: float = 5600.0,
    rail_v: float = 2.5,
    include_imperfections: bool = True,
) -> CalibrationReport:
    """Measure the calibration effect on an array instance.

    ``saturated_fraction``: pixels whose DC offset alone, amplified by
    the full chain, exceeds the output rail — unusable without
    calibration.
    """
    if chain_gain <= 0 or rail_v <= 0:
        raise ValueError("chain gain and rail must be positive")
    uncal = array.uncalibrated_offset_currents()
    array.calibrate(include_imperfections=include_imperfections)
    cal = array.offset_currents()
    gm = array.transconductance_plane()
    uncal_v = uncal / gm
    cal_v = cal / gm
    # The common (array-wide) offset component is removed by the gain-
    # stage offset calibration that follows pixel calibration ("the
    # subsequent current gain stages also undergo a calibration
    # procedure"); only the pixel-to-pixel spread hits the rails.
    n_pixels = int(uncal_v.size)
    sat_unc_n = int(np.sum(np.abs(uncal_v - np.median(uncal_v)) * chain_gain > rail_v))
    sat_cal_n = int(np.sum(np.abs(cal_v - np.median(cal_v)) * chain_gain > rail_v))
    sigma_unc_v = float(np.std(uncal_v))
    sigma_cal_v = float(np.std(cal_v))
    from ..inference.yield_stats import wilson_interval

    return CalibrationReport(
        uncalibrated_sigma_a=float(np.std(uncal)),
        calibrated_sigma_a=float(np.std(cal)),
        uncalibrated_sigma_v=sigma_unc_v,
        calibrated_sigma_v=sigma_cal_v,
        improvement=sigma_unc_v / sigma_cal_v if sigma_cal_v > 0 else float("inf"),
        saturated_fraction_uncalibrated=sat_unc_n / n_pixels,
        saturated_fraction_calibrated=sat_cal_n / n_pixels,
        n_pixels=n_pixels,
        saturated_ci_uncalibrated=wilson_interval(sat_unc_n, n_pixels),
        saturated_ci_calibrated=wilson_interval(sat_cal_n, n_pixels),
    )
