"""The campaign job service: content-addressed cache, jobs, HTTP API.

Everything the paper reports rests on one invariant: a run is a pure
function of ``(spec, seed, backend, engine version)``.  This package
cashes that invariant in — literally:

* :mod:`~repro.service.keys` — canonical content keys.  Dict order,
  tuple-vs-list spelling and numpy dtype wrappers never change a key;
  any change to the four components always does.
* :mod:`~repro.service.cache` — :class:`ResultCache`, a memory-LRU over
  an atomic on-disk object store, plus :class:`CachedDispatch`, which
  serves a campaign plan hits-first and computes each distinct key at
  most once.  Corrupt entries are misses (recompute), never crashes.
* :mod:`~repro.service.jobs` — :class:`JobManager`, a worker pool
  running submitted campaigns in the background with per-point
  progress, cancellation (leaving resumable partial directories) and
  :func:`resume_campaign` to finish them bit-identically;
  :class:`AsyncExecutor` backs ``executor="async"``.
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — the
  ``repro serve`` HTTP/JSON API (stdlib ``http.server``) and its thin
  ``urllib`` client.

Quick start::

    from repro.service import JobManager, ResultCache

    manager = JobManager(workers=2, cache="cache/")
    job = manager.submit(campaign, seed=1, out="results/")
    manager.wait(job.id)
    print(job.result.table(), manager.cache.summary())

or over the wire: ``repro serve --cache-dir cache/`` then
``repro submit --campaign fig4.json --wait``.
"""

from .cache import (
    CACHE_SCHEMA,
    CachedDispatch,
    CacheStats,
    ResultCache,
    make_cache,
    plan_keys,
    reject_inputs_with_cache,
)
from .client import ServiceClient, ServiceError
from .jobs import (
    JOB_STATES,
    AsyncExecutor,
    Job,
    JobCancelled,
    JobManager,
    resume_campaign,
)
from .keys import (
    KEY_SCHEMA,
    canonical_json,
    canonicalize,
    content_digest,
    point_key,
    spec_key,
)
from .server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ReproServer,
    serve,
    start_server,
)

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "JOB_STATES",
    "KEY_SCHEMA",
    "AsyncExecutor",
    "CacheStats",
    "CachedDispatch",
    "Job",
    "JobCancelled",
    "JobManager",
    "ReproServer",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "canonical_json",
    "canonicalize",
    "content_digest",
    "make_cache",
    "plan_keys",
    "point_key",
    "reject_inputs_with_cache",
    "resume_campaign",
    "serve",
    "spec_key",
    "start_server",
]
