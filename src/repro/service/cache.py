"""The content-addressed result cache and cache-aware plan dispatch.

Because a run is a pure function of ``(spec, seed, backend, engine
version)`` — the reproduction invariant the Runner enforces — a cache
keyed by :func:`~repro.service.keys.point_key` can never serve a stale
or wrong answer: a key either addresses exactly the bytes the engine
would recompute, or it is absent.  That turns overlapping sweeps from
many clients into mostly cache traffic, and identical re-submissions
into pure replay.  The one thing that could break the invariant —
injected ``inputs`` substrates, which change results without changing
the key — is rejected up front wherever a cache is active
(:func:`reject_inputs_with_cache`).

Two layers:

* an in-memory LRU of deserialized :class:`ResultSet` objects (bounded;
  eviction only costs a disk read or recompute, never changes numbers);
* an optional on-disk object store under ``<root>/objects/<k[:2]>/<k>.json``
  — one JSON file per entry, written atomically (temp file +
  ``os.replace``) so concurrent writers on one cache directory are safe
  on POSIX: the worst case is two processes writing byte-identical
  content and one rename winning.  ``<root>/cache.json`` records the
  layout schema.

Integrity over trust: ``get`` re-verifies each disk entry (schema tag,
key match against the file's address, SHA-256 of the result payload)
and treats any corruption as a miss — bad bytes mean recompute, never a
crash and never a wrong number.

:class:`CachedDispatch` is the execution half: it partitions a
:class:`~repro.campaigns.plan.Plan` by content key, serves hits from the
cache, deduplicates misses so each distinct key is computed exactly
once (duplicate points within and across campaigns replay the one
computation), and streams ordinary
:class:`~repro.campaigns.executors.PointOutcome`s that any result store
can consume.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from ..campaigns.executors import Executor, PointOutcome
from ..campaigns.plan import Plan, PlanPoint
from ..experiments.results import ResultSet
from .keys import point_key

#: On-disk entry schema, bumped on incompatible layout changes.
CACHE_SCHEMA = "repro-cache/1"


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _result_digest(payload: dict[str, Any]) -> str:
    """Integrity digest of a ResultSet payload.

    Plain ``json.dumps(sort_keys=True)`` rather than the canonical-JSON
    of ``keys.py``: result payloads may legitimately carry NaN metrics,
    and the digest only needs to be self-consistent between ``put`` and
    ``get`` (parse -> re-dump round-trips byte-identically).
    """
    return _sha256(json.dumps(payload, sort_keys=True))


@dataclass
class CacheStats:
    """Running counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class ResultCache:
    """Content-addressed ResultSet store: memory LRU over optional disk.

    ``root=None`` is a pure in-memory cache (one process, one lifetime);
    with a directory it becomes durable and shareable across processes,
    campaigns and service restarts.  ``max_memory`` bounds only the
    in-memory layer — ``None`` means unbounded (safe for small sweeps,
    unwise for a long-lived service).
    """

    OBJECTS_DIR = "objects"
    MARKER_NAME = "cache.json"

    def __init__(
        self,
        root: Union[None, str, Path] = None,
        max_memory: Optional[int] = 128,
    ) -> None:
        if max_memory is not None and max_memory < 0:
            raise ValueError(f"max_memory must be >= 0 or None, got {max_memory}")
        self.root = None if root is None else Path(root)
        self.max_memory = max_memory
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, ResultSet]" = OrderedDict()
        self._lock = threading.Lock()
        if self.root is not None:
            (self.root / self.OBJECTS_DIR).mkdir(parents=True, exist_ok=True)
            marker = self.root / self.MARKER_NAME
            if marker.exists():
                try:
                    schema = json.loads(marker.read_text(encoding="utf-8")).get("schema")
                except (OSError, json.JSONDecodeError):
                    schema = None
                if schema != CACHE_SCHEMA:
                    raise ValueError(
                        f"{self.root} holds a cache with schema {schema!r}; this "
                        f"build writes {CACHE_SCHEMA!r} — point --cache-dir at a "
                        f"fresh directory"
                    )
            else:
                self._atomic_write(marker, json.dumps({"schema": CACHE_SCHEMA}) + "\n")

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / self.OBJECTS_DIR / key[:2] / f"{key}.json"

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        """Write-then-rename so readers (and concurrent writers) never
        observe a torn entry."""
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{path.name}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(text)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Core API
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[ResultSet]:
        """The cached ResultSet for ``key``, or ``None`` (a miss).

        Disk entries are integrity-checked on every read; anything that
        fails to parse or verify counts as ``corrupt`` and reads as a
        miss — the caller recomputes and ``put`` repairs the entry.
        """
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                return cached
        if self.root is not None:
            result = self._read_entry(key)
            if result is not None:
                with self._lock:
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    self._remember_locked(key, result)
                return result
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: str, result: ResultSet, meta: Optional[dict[str, Any]] = None) -> None:
        """Store ``result`` under ``key`` (artifacts are dropped — only
        the serializable content is addressable)."""
        stored = result.without_artifacts()
        if self.root is not None:
            payload = stored.to_dict()
            entry = {
                "schema": CACHE_SCHEMA,
                "key": key,
                "meta": dict(meta or {}),
                "result": payload,
                "result_sha256": _result_digest(payload),
            }
            self._atomic_write(self._entry_path(key), json.dumps(entry, sort_keys=True) + "\n")
        with self._lock:
            self.stats.puts += 1
            self._remember_locked(key, stored)

    def _remember_locked(self, key: str, result: ResultSet) -> None:
        """LRU insert into the memory layer (``_locked``: callers hold
        ``self._lock`` — the lint C301 convention)."""
        if self.max_memory == 0:
            return
        self._memory[key] = result
        self._memory.move_to_end(key)
        while self.max_memory is not None and len(self._memory) > self.max_memory:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _read_entry(self, key: str) -> Optional[ResultSet]:
        """Load + verify one disk entry; any defect is a (counted) miss."""
        path = self._entry_path(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            with self._lock:
                self.stats.corrupt += 1
            return None
        try:
            if entry["schema"] != CACHE_SCHEMA or entry["key"] != key:
                raise ValueError("entry does not match its address")
            if _result_digest(entry["result"]) != entry["result_sha256"]:
                raise ValueError("result payload fails its integrity digest")
            return ResultSet.from_dict(entry["result"])
        except (KeyError, TypeError, ValueError):
            with self._lock:
                self.stats.corrupt += 1
            return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return self.root is not None and self._entry_path(key).exists()

    def __len__(self) -> int:
        return self.n_entries()

    def n_entries(self) -> int:
        """Distinct keys currently addressable (disk scan when rooted)."""
        if self.root is None:
            with self._lock:
                return len(self._memory)
        disk = {
            path.stem
            for path in (self.root / self.OBJECTS_DIR).glob("??/*.json")
        }
        with self._lock:
            disk.update(self._memory)
        return len(disk)

    def stats_dict(self) -> dict[str, Any]:
        """Counters plus layout facts — the ``/cache/stats`` payload."""
        with self._lock:
            data: dict[str, Any] = self.stats.as_dict()
            data["memory_entries"] = len(self._memory)
            data["max_memory"] = self.max_memory
        data["root"] = None if self.root is None else str(self.root)
        data["entries"] = self.n_entries()
        return data

    def summary(self) -> str:
        where = "memory" if self.root is None else str(self.root)
        # Snapshot the counters under the lock: stats are mutated by
        # concurrent get/put and must not be read torn (lint C301).
        with self._lock:
            hits, misses = self.stats.hits, self.stats.misses
        return (
            f"<ResultCache {where}: {self.n_entries()} entries, "
            f"{hits} hits / {misses} misses>"
        )


def reject_inputs_with_cache(inputs: Optional[dict[str, Any]]) -> None:
    """Refuse to combine a result cache with injected ``inputs``.

    Injected substrates change what the engine computes without changing
    the ``(spec, seed, backend, version)`` key, so a cache hit could
    silently return numbers computed under different inputs — the one
    way the "a key addresses exactly what the engine would recompute"
    invariant can be broken.  Mirrors the process executor's eager
    ``inputs`` rejection: fail loudly, before any store is touched.
    """
    if inputs:
        raise ValueError(
            "a result cache cannot be combined with injected `inputs`: "
            "pre-built substrates change results without changing the "
            "(spec, seed, backend, version) content key, so cache hits "
            "could silently serve numbers computed under different inputs "
            "— drop `inputs` or run without a cache"
        )


def make_cache(
    cache: Union[None, str, Path, ResultCache],
    max_memory: Optional[int] = 128,
) -> Optional[ResultCache]:
    """Resolve a cache argument: ``None`` passes through (caching off),
    a path becomes a disk-rooted :class:`ResultCache`, an instance is
    used as-is."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, Path)):
        return ResultCache(root=cache, max_memory=max_memory)
    raise TypeError(
        f"cannot resolve a cache from {type(cache).__name__}; expected None, "
        f"a directory path, or a ResultCache"
    )


# ---------------------------------------------------------------------------
# Cache-aware plan execution
# ---------------------------------------------------------------------------
def plan_keys(
    plan: Plan,
    *,
    backend: Optional[str] = None,
    engine_version: Optional[str] = None,
) -> dict[int, str]:
    """Content key per plan point index.

    ``backend`` is the campaign-level resolved backend (``None`` defers
    to each spec's own default, exactly like the Runner), and
    ``engine_version`` defaults to the installed library version — the
    four key components of the reproduction invariant.
    """
    if engine_version is None:
        from .. import __version__ as engine_version
    return {
        point.index: point_key(point.spec.to_dict(), point.seed, backend, engine_version)
        for point in plan
    }


class CachedDispatch:
    """Execute a plan through a cache: hits replay, misses dedup+compute.

    Iterating :meth:`outcomes` yields exactly one
    :class:`PointOutcome` per plan point, in cache-hits-first /
    completion order (stores sort by point index, so order is
    presentation-free).  After iteration, :meth:`summary` reports the
    accounting that lands in the campaign manifest.
    """

    def __init__(
        self,
        plan: Plan,
        executor: Executor,
        cache: ResultCache,
        *,
        backend: Optional[str] = None,
        inputs: Optional[dict[str, Any]] = None,
        engine_version: Optional[str] = None,
        capture_errors: bool = False,
    ) -> None:
        reject_inputs_with_cache(inputs)
        self.plan = plan
        self.executor = executor
        self.cache = cache
        self.backend = backend
        self.inputs = inputs
        self.capture_errors = capture_errors
        self.keys = plan_keys(plan, backend=backend, engine_version=engine_version)
        #: key -> all plan points sharing it, first-seen order.
        self.groups: "OrderedDict[str, list[PlanPoint]]" = OrderedDict()
        for point in plan:
            self.groups.setdefault(self.keys[point.index], []).append(point)
        self.hits = 0
        self.computed = 0
        self.replayed = 0
        self.failed = 0

    @property
    def n_unique(self) -> int:
        return len(self.groups)

    def outcomes(self) -> Iterator[PointOutcome]:
        pending: list[list[PlanPoint]] = []
        for key, points in self.groups.items():
            start = time.perf_counter()  # repro: allow-wallclock
            result = self.cache.get(key)
            if result is None:
                pending.append(points)
                continue
            wall_s = time.perf_counter() - start  # repro: allow-wallclock
            self.hits += len(points)
            for point in points:
                yield PointOutcome(point=point, result=result, wall_s=wall_s)
                wall_s = 0.0  # the read cost is attributed once
        if not pending:
            return
        # One representative per distinct key; duplicates replay its
        # result.  Representatives keep their original plan indices, so
        # executors and stores need no special casing.
        duplicates = {points[0].index: points[1:] for points in pending}
        sub_plan = Plan(
            points=tuple(points[0] for points in pending),
            campaign=self.plan.campaign,
            seed=self.plan.seed,
        )
        for outcome in self.executor.run(
            sub_plan,
            backend=self.backend,
            inputs=self.inputs,
            capture_errors=self.capture_errors,
        ):
            key = self.keys[outcome.point.index]
            if outcome.result is None:
                # A captured failure never enters the cache (it carries
                # no ResultSet); duplicates fail identically — a point's
                # outcome is a pure function of its key.
                self.failed += 1
                yield outcome
                for duplicate in duplicates[outcome.point.index]:
                    self.failed += 1
                    yield PointOutcome(
                        point=duplicate, result=None, wall_s=0.0, error=outcome.error
                    )
                continue
            stored = outcome.result.without_artifacts()
            self.cache.put(
                key,
                stored,
                meta={
                    "kind": outcome.point.spec.kind,
                    "seed": outcome.point.seed,
                    "spec_hash": outcome.point.spec.spec_hash(),
                },
            )
            self.computed += 1
            yield outcome
            for duplicate in duplicates[outcome.point.index]:
                self.replayed += 1
                yield PointOutcome(point=duplicate, result=stored, wall_s=0.0)

    def summary(self) -> dict[str, int]:
        """The manifest's ``cache`` block: how the plan was served."""
        return {
            "n_points": len(self.plan),
            "n_unique": self.n_unique,
            "hits": self.hits,
            "computed": self.computed,
            "replayed": self.replayed,
            "failed": self.failed,
        }
