"""Canonical content keys — the address space of the result cache.

The Runner guarantees that a run's numbers are a pure function of
``(spec, seed, backend, engine version)``: same four inputs, bit-identical
ResultSet.  That invariant is what makes a *content-addressed* cache
provably correct — if the key matches, the cached bytes ARE the answer,
no staleness policy needed.  This module defines that key.

Hashing JSON is only sound if the serialization is canonical, so
:func:`canonicalize` normalises every representation detail that does
not change the computation:

* **dict ordering** — keys are emitted sorted (two dicts built in
  different insertion orders hash identically);
* **dtype wrappers** — numpy scalars collapse to their Python values
  (``np.float64(1e-6)`` and ``1e-6`` hash identically; ``np.int64``
  would not even serialize otherwise), numpy arrays to nested lists;
* **sequence spelling** — tuples and lists hash identically (specs
  store tuples, JSON round-trips produce lists);
* **float text** — ``json.dumps`` already emits ``repr``-shortest
  floats, which is process- and platform-stable for IEEE doubles; we
  reject NaN/Infinity outright because their JSON spellings are not
  interoperable (and no spec should carry them).

Everything here is stdlib-only and import-light: ``ExperimentSpec
.spec_hash()`` reaches in lazily without dragging the whole service
subsystem (or an import cycle) behind it.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Optional

#: Schema tag baked into every point key; bump on incompatible changes
#: to the key derivation itself (a bump invalidates every cache).
KEY_SCHEMA = "repro-key/1"


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to plain JSON types with a canonical shape.

    Dicts keep their (sorted-at-dump-time) keys coerced to ``str``,
    sequences become lists, numpy scalars/arrays become their Python
    equivalents.  Raises ``TypeError`` for values with no canonical JSON
    form and ``ValueError`` for non-finite floats.
    """
    # Bool first: bool is an int subclass but must stay bool.
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        value = float(value)  # np.float64 is a float subclass
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite float {value!r} has no canonical JSON form")
        return value
    # Numpy scalars that are neither int nor float subclasses
    # (np.int64 on all platforms, np.bool_): duck-type via .item() so
    # this module never has to import numpy.
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return canonicalize(item())
    if isinstance(value, Mapping):
        return {str(key): canonicalize(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonicalize(entry) for entry in value]
    # Numpy arrays expose .tolist(); accept any such array-like.
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return canonicalize(tolist())
    raise TypeError(f"cannot canonicalize {type(value).__name__} value {value!r}")


def canonical_json(value: Any) -> str:
    """The canonical serialization: sorted keys, no whitespace, ASCII.

    Two semantically equal values (up to the normalisations of
    :func:`canonicalize`) always produce byte-identical text — the
    property every hash below rests on.
    """
    return json.dumps(
        canonicalize(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def content_digest(value: Any) -> str:
    """SHA-256 hex digest of ``value``'s canonical JSON."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def point_key(
    spec_dict: Mapping[str, Any],
    seed: int,
    backend: Optional[str],
    engine_version: str,
) -> str:
    """The content address of one campaign point's result.

    ``spec_dict`` is the spec's ``to_dict()`` payload (dict or spec-
    shaped mapping; field order irrelevant), ``seed`` the Runner root
    seed the point runs under, ``backend`` the *resolved* compute
    backend (``None`` is normalised to the spec's own default exactly
    like the Runner resolves it), and ``engine_version`` the library
    version that owns the numbers.  Any difference in any component
    yields a different key; representation differences (tuple vs list,
    np.float64 vs float, dict insertion order) never do.
    """
    if backend is None:
        backend = str(spec_dict.get("backend", "object") or "object")
    return content_digest(
        {
            "schema": KEY_SCHEMA,
            "spec": dict(spec_dict),
            "seed": int(seed),
            "backend": str(backend),
            "version": str(engine_version),
        }
    )


def spec_key(spec_dict: Mapping[str, Any]) -> str:
    """Content hash of a spec payload alone (no seed/backend/version) —
    what ``ExperimentSpec.spec_hash()`` / ``AnalysisSpec.spec_hash()``
    return."""
    return content_digest(dict(spec_dict))
