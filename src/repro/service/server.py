"""``repro serve`` — the campaign job service over plain HTTP/JSON.

Stdlib only (:mod:`http.server` + a :class:`JobManager`): one process,
a threading HTTP front end, a worker pool behind a queue, and a shared
content-addressed :class:`~repro.service.cache.ResultCache`.  Endpoints:

====== ========================== ==========================================
Method Path                       Meaning
====== ========================== ==========================================
GET    ``/health``                liveness + library version
GET    ``/cache/stats``           cache counters (hits/misses/corrupt/...)
POST   ``/jobs``                  submit a campaign (JSON body, below)
GET    ``/jobs``                  all jobs, submission order
GET    ``/jobs/<id>``             one job's status snapshot
GET    ``/jobs/<id>/results``     manifest + per-point result payloads
GET    ``/jobs/<id>/analysis``    statistical analysis of a finished job
POST   ``/jobs/<id>/cancel``      flag the job; it stops between points
====== ========================== ==========================================

The submit body is ``{"campaign": <CampaignSpec dict>, "seed": 0,
"executor": "serial", "workers": null, "backend": null,
"flush_every": 1}`` — everything but ``campaign`` optional.  Responses
are JSON with sorted keys, so identical analyses are byte-identical
(the CI smoke job diffs a cold submission's analysis against a warm
re-submission's).

Single-writer discipline is the cache's, not the server's: concurrent
submissions of overlapping grids are the *intended* workload — each
distinct point computes once, everything else replays.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Optional, Union
from urllib.parse import parse_qs, urlsplit

from .cache import ResultCache
from .jobs import Job, JobManager

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8750

#: Submit-body keys forwarded to :meth:`JobManager.submit` verbatim.
_SUBMIT_OPTIONS = ("seed", "executor", "workers", "backend", "flush_every", "overwrite")


class _HttpError(Exception):
    """Internal: carries an HTTP status + message to the response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes the endpoint table above onto the server's JobManager."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send(self, payload: Any, status: int = 200) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise _HttpError(400, f"request body is not valid JSON: {error}")

    def _job(self, job_id: str) -> Job:
        try:
            return self.manager.job(job_id)
        except KeyError:
            raise _HttpError(404, f"unknown job {job_id!r}")

    def _dispatch(self, method: str) -> None:
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            payload, status = self._route(method, parts, parse_qs(url.query))
        except _HttpError as error:
            payload, status = {"error": str(error)}, error.status
        except Exception as error:  # noqa: BLE001 — answered, not raised
            # Anything a route didn't classify as a client error is a
            # server fault; answer with a JSON body instead of dropping
            # the connection.
            payload, status = {"error": f"{type(error).__name__}: {error}"}, 500
        self._send(payload, status)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _route(
        self, method: str, parts: list[str], query: dict[str, list[str]]
    ) -> tuple[Any, int]:
        if method == "GET" and parts == ["health"]:
            from .. import __version__

            return {"ok": True, "version": __version__}, 200
        if method == "GET" and parts == ["cache", "stats"]:
            stats = self.manager.cache_stats()
            return {"cache": stats, "enabled": stats is not None}, 200
        if parts and parts[0] == "jobs":
            if method == "POST" and len(parts) == 1:
                return self._submit()
            if method == "GET" and len(parts) == 1:
                return [job.status_dict() for job in self.manager.jobs()], 200
            if len(parts) >= 2:
                job = self._job(parts[1])
                if method == "GET" and len(parts) == 2:
                    return job.status_dict(), 200
                if method == "GET" and parts[2:] == ["results"]:
                    return self._results(job)
                if method == "GET" and parts[2:] == ["analysis"]:
                    return self._analysis(job, query)
                if method == "POST" and parts[2:] == ["cancel"]:
                    job.cancel()
                    return job.status_dict(), 200
        raise _HttpError(404, f"no such endpoint: {method} /{'/'.join(parts)}")

    def _submit(self) -> tuple[Any, int]:
        body = self._read_body()
        if not isinstance(body, dict) or "campaign" not in body:
            raise _HttpError(400, 'submit body must be {"campaign": {...}, ...}')
        options = {key: body[key] for key in _SUBMIT_OPTIONS if key in body}
        unknown = set(body) - set(_SUBMIT_OPTIONS) - {"campaign"}
        if unknown:
            raise _HttpError(400, f"unknown submit options: {sorted(unknown)}")
        try:
            job = self.manager.submit(body["campaign"], **options)
        except (KeyError, TypeError, ValueError) as error:
            # Bad submissions (unknown kind, invalid field, ...) are
            # client errors, not tracebacks — but only here: the same
            # exception types elsewhere are genuine server faults.
            raise _HttpError(400, f"{type(error).__name__}: {error}")
        return job.status_dict(), 201

    @staticmethod
    def _finished(job: Job) -> Job:
        if not job.done:
            raise _HttpError(409, f"job {job.id} is still {job.status}")
        if job.result is None:
            raise _HttpError(409, f"job {job.id} {job.status}: {job.error or 'no results'}")
        return job

    def _results(self, job: Job) -> tuple[Any, int]:
        job = self._finished(job)
        assert job.result is not None
        results = []
        for meta, result in job.result.iter_results():
            line = dict(meta)
            line["result"] = result.to_dict()
            results.append(line)
        results.sort(key=lambda line: line["point"])
        return {"id": job.id, "manifest": job.result.manifest, "results": results}, 200

    def _analysis(self, job: Job, query: dict[str, list[str]]) -> tuple[Any, int]:
        job = self._finished(job)
        assert job.result is not None
        analysis = (query.get("analysis") or [None])[0]
        if analysis is not None:
            from ..inference import analysis_kinds

            # The kind name is the client's input; a failure *inside* a
            # valid analysis is a server fault and maps to 500.
            if analysis not in analysis_kinds():
                raise _HttpError(
                    400,
                    f"unknown analysis {analysis!r}; one of {sorted(analysis_kinds())}",
                )
        report = job.result.analyze(analysis)
        # Round-trip through to_json: the report's own serialization
        # already normalises numpy scalars.
        return {"id": job.id, "analysis": json.loads(report.to_json())}, 200

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("POST")


class ReproServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a JobManager (and its cache)."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int] = (DEFAULT_HOST, DEFAULT_PORT),
        *,
        manager: Optional[JobManager] = None,
        workers: int = 1,
        cache: Union[None, str, Path, ResultCache] = None,
        root: Union[None, str, Path] = None,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ServiceHandler)
        self.manager = manager or JobManager(workers=workers, cache=cache, root=root)
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def start_server(
    host: str = DEFAULT_HOST,
    port: int = 0,
    **kwargs: Any,
) -> tuple[ReproServer, threading.Thread]:
    """Start a server on a background thread (``port=0`` picks a free
    one) — the embedding/test entry point.  Shut down with
    ``server.shutdown(); server.server_close()``."""
    server = ReproServer((host, port), **kwargs)
    thread = threading.Thread(target=server.serve_forever, name="repro-serve", daemon=True)
    thread.start()
    return server, thread


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    **kwargs: Any,
) -> int:
    """Run the service in the foreground until interrupted — what
    ``repro serve`` calls."""
    server = ReproServer((host, port), **kwargs)
    cache = server.manager.cache
    where = "disabled" if cache is None else (cache.root or "memory")
    print(f"repro service listening on {server.url}")
    print(f"  workers: {server.manager.workers}  cache: {where}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0
