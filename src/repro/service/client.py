"""Thin stdlib client for the ``repro serve`` HTTP/JSON API.

:class:`ServiceClient` is a 1:1 mapping of the endpoint table in
:mod:`repro.service.server` onto methods returning parsed JSON — no
third-party HTTP stack, just :mod:`urllib.request`.  Error responses
(4xx/5xx) raise :class:`ServiceError` carrying the status code and the
server's ``error`` message, so callers branch on exceptions rather than
inspecting payloads.

Typical round trip::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8750")
    job = client.submit(campaign_dict, seed=1, executor="serial")
    status = client.wait(job["id"])
    report = client.analysis(job["id"])["analysis"]
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping, Optional, Union


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talks to one ``repro serve`` instance at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> Any:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read()).get("error", error.reason)
            except (json.JSONDecodeError, ValueError):
                message = str(error.reason)
            raise ServiceError(error.code, message) from None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._request("GET", "/health")

    def cache_stats(self) -> dict[str, Any]:
        return self._request("GET", "/cache/stats")

    def submit(
        self, campaign: Union[Mapping[str, Any], Any], **options: Any
    ) -> dict[str, Any]:
        """Submit a campaign (a ``CampaignSpec`` or its dict) and return
        the job's status snapshot (with its ``id``).  Options: ``seed``,
        ``executor``, ``workers``, ``backend``, ``flush_every``."""
        to_dict = getattr(campaign, "to_dict", None)
        if to_dict is not None:
            campaign = to_dict()
        return self._request("POST", "/jobs", {"campaign": dict(campaign), **options})

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def results(self, job_id: str) -> dict[str, Any]:
        """Manifest + per-point result payloads of a finished job."""
        return self._request("GET", f"/jobs/{job_id}/results")

    def analysis(self, job_id: str, analysis: Optional[str] = None) -> dict[str, Any]:
        """The statistical analysis report of a finished job (``None``
        infers the analysis from the campaign's shape)."""
        suffix = f"?analysis={analysis}" if analysis else ""
        return self._request("GET", f"/jobs/{job_id}/analysis{suffix}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(
        self, job_id: str, timeout: float = 60.0, poll_s: float = 0.05
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the
        final status snapshot (check ``status``/``error`` yourself —
        a failed job is an answer, not an exception)."""
        deadline = time.monotonic() + timeout  # repro: allow-wallclock
        while True:
            status = self.status(job_id)
            if status["status"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:  # repro: allow-wallclock
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after {timeout}s"
                )
            time.sleep(poll_s)
