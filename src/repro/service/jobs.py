"""Background campaign jobs: a worker pool, cancellation, resume.

The job manager is the execution core of ``repro serve``: campaigns are
submitted (validated eagerly, queued FIFO), run on a pool of daemon
worker threads, and observed through cheap snapshot dicts — per-point
progress counts update as each outcome lands, so a client polling
``status()`` watches a 600-point sweep tick forward.  All workers share
the manager's :class:`~repro.service.cache.ResultCache`, which is what
turns overlapping submissions from many clients into mostly cache
traffic.

Cancellation is per-point: a cancelled job stops between outcomes,
flushes what completed to its JSONL directory and leaves it
*manifest-less* — the shape :func:`resume_campaign` (CLI: ``repro sweep
--resume``) recognises.  Resume replays the plan, skips every point the
partial ``results.jsonl`` already holds, and finishes the rest
bit-identically: a point's seed depends only on ``(campaign seed,
replicate)``, never on when or where it runs.

:class:`AsyncExecutor` (``executor="async"``) is the in-process face of
the same idea: submission returns immediately while a background thread
streams :class:`~repro.campaigns.executors.PointOutcome`s through a
bounded queue — same bit-identical numbers, non-blocking producer.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Union

from ..campaigns import (
    CampaignResult,
    CampaignSpec,
    Executor,
    JsonlResultStore,
    Plan,
    PointOutcome,
    build_manifest,
    make_executor,
    make_store,
    read_campaign_sidecar,
    write_campaign_sidecar,
)
from ..campaigns.executors import RunnerFactory, SerialExecutor, ThreadExecutor, _check_workers
from ..experiments.workloads import validate_backend
from .cache import CachedDispatch, ResultCache, make_cache, reject_inputs_with_cache

#: Every state a job can report.  Terminal states: done/failed/cancelled.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class JobCancelled(Exception):
    """Raised inside a worker when a job's cancel flag is set."""


# ---------------------------------------------------------------------------
# The async executor
# ---------------------------------------------------------------------------
class _Raise:
    """Queue envelope that re-raises a producer-side exception."""

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


_DONE = object()


class AsyncExecutor(Executor):
    """Run the plan on a background thread, streaming outcomes back.

    ``workers=1`` wraps the serial executor, ``workers>1`` the thread
    executor — either way the numbers are bit-identical to a foreground
    run (the SeedTree contract).  The consumer side is an ordinary
    outcome iterator; closing it early stops the producer at the next
    point boundary, so ``itertools.islice`` over a campaign does not
    leak a runaway thread.
    """

    name = "async"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = 1 if workers is None else _check_workers(workers)
        self._inner: Executor = (
            SerialExecutor() if self.workers == 1 else ThreadExecutor(self.workers)
        )

    def run(
        self,
        plan: Plan,
        *,
        backend: Optional[str] = None,
        inputs: Optional[dict[str, Any]] = None,
        runner_factory: Optional[RunnerFactory] = None,
        capture_errors: bool = False,
    ) -> Iterator[PointOutcome]:
        # Validate eagerly, NOT inside the generator: run_campaign must
        # see bad arguments before any store touches the filesystem.
        if runner_factory is not None:
            raise ValueError(
                "the async executor owns its background Runners; a shared "
                "runner_factory is only meaningful with the serial executor"
            )
        inner = self._inner.run(
            plan, backend=backend, inputs=inputs, capture_errors=capture_errors
        )
        return self._iter(inner)

    def _iter(self, inner: Iterator[PointOutcome]) -> Iterator[PointOutcome]:
        # Bounded queue: workers never race more than a window ahead of
        # the consumer, so memory stays flat on large campaigns.
        channel: "queue.Queue[Any]" = queue.Queue(maxsize=max(4, self.workers * 4))
        stop = threading.Event()

        def _put(item: Any) -> None:
            while not stop.is_set():
                try:
                    channel.put(item, timeout=0.1)
                    return
                except queue.Full:
                    continue

        def _produce() -> None:
            try:
                for outcome in inner:
                    if stop.is_set():
                        break
                    _put(outcome)
            except BaseException as exc:  # noqa: BLE001 — crosses threads
                _put(_Raise(exc))
                return
            finally:
                close = getattr(inner, "close", None)
                if close is not None:
                    close()
            _put(_DONE)

        producer = threading.Thread(target=_produce, name="repro-async", daemon=True)
        producer.start()
        try:
            while True:
                item = channel.get()
                if item is _DONE:
                    break
                if isinstance(item, _Raise):
                    raise item.exc
                yield item
        finally:
            stop.set()
            producer.join(timeout=5.0)


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------
@dataclass
class Job:
    """One submitted campaign: its configuration plus live progress.

    Mutable progress fields (``status``, ``n_done``, ``error``, ...) are
    written by exactly one worker thread and read by pollers; each field
    is a single reference assignment, so snapshots via
    :meth:`status_dict` are always internally plausible even mid-run.
    """

    id: str
    campaign: CampaignSpec
    plan: Plan
    executor: Executor
    seed: int = 0
    backend: Optional[str] = None
    inputs: Optional[dict[str, Any]] = None
    out: Optional[Path] = None
    overwrite: bool = False
    flush_every: int = 1
    status: str = "queued"
    n_done: int = 0
    error: Optional[str] = None
    #: Per-point failures captured without failing the job: dicts of
    #: ``{"point", "seed", "error"}`` in completion order.  A fault-heavy
    #: campaign finishes "done" with its broken points listed here.
    failed_points: list = field(default_factory=list)
    result: Optional[CampaignResult] = None
    cache_summary: Optional[dict[str, int]] = None
    submitted_s: float = field(default_factory=time.monotonic)  # repro: allow-wallclock
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    _cancel: threading.Event = field(default_factory=threading.Event, repr=False)
    _finished: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def n_points(self) -> int:
        return len(self.plan)

    @property
    def done(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    def cancel(self) -> None:
        self._cancel.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (or timeout)."""
        return self._finished.wait(timeout)

    def status_dict(self) -> dict[str, Any]:
        """The JSON-safe snapshot the service's status endpoint serves."""
        wall = None
        if self.started_s is not None:
            end = self.finished_s if self.finished_s is not None else time.monotonic()  # repro: allow-wallclock
            wall = end - self.started_s
        return {
            "id": self.id,
            "name": self.campaign.name,
            "status": self.status,
            "n_points": self.n_points,
            "n_done": self.n_done,
            "seed": self.seed,
            "executor": self.executor.name,
            "backend": self.backend,
            "out": None if self.out is None else str(self.out),
            "error": self.error,
            "n_failed": len(self.failed_points),
            "failed_points": [dict(entry) for entry in self.failed_points],
            "cache": self.cache_summary,
            "wall_s": wall,
        }


class JobManager:
    """A FIFO queue of campaign jobs over a daemon worker-thread pool.

    All jobs share one :class:`ResultCache` (when configured), so a
    re-submitted campaign — or one overlapping a previous client's grid
    — is served from cache without touching the engine.  ``root`` gives
    jobs without an explicit ``out`` a JSONL directory at
    ``<root>/<job id>``; with neither, results stay in memory on the
    job's :class:`CampaignResult`.

    ``max_finished`` bounds how many *terminal* jobs (done / failed /
    cancelled) the manager remembers: each submission evicts the oldest
    finished jobs beyond the bound, dropping their in-memory
    :class:`CampaignResult` payloads so a long-lived ``repro serve``
    process stays flat.  Evicted job ids read as unknown afterwards
    (their JSONL directories, when configured, stay on disk).  ``None``
    disables eviction — only sensible for short-lived managers.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        cache: Union[None, str, Path, ResultCache] = None,
        root: Union[None, str, Path] = None,
        max_finished: Optional[int] = 256,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_finished is not None and max_finished < 0:
            raise ValueError(f"max_finished must be >= 0 or None, got {max_finished}")
        self.cache = make_cache(cache)
        self.root = None if root is None else Path(root)
        self.workers = int(workers)
        self.max_finished = max_finished
        self._jobs: "dict[str, Job]" = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._threads = [
            threading.Thread(target=self._worker, name=f"repro-job-{n}", daemon=True)
            for n in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission / observation
    # ------------------------------------------------------------------
    def submit(
        self,
        campaign: Union[CampaignSpec, Mapping[str, Any]],
        *,
        seed: int = 0,
        executor: Union[str, Executor] = "serial",
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        inputs: Optional[dict[str, Any]] = None,
        out: Union[None, str, Path] = None,
        overwrite: bool = False,
        flush_every: int = 1,
    ) -> Job:
        """Validate, register and enqueue a campaign; returns the
        :class:`Job` immediately (it is also retrievable by id).

        Everything that can be rejected is rejected *here*, in the
        caller's thread — a queued job only fails for execution-time
        reasons, never for a bad argument.
        """
        if not isinstance(campaign, CampaignSpec):
            campaign = CampaignSpec.from_dict(campaign)
        resolved_backend = backend if backend is not None else campaign.backend
        plan = campaign.compile(seed)
        chosen = make_executor(executor, workers=workers)
        # The resolved name catches AsyncExecutor instances too, not just
        # the literal executor="async" string.
        if chosen.name == "async":
            raise ValueError(
                "the job manager already runs campaigns in the background; "
                "submit with a synchronous executor (serial/thread/process/batched)"
            )
        if self.cache is not None:
            reject_inputs_with_cache(inputs)
        for kind in plan.kinds():
            validate_backend(kind, resolved_backend)
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        with self._lock:
            job_id = f"job-{next(self._counter):04d}"
            job = Job(
                id=job_id,
                campaign=campaign,
                plan=plan,
                executor=chosen,
                seed=int(seed),
                backend=resolved_backend,
                inputs=inputs,
                out=(
                    Path(out)
                    if out is not None
                    else (self.root / job_id if self.root is not None else None)
                ),
                overwrite=overwrite,
                flush_every=int(flush_every),
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._evict_finished_locked()
        self._queue.put(job)
        return job

    def _evict_finished_locked(self) -> None:
        """Forget the oldest terminal jobs beyond ``max_finished``
        (``_locked``: callers hold ``self._lock`` — the lint C301
        convention).  Queued/running jobs are never evicted."""
        if self.max_finished is None:
            return
        finished = [job_id for job_id in self._order if self._jobs[job_id].done]
        for job_id in finished[: max(0, len(finished) - self.max_finished)]:
            del self._jobs[job_id]
            self._order.remove(job_id)

    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def status(self, job_id: str) -> dict[str, Any]:
        return self.job(job_id).status_dict()

    def cancel(self, job_id: str) -> Job:
        """Flag a job for cancellation (queued: skipped before start;
        running: stops at the next point boundary, leaving a resumable
        partial directory)."""
        job = self.job(job_id)
        job.cancel()
        return job

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        job = self.job(job_id)
        if not job.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.status} after {timeout}s")
        return job

    def cache_stats(self) -> Optional[dict[str, Any]]:
        return None if self.cache is None else self.cache.stats_dict()

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers after the queue drains.  Jobs already queued
        still run; daemon threads mean an unclean exit cannot hang the
        interpreter either way."""
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if job._cancel.is_set():
                job.status = "cancelled"
                job.finished_s = time.monotonic()  # repro: allow-wallclock
                job._finished.set()
                continue
            job.status = "running"
            job.started_s = time.monotonic()  # repro: allow-wallclock
            try:
                job.result = self._execute(job)
                job.status = "done"
            except JobCancelled:
                job.status = "cancelled"
            except Exception as exc:  # noqa: BLE001 — reported, not raised
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
            finally:
                job.finished_s = time.monotonic()  # repro: allow-wallclock
                job._finished.set()

    def _execute(self, job: Job) -> CampaignResult:
        """``run_campaign`` with the job hooks: shared cache, per-point
        progress, and a cancel check between outcomes."""
        outcomes: Iterator[PointOutcome] = job.executor.run(
            job.plan, backend=job.backend, inputs=job.inputs, capture_errors=True
        )
        dispatch = None
        if self.cache is not None:
            close = getattr(outcomes, "close", None)
            if close is not None:
                close()
            dispatch = CachedDispatch(
                job.plan,
                job.executor,
                self.cache,
                backend=job.backend,
                inputs=job.inputs,
                capture_errors=True,
            )
            outcomes = dispatch.outcomes()
        sink = make_store(
            None, out=job.out, overwrite=job.overwrite, flush_every=job.flush_every
        )
        if isinstance(sink, JsonlResultStore) and sink.writable:
            from .. import __version__

            write_campaign_sidecar(
                sink.root,
                {
                    "name": job.campaign.name,
                    "campaign": job.campaign.to_dict(),
                    "seed": job.seed,
                    "backend": job.backend,
                    "version": __version__,
                },
            )
        start = time.perf_counter()  # repro: allow-wallclock
        try:
            for outcome in outcomes:
                if job._cancel.is_set():
                    raise JobCancelled(job.id)
                if outcome.result is None:
                    # A captured per-point failure: recorded on the job
                    # (with the trace-violation summary the executor
                    # rendered), never written to the store — resume
                    # sees the point as missing and retries it.
                    job.failed_points.append(
                        {
                            "point": outcome.point.index,
                            "seed": outcome.point.seed,
                            "error": outcome.error,
                        }
                    )
                    job.n_done += 1
                    continue
                sink.add(outcome)
                job.n_done += 1
        except JobCancelled:
            close = getattr(outcomes, "close", None)
            if close is not None:
                close()
            # Flush-and-close without finalize: the directory stays a
            # manifest-less partial that resume_campaign understands.
            closer = getattr(sink, "close", None)
            if closer is not None:
                closer()
            if dispatch is not None:
                job.cache_summary = dispatch.summary()
            raise
        total_wall_s = time.perf_counter() - start  # repro: allow-wallclock
        if dispatch is not None:
            job.cache_summary = dispatch.summary()
        manifest = build_manifest(
            job.campaign,
            job.plan,
            sink,
            seed=job.seed,
            backend=job.backend,
            executor_name=job.executor.name,
            workers=getattr(job.executor, "workers", 1),
            total_wall_s=total_wall_s,
            cache=job.cache_summary,
        )
        sink.finalize(manifest)
        return CampaignResult(plan=job.plan, store=sink, manifest=manifest)


# ---------------------------------------------------------------------------
# Resume
# ---------------------------------------------------------------------------
def resume_campaign(
    out: Union[str, Path],
    *,
    executor: Union[str, Executor] = "serial",
    workers: Optional[int] = None,
    flush_every: int = 1,
    inputs: Optional[dict[str, Any]] = None,
    cache: Union[None, str, Path, ResultCache] = None,
    ignore_version: bool = False,
) -> CampaignResult:
    """Finish an interrupted JSONL campaign directory in place.

    Reads the ``campaign.json`` sidecar (written before any point
    executed), reopens the partial ``results.jsonl`` in append mode
    (truncating a torn tail line, keeping every intact point), recompiles
    the plan and runs only the missing points.  Because a point's seed
    is a pure function of ``(campaign seed, replicate)``, the resumed
    points are bit-identical to what an uninterrupted run would have
    produced — parity is testable point-by-point.

    The campaign, seed and backend come from the sidecar: resuming under
    different settings would silently mix incompatible numbers, so they
    are deliberately not parameters.  The engine *version* is held to
    the same standard — a directory started under a different version is
    refused (``ignore_version=True``, CLI ``--ignore-version``, accepts
    the mixed-version results anyway, and the manifest then records the
    sidecar's version so the mixture is at least visible).  The executor
    is free to differ — it never affects results.
    """
    root = Path(out)
    sidecar = read_campaign_sidecar(root)
    if sidecar is None:
        raise FileNotFoundError(
            f"{root} has no {JsonlResultStore.CAMPAIGN_NAME} sidecar; only "
            f"campaigns started by this version (or the job service) are resumable"
        )
    from .. import __version__

    sidecar_version = sidecar.get("version")
    if sidecar_version != __version__ and not ignore_version:
        raise ValueError(
            f"{root} was started by engine version {sidecar_version!r} but this "
            f"build is {__version__!r}; resuming would mix versions in one "
            f"results.jsonl — re-run the campaign, or pass ignore_version=True "
            f"(CLI: --ignore-version) to accept that"
        )
    result_cache = make_cache(cache)
    if result_cache is not None:
        reject_inputs_with_cache(inputs)
    sink = JsonlResultStore.open_partial(root, flush_every=flush_every)
    campaign = CampaignSpec.from_dict(sidecar["campaign"])
    seed = int(sidecar["seed"])
    backend = sidecar.get("backend")
    plan = campaign.compile(seed)
    done = {meta["point"] for meta in sink.point_metas()}
    missing = tuple(point for point in plan if point.index not in done)
    chosen = make_executor(executor, workers=workers)
    dispatch = None
    total_wall_s = 0.0
    if missing:
        sub_plan = Plan(points=missing, campaign=campaign, seed=seed)
        outcomes: Iterator[PointOutcome] = chosen.run(
            sub_plan, backend=backend, inputs=inputs
        )
        if result_cache is not None:
            close = getattr(outcomes, "close", None)
            if close is not None:
                close()
            dispatch = CachedDispatch(
                sub_plan, chosen, result_cache, backend=backend, inputs=inputs
            )
            outcomes = dispatch.outcomes()
        start = time.perf_counter()  # repro: allow-wallclock
        for outcome in outcomes:
            sink.add(outcome)
        total_wall_s = time.perf_counter() - start  # repro: allow-wallclock
    manifest = build_manifest(
        campaign,
        plan,
        sink,
        seed=seed,
        backend=backend,
        executor_name=chosen.name,
        workers=getattr(chosen, "workers", 1),
        total_wall_s=total_wall_s,
        cache=dispatch.summary() if dispatch is not None else None,
        extra={
            "resumed": {
                "previously_completed": len(done),
                "executed": len(missing),
                **(
                    {"sidecar_version": sidecar_version}
                    if sidecar_version != __version__
                    else {}
                ),
            }
        },
    )
    sink.finalize(manifest)
    return CampaignResult(plan=plan, store=sink, manifest=manifest)
