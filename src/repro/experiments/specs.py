"""Declarative experiment specifications.

A spec is a frozen, serializable description of *what* to run — panel
design, sample composition, chip configuration, recording length — with
no imperative state and no RNG objects.  Seeds live in the
:class:`~repro.experiments.runner.Runner`'s seed tree, so the same spec
can be re-run, swept, batched or shipped over the wire as plain JSON.

Every spec class registers under a string ``kind`` so tooling can round
trip ``spec -> to_dict() -> spec_from_dict()`` without knowing the
concrete type up front.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Optional

#: Compute backends an experiment can run on.  ``"object"`` is the
#: per-pixel reference model; ``"vectorized"`` routes array hot paths
#: through :mod:`repro.engine` kernels.  Defined here (the import-cycle-
#: free root of the experiments package) and consumed by the Runner,
#: spec validation and workload registrations alike.
BACKENDS = ("object", "vectorized")

# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, type["ExperimentSpec"]] = {}


def register_experiment(kind: str) -> Callable[[type], type]:
    """Class decorator: register a spec class under ``kind``.

    The registry is what makes the front door string-addressable:
    ``Runner.run("dna_assay", concentration=...)`` and
    ``spec_from_dict(json.loads(payload))`` both resolve through it.
    """

    def decorate(cls: type) -> type:
        if not issubclass(cls, ExperimentSpec):
            raise TypeError(f"{cls.__name__} is not an ExperimentSpec")
        existing = _REGISTRY.get(kind)
        if existing is not None and existing is not cls:
            raise ValueError(f"experiment kind {kind!r} already registered to {existing.__name__}")
        cls.kind = kind
        _REGISTRY[kind] = cls
        return cls

    return decorate


def experiment_kinds() -> list[str]:
    """All registered experiment kinds, sorted."""
    return sorted(_REGISTRY)


def experiment_type(kind: str) -> type["ExperimentSpec"]:
    """Look up the spec class for ``kind``."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise KeyError(
            f"unknown experiment kind {kind!r}; registered kinds: {experiment_kinds()}"
        ) from None


def spec_from_dict(data: dict[str, Any]) -> "ExperimentSpec":
    """Rebuild any registered spec from its ``to_dict()`` payload."""
    if "kind" not in data:
        raise ValueError("spec dict needs a 'kind' entry")
    return experiment_type(data["kind"]).from_dict(data)


# ---------------------------------------------------------------------------
# Base class
# ---------------------------------------------------------------------------
def _plain(value: Any) -> Any:
    """JSON-safe field value: tuples -> lists, numpy scalars/arrays ->
    Python values (recursively).

    ``replace(rows=np.int64(32))`` is a natural thing to write in a
    sweep; without this, ``to_dict`` would leak the numpy type and the
    payload would either fail to serialize (np.int64) or serialize but
    round-trip to a differently-typed spec.  Duck-typed on ``.item()``
    / ``.tolist()`` so this module stays numpy-import-free.
    """
    if isinstance(value, (list, tuple)):
        return [_plain(entry) for entry in value]
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return item()
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return _plain(tolist())
    return value


@dataclass(frozen=True)
class ExperimentSpec:
    """Common serialization / hashing machinery for all spec kinds."""

    kind: ClassVar[str] = ""

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            data[field.name] = _plain(getattr(self, field.name))
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentSpec":
        payload = dict(data)
        kind = payload.pop("kind", cls.kind)
        if kind != cls.kind:
            raise ValueError(f"{cls.__name__} cannot load kind {kind!r}")
        names = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise ValueError(f"unknown fields for {cls.__name__}: {sorted(unknown)}")
        coerced = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in payload.items()
        }
        return cls(**coerced)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def replace(self, **changes: Any) -> "ExperimentSpec":
        """Functional update — the idiom for sweeps:
        ``[spec.replace(concentration=c) for c in standards]``."""
        return dataclasses.replace(self, **changes)

    def content_hash(self) -> str:
        """Stable hex digest of the full spec content (seeds streams).

        Frozen format: this digest feeds SeedTree stream paths (see
        ``workloads.py``), so its byte recipe can never change without
        changing every downstream random number.  For cache addressing
        use :meth:`spec_hash`, which additionally canonicalises dtype
        wrappers and representation details.
        """
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def spec_hash(self) -> str:
        """Canonical, process-stable content hash of the spec.

        Unlike :meth:`content_hash` (whose byte recipe is frozen because
        it seeds random streams), this digest runs through
        :mod:`repro.service.keys` canonicalisation — sorted keys, numpy
        scalars collapsed, tuple/list spelling unified — so two
        semantically identical specs hash identically whatever process,
        platform or construction path produced them.  This is the spec
        facet of the result cache's :func:`~repro.service.keys.point_key`.
        """
        from ..service.keys import spec_key

        return spec_key(self.to_dict())


# ---------------------------------------------------------------------------
# DNA microarray assay (Section 2 / Figs. 2-4)
# ---------------------------------------------------------------------------
@register_experiment("dna_assay")
@dataclass(frozen=True)
class DnaAssaySpec(ExperimentSpec):
    """One microarray assay measured on the 16x8 electrochemical chip.

    ``panel`` selects the probe design:

    * ``"random"`` — ``probe_count`` random probes tiled with
      ``replicates``; the sample carries perfect targets for
      ``target_subset`` (all probes when ``None``).
    * ``"mismatch"`` — one random target plus probes at 0 and each of
      ``mismatch_counts`` substitutions against it (the Fig. 2 design);
      ``target_subset`` is ignored.

    Concentrations are mol/m^3 (``10 * units.nM`` == 1e-5).

    ``faults`` is an optional tuple of fault entries (see
    :mod:`repro.faults`) injected into the digital readout; entries are
    normalized to canonical plain dicts so they sweep as campaign axes
    (``faults.rate``) and round trip through ``to_dict``.  An empty
    tuple serializes to *nothing* — zero-fault specs keep their
    pre-fault ``content_hash`` and results bit-identically.
    """

    rows: int = 16
    cols: int = 8
    panel: str = "random"
    probe_count: int = 16
    probe_length: int = 20
    replicates: int = 8
    control_every: int = 0
    mismatch_counts: tuple[int, ...] = (1, 2, 3)
    target_subset: Optional[tuple[int, ...]] = None
    concentration: float = 1e-5
    target_length: int = 2000
    hybridization_s: float = 3600.0
    wash_s: float = 120.0
    v_generator: float = 0.45
    v_collector: float = -0.25
    calibrate: bool = True
    calibration_frame_s: float = 0.05
    frame_s: float = 1.0
    faults: tuple = ()

    def __post_init__(self) -> None:
        from ..faults.specs import normalize_faults

        object.__setattr__(self, "faults", normalize_faults(self.faults))
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array dimensions must be positive")
        if self.panel not in ("random", "mismatch"):
            raise ValueError(f"unknown panel design {self.panel!r}")
        if self.probe_count < 1 or self.probe_length < 1:
            raise ValueError("probe_count and probe_length must be positive")
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")
        if self.concentration < 0:
            raise ValueError("concentration must be non-negative")
        if self.hybridization_s <= 0 or self.wash_s < 0:
            raise ValueError("invalid protocol times")
        if self.frame_s <= 0 or self.calibration_frame_s <= 0:
            raise ValueError("counting frames must be positive")
        if self.panel == "mismatch" and any(m < 1 for m in self.mismatch_counts):
            raise ValueError("mismatch counts must be >= 1")
        if self.target_subset is not None:
            bad = [i for i in self.target_subset if not 0 <= i < self.probe_count]
            if bad:
                raise ValueError(f"target_subset indices out of range: {bad}")

    def to_dict(self) -> dict[str, Any]:
        """Like the base, but an empty fault list is omitted entirely:
        ``content_hash()`` (which seeds streams) and ``spec_hash()``
        (the cache key) of zero-fault specs stay byte-identical to
        builds that predate the fault field."""
        data = super().to_dict()
        if not data.get("faults"):
            data.pop("faults", None)
        return data

    def chip_key(self) -> str:
        """The chip-configuration facet of the spec.

        Two specs with the same chip key can share one built-and-
        calibrated chip instance; the Runner batches on this.
        """
        return json.dumps(
            {
                "kind": "dna_chip",
                "rows": self.rows,
                "cols": self.cols,
                "v_generator": self.v_generator,
                "v_collector": self.v_collector,
                "calibrate": self.calibrate,
                "calibration_frame_s": self.calibration_frame_s,
            },
            sort_keys=True,
        )

    def layout_key(self) -> str:
        """The probe-panel facet: sweeps over sample composition keep
        the same spotted layout (and therefore comparable sites)."""
        return json.dumps(
            {
                "kind": "dna_layout",
                "rows": self.rows,
                "cols": self.cols,
                "panel": self.panel,
                "probe_count": self.probe_count,
                "probe_length": self.probe_length,
                "replicates": self.replicates,
                "control_every": self.control_every,
                "mismatch_counts": list(self.mismatch_counts),
            },
            sort_keys=True,
        )


# ---------------------------------------------------------------------------
# Neural recording (Section 3 / Figs. 5-6)
# ---------------------------------------------------------------------------
@register_experiment("neural_recording")
@dataclass(frozen=True)
class NeuralRecordingSpec(ExperimentSpec):
    """Record a random culture on the (sub-)array and detect spikes."""

    rows: int = 64
    cols: int = 64
    pitch_m: float = 7.8e-6
    n_neurons: int = 5
    diameter_range_m: tuple[float, float] = (25e-6, 80e-6)
    duration_s: float = 0.25
    firing_rate_hz: float = 25.0
    use_hh: bool = True
    threshold_sigma: float = 4.5
    tolerance_s: float = 3e-3

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1 or self.pitch_m <= 0:
            raise ValueError("invalid array geometry")
        if self.n_neurons < 1:
            raise ValueError("need at least one neuron")
        low, high = self.diameter_range_m
        if not 0 < low <= high:
            raise ValueError("invalid soma diameter range")
        if self.duration_s <= 0 or self.firing_rate_hz <= 0:
            raise ValueError("duration and firing rate must be positive")
        if self.threshold_sigma <= 0 or self.tolerance_s <= 0:
            raise ValueError("detection parameters must be positive")

    def chip_key(self) -> str:
        return json.dumps(
            {
                "kind": "neuro_chip",
                "rows": self.rows,
                "cols": self.cols,
                "pitch_m": self.pitch_m,
            },
            sort_keys=True,
        )

    def physics_key(self) -> str:
        """The simulation facet: everything except the detection
        analysis knobs, so a threshold/tolerance sweep re-scores the
        same culture and recording (paired comparison)."""
        data = self.to_dict()
        for analysis_only in ("threshold_sigma", "tolerance_s"):
            data.pop(analysis_only)
        return json.dumps(data, sort_keys=True)


# ---------------------------------------------------------------------------
# Drug-screening funnel (Fig. 1)
# ---------------------------------------------------------------------------
@register_experiment("screening")
@dataclass(frozen=True)
class ScreeningSpec(ExperimentSpec):
    """Run a compound library through the staged screening funnel.

    Specs that differ only in ``cmos`` share the same generated library
    *and* the same per-stage decision stream, so CMOS-vs-conventional
    comparisons are paired exactly as in the paper's Fig. 1 argument.
    """

    library_size: int = 100_000
    viable_rate: float = 1e-4
    cmos: bool = False

    def __post_init__(self) -> None:
        if self.library_size < 1:
            raise ValueError("library must contain at least one compound")
        if not 0.0 <= self.viable_rate <= 1.0:
            raise ValueError("viable rate must lie in [0, 1]")

    def library_key(self) -> str:
        return json.dumps(
            {
                "kind": "compound_library",
                "library_size": self.library_size,
                "viable_rate": self.viable_rate,
            },
            sort_keys=True,
        )


# ---------------------------------------------------------------------------
# In-pixel ADC transfer sweep (Fig. 3)
# ---------------------------------------------------------------------------
@register_experiment("adc_transfer")
@dataclass(frozen=True)
class AdcTransferSpec(ExperimentSpec):
    """Sweep the sawtooth ADC across the paper's current window.

    Not one of the three headline workloads, but registering it shows
    the registry's point: a fourth kind costs one spec class and one
    workload function.
    """

    i_low_a: float = 1e-12
    i_high_a: float = 100e-9
    points_per_decade: int = 4
    frame_s: float = 1.0
    max_rel_error: float = 0.05

    def __post_init__(self) -> None:
        if not 0 < self.i_low_a < self.i_high_a:
            raise ValueError("need 0 < i_low < i_high")
        if self.points_per_decade < 1:
            raise ValueError("points_per_decade must be >= 1")
        if self.frame_s <= 0:
            raise ValueError("frame must be positive")
        if self.max_rel_error <= 0:
            raise ValueError("max_rel_error must be positive")

    def sweep_key(self) -> str:
        """The measurement facet: max_rel_error only post-processes."""
        data = self.to_dict()
        data.pop("max_rel_error")
        return json.dumps(data, sort_keys=True)


# ---------------------------------------------------------------------------
# Array-scale sweep (the repro.engine workload)
# ---------------------------------------------------------------------------
@register_experiment("array_scale")
@dataclass(frozen=True)
class ArrayScaleSpec(ExperimentSpec):
    """Digitise a deterministic current pattern on an arbitrary-geometry
    DNA-chip array, batched over chip instances.

    The workload behind ``benchmarks/bench_scale_array.py``: it scales
    the Fig. 4 measurement loop from the 16x8 seed geometry to 128x128
    and beyond, on either backend.  ``pattern`` selects the site
    currents:

    * ``"logspan"`` — log-spaced from ``i_low_a`` to ``i_high_a`` across
      the sites (sweeps the dead-time-compressed top decade and the
      quantisation-dominated bottom decade in one frame);
    * ``"uniform"`` — every site at the decade midpoint
      ``sqrt(i_low * i_high)``.

    ``backend`` is the spec-level default; ``Runner.run(spec,
    backend=...)`` overrides it.  ``mismatch`` picks the vectorized
    parameter-draw mode (``"fast"`` or the object-paired ``"paired"``);
    the object backend always draws paired by construction.
    """

    rows: int = 128
    cols: int = 128
    n_chips: int = 1
    i_low_a: float = 1e-12
    i_high_a: float = 100e-9
    pattern: str = "logspan"
    frame_s: float = 0.1
    calibrate: bool = False
    calibration_frame_s: float = 0.05
    backend: str = "vectorized"
    mismatch: str = "fast"

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array dimensions must be positive")
        if self.n_chips < 1:
            raise ValueError("need at least one chip in the batch")
        if not 0 < self.i_low_a <= self.i_high_a:
            raise ValueError("need 0 < i_low <= i_high")
        if self.pattern not in ("logspan", "uniform"):
            raise ValueError(f"unknown current pattern {self.pattern!r}")
        if self.frame_s <= 0 or self.calibration_frame_s <= 0:
            raise ValueError("counting frames must be positive")
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; choose from {BACKENDS}")
        if self.mismatch not in ("paired", "fast"):
            raise ValueError(f"unknown mismatch mode {self.mismatch!r}")

    def chip_key(self) -> str:
        """The chip-configuration facet (geometry + calibration plan).

        The backend deliberately does NOT participate: both backends
        derive the same chip/calibration streams from this key (paired
        mismatch draws), while the Runner keeps them in separate,
        backend-named caches so built chips never cross over."""
        return json.dumps(
            {
                "kind": "array_scale_chip",
                "rows": self.rows,
                "cols": self.cols,
                "n_chips": self.n_chips,
                "calibrate": self.calibrate,
                "calibration_frame_s": self.calibration_frame_s,
                "mismatch": self.mismatch,
            },
            sort_keys=True,
        )

    def site_currents(self):
        """The deterministic per-site current matrix (rows x cols)."""
        import numpy as np

        sites = self.rows * self.cols
        if self.pattern == "uniform":
            level = float(np.sqrt(self.i_low_a * self.i_high_a))
            return np.full((self.rows, self.cols), level)
        return np.logspace(
            np.log10(self.i_low_a), np.log10(self.i_high_a), sites
        ).reshape(self.rows, self.cols)
