"""The batched experiment Runner — the library's front door.

One Runner owns one :class:`~repro.core.rng.SeedTree`; every random
stream any experiment consumes is derived from ``(seed, stream path)``,
never from call order.  Consequences:

* ``run(spec)`` is a pure function of ``(seed, spec)`` — bit-identical
  on repeat, whether run alone, inside a batch, or after other specs;
* expensive substrates (built-and-calibrated chips, probe layouts,
  compound libraries) are cached by the facet of the spec that defines
  them, so a concentration sweep of N assays provisions *one* chip and
  *one* spotted layout instead of N;
* provenance is automatic: every ResultSet records the root seed and
  the stream paths that produced it.

Use::

    from repro.experiments import DnaAssaySpec, Runner

    runner = Runner(seed=1)
    result = runner.run(DnaAssaySpec(concentration=1e-5))
    sweep = runner.run_batch(
        [DnaAssaySpec(concentration=c) for c in (1e-7, 1e-6, 1e-5)]
    )
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from ..core.rng import RngLike, SeedTree, ensure_rng
from .results import ResultSet
from .specs import BACKENDS, ExperimentSpec, experiment_type
from .workloads import workload_for


@dataclass
class RunnerStats:
    """Cheap instrumentation: what the caches actually saved."""

    runs: int = 0
    chips_built: int = 0
    chips_reused: int = 0
    layouts_built: int = 0
    layouts_reused: int = 0
    libraries_built: int = 0
    libraries_reused: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class Runner:
    """Executes experiment specs with shared, deterministic resources.

    Parameters
    ----------
    seed:
        Root of the seed tree.  Two Runners with the same seed produce
        bit-identical results for the same specs.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed_tree = SeedTree(seed)
        self.stats = RunnerStats()
        self._caches: dict[str, dict[str, Any]] = {}
        # Per-run context (single-threaded): which streams were
        # explicitly overridden, the active compute backend, and the
        # provenance to stamp on results.
        self._overridden: frozenset[str] = frozenset()
        self._current_seeds: dict[str, Any] = {}
        self._active_backend: str = "object"

    @property
    def seed(self) -> int:
        return self.seed_tree.root

    @property
    def backend(self) -> str:
        """The compute backend of the run currently executing
        (``"object"`` outside a run) — what workloads dispatch on."""
        return self._active_backend

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        spec: ExperimentSpec | str,
        *,
        backend: Optional[str] = None,
        rng_overrides: Optional[dict[str, RngLike]] = None,
        inputs: Optional[dict[str, Any]] = None,
        **params: Any,
    ) -> ResultSet:
        """Execute one spec and return its :class:`ResultSet`.

        ``spec`` may be a spec instance or a registered kind name plus
        field values (``runner.run("dna_assay", concentration=1e-6)``).

        ``backend`` selects the compute backend (:data:`BACKENDS`):
        ``"object"`` runs the per-pixel reference models, ``"vectorized"``
        the :mod:`repro.engine` array kernels.  ``None`` defers to the
        spec's own ``backend`` field when it has one (``ArrayScaleSpec``)
        and otherwise means ``"object"``.  Random streams are backend-
        independent, but the two backends *consume* them differently, so
        equality across backends is to documented tolerance, not bitwise.

        ``rng_overrides`` replaces named random streams (see each
        workload's ``streams``) — the hook the legacy shims use to
        reproduce seed-era numbers exactly.  ``inputs`` injects
        pre-built substrates (e.g. ``{"library": lib}``); injected or
        override-built resources bypass the caches.
        """
        spec = self._coerce_spec(spec, params)
        resolved_backend = backend if backend is not None else getattr(spec, "backend", "object")
        if resolved_backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {resolved_backend!r}; choose from {BACKENDS}"
            )
        workload = workload_for(spec.kind)
        if resolved_backend not in workload.backends:
            raise ValueError(
                f"workload {spec.kind!r} does not support backend "
                f"{resolved_backend!r}; supported: {workload.backends}"
            )
        paths = workload.streams(spec)
        overrides = rng_overrides or {}
        unknown = set(overrides) - set(paths)
        if unknown:
            raise KeyError(
                f"unknown stream override(s) {sorted(unknown)} for kind "
                f"{spec.kind!r}; streams: {sorted(paths)}"
            )
        rngs = {
            name: ensure_rng(overrides[name])
            if name in overrides
            else self.seed_tree.generator(*path)
            for name, path in paths.items()
        }
        self._overridden = frozenset(overrides)
        self._current_seeds = {
            "root": self.seed,
            "streams": {
                name: "override" if name in overrides else [str(part) for part in path]
                for name, path in paths.items()
            },
        }
        # Save-and-restore so a workload that re-enters run() (composite
        # experiments) gets its outer backend back afterwards.
        previous_backend = self._active_backend
        self._active_backend = resolved_backend
        try:
            result = workload.execute(self, spec, rngs, inputs or {})
        finally:
            self._overridden = frozenset()
            self._current_seeds = {}
            self._active_backend = previous_backend
        self.stats.runs += 1
        return result

    def run_batch(
        self,
        specs: Sequence[ExperimentSpec] | Iterable[ExperimentSpec],
        *,
        backend: Optional[str] = None,
        inputs: Optional[dict[str, Any]] = None,
    ) -> list[ResultSet]:
        """Execute many specs, sharing chips/layouts/libraries via the
        caches.  Results come back in input order and are identical to
        running each spec alone (streams are position-independent)."""
        return [self.run(spec, backend=backend, inputs=inputs) for spec in specs]

    def clear_caches(self) -> None:
        self._caches.clear()

    # ------------------------------------------------------------------
    # Workload services
    # ------------------------------------------------------------------
    def _coerce_spec(self, spec: ExperimentSpec | str, params: dict[str, Any]) -> ExperimentSpec:
        if isinstance(spec, str):
            return experiment_type(spec)(**params)
        if params:
            raise TypeError("field values are only accepted with a kind name, not a spec instance")
        if not isinstance(spec, ExperimentSpec):
            raise TypeError(f"cannot run {type(spec).__name__}; expected a spec or kind name")
        return spec

    def _provision(
        self,
        cache_name: str,
        key: str,
        factory: Callable[[], Any],
        cacheable: bool = True,
        counter: str = "chips",
    ) -> Any:
        """Fetch-or-build a shared substrate, keeping reuse statistics."""
        cache = self._caches.setdefault(cache_name, {})
        if cacheable and key in cache:
            setattr(self.stats, f"{counter}_reused", getattr(self.stats, f"{counter}_reused") + 1)
            return cache[key]
        built = factory()
        setattr(self.stats, f"{counter}_built", getattr(self.stats, f"{counter}_built") + 1)
        if cacheable:
            cache[key] = built
        return built

    def _result(
        self,
        spec: ExperimentSpec,
        record_name: str,
        records: dict[str, Any],
        metrics: dict[str, Any],
        artifacts: dict[str, Any],
    ) -> ResultSet:
        from .. import __version__

        return ResultSet(
            kind=spec.kind,
            spec=spec.to_dict(),
            seeds=dict(self._current_seeds),
            version=__version__,
            record_name=record_name,
            records=records,
            metrics=metrics,
            artifacts=artifacts,
        )
