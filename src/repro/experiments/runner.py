"""The batched experiment Runner — the library's front door.

One Runner owns one :class:`~repro.core.rng.SeedTree`; every random
stream any experiment consumes is derived from ``(seed, stream path)``,
never from call order.  Consequences:

* ``run(spec)`` is a pure function of ``(seed, spec)`` — bit-identical
  on repeat, whether run alone, inside a batch, or after other specs;
* expensive substrates (built-and-calibrated chips, probe layouts,
  compound libraries) are cached by the facet of the spec that defines
  them, so a concentration sweep of N assays provisions *one* chip and
  *one* spotted layout instead of N;
* provenance is automatic: every ResultSet records the root seed and
  the stream paths that produced it.

Use::

    from repro.experiments import DnaAssaySpec, Runner

    runner = Runner(seed=1)
    result = runner.run(DnaAssaySpec(concentration=1e-5))
    sweep = runner.run_batch(
        [DnaAssaySpec(concentration=c) for c in (1e-7, 1e-6, 1e-5)]
    )
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from ..core.rng import RngLike, SeedTree, ensure_rng
from .results import ResultSet
from .specs import BACKENDS, ExperimentSpec, experiment_type
from .workloads import validate_backend, workload_for


@dataclass
class RunnerStats:
    """Cheap instrumentation: what the caches actually saved."""

    runs: int = 0
    chips_built: int = 0
    chips_reused: int = 0
    layouts_built: int = 0
    layouts_reused: int = 0
    libraries_built: int = 0
    libraries_reused: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class Runner:
    """Executes experiment specs with shared, deterministic resources.

    Parameters
    ----------
    seed:
        Root of the seed tree.  Two Runners with the same seed produce
        bit-identical results for the same specs.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed_tree = SeedTree(seed)
        self.stats = RunnerStats()
        self._caches: dict[str, dict[str, Any]] = {}
        # Per-run context (single-threaded): which streams were
        # explicitly overridden, the active compute backend, and the
        # provenance to stamp on results.
        self._overridden: frozenset[str] = frozenset()
        self._current_seeds: dict[str, Any] = {}
        self._active_backend: str = "object"

    @property
    def seed(self) -> int:
        return self.seed_tree.root

    @property
    def backend(self) -> str:
        """The compute backend of the run currently executing
        (``"object"`` outside a run) — what workloads dispatch on."""
        return self._active_backend

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        spec: ExperimentSpec | str,
        *,
        backend: Optional[str] = None,
        rng_overrides: Optional[dict[str, RngLike]] = None,
        inputs: Optional[dict[str, Any]] = None,
        **params: Any,
    ) -> ResultSet:
        """Execute one spec and return its :class:`ResultSet`.

        ``spec`` may be a spec instance or a registered kind name plus
        field values (``runner.run("dna_assay", concentration=1e-6)``).

        ``backend`` selects the compute backend (:data:`BACKENDS`):
        ``"object"`` runs the per-pixel reference models, ``"vectorized"``
        the :mod:`repro.engine` array kernels.  ``None`` defers to the
        spec's own ``backend`` field when it has one (``ArrayScaleSpec``)
        and otherwise means ``"object"``.  Random streams are backend-
        independent, but the two backends *consume* them differently, so
        equality across backends is to documented tolerance, not bitwise.

        ``rng_overrides`` replaces named random streams (see each
        workload's ``streams``) — the hook the legacy shims use to
        reproduce seed-era numbers exactly.  ``inputs`` injects
        pre-built substrates (e.g. ``{"library": lib}``); injected or
        override-built resources bypass the caches.  The mapping itself
        is copied per run — a workload can never mutate the caller's
        dict, and batched runs cannot leak entries into each other —
        while the injected *values* are intentionally shared by
        reference.
        """
        spec = self._coerce_spec(spec, params)
        resolved_backend = backend if backend is not None else getattr(spec, "backend", "object")
        validate_backend(spec.kind, resolved_backend)
        workload = workload_for(spec.kind)
        paths = workload.streams(spec)
        overrides = rng_overrides or {}
        unknown = set(overrides) - set(paths)
        if unknown:
            raise KeyError(
                f"unknown stream override(s) {sorted(unknown)} for kind "
                f"{spec.kind!r}; streams: {sorted(paths)}"
            )
        rngs = {
            name: ensure_rng(overrides[name])
            if name in overrides
            else self.seed_tree.generator(*path)
            for name, path in paths.items()
        }
        self._overridden = frozenset(overrides)
        self._current_seeds = {
            "root": self.seed,
            "streams": {
                name: "override" if name in overrides else [str(part) for part in path]
                for name, path in paths.items()
            },
        }
        # Save-and-restore so a workload that re-enters run() (composite
        # experiments) gets its outer backend back afterwards.
        previous_backend = self._active_backend
        self._active_backend = resolved_backend
        try:
            # Shallow copy: per-run input isolation (values shared).
            result = workload.execute(self, spec, rngs, dict(inputs or {}))
        finally:
            self._overridden = frozenset()
            self._current_seeds = {}
            self._active_backend = previous_backend
        self.stats.runs += 1
        return result

    def run_batch(
        self,
        specs: Sequence[ExperimentSpec] | Iterable[ExperimentSpec],
        *,
        backend: Optional[str] = None,
        inputs: Optional[dict[str, Any]] = None,
    ) -> list[ResultSet]:
        """Execute many specs, sharing chips/layouts/libraries via the
        caches.  Results come back in input order and are identical to
        running each spec alone (streams are position-independent).

        Since the campaign redesign this is a thin shim over
        :mod:`repro.campaigns`: the spec list compiles to a
        :class:`~repro.campaigns.plan.Plan` executed in-place on *this*
        Runner by the serial executor, so caches, stats and artifacts
        behave exactly as before.  Each spec sees its own shallow copy
        of ``inputs`` (see :meth:`run`).
        """
        from ..campaigns.executors import SerialExecutor
        from ..campaigns.plan import Plan

        plan = Plan.for_specs(specs, seed=self.seed)
        results: list[Optional[ResultSet]] = [None] * len(plan)
        executor = SerialExecutor()
        for outcome in executor.run(
            plan, backend=backend, inputs=inputs, runner_factory=lambda seed: self
        ):
            results[outcome.point.index] = outcome.result
        return results  # type: ignore[return-value]

    def run_campaign(
        self,
        campaign: "Any",
        *,
        executor: "Any" = "serial",
        workers: Optional[int] = None,
        store: "Any" = None,
        out: Optional[Any] = None,
        overwrite: bool = False,
        flush_every: int = 1,
        backend: Optional[str] = None,
        inputs: Optional[dict[str, Any]] = None,
    ) -> "Any":
        """Execute a :class:`~repro.campaigns.spec.CampaignSpec` rooted
        at this Runner's seed and return the
        :class:`~repro.campaigns.store.CampaignResult`.

        Convenience front door for :func:`repro.campaigns.run_campaign`
        — see there for executor/store/backend semantics.  Replicate 0
        of every point runs under this Runner's root seed, so a
        1-replicate campaign point is bit-identical to ``self.run(spec)``
        (executors own their workers' Runner clones; this Runner's
        caches are not consulted).
        """
        from ..campaigns import run_campaign

        return run_campaign(
            campaign,
            seed=self.seed,
            executor=executor,
            workers=workers,
            store=store,
            out=out,
            overwrite=overwrite,
            flush_every=flush_every,
            backend=backend,
            inputs=inputs,
        )

    def clone(self, seed: Optional[int] = None) -> "Runner":
        """A fresh Runner with the same root seed (or ``seed``) and empty
        caches/stats.  Convenience for callers fanning work out by hand;
        equivalent to what the campaign executors build per worker
        (``Runner(point.seed)``), and bit-identical to this Runner on
        the same specs because streams depend only on (root, path)."""
        return Runner(seed=self.seed if seed is None else seed)

    def clear_caches(self) -> None:
        self._caches.clear()

    # ------------------------------------------------------------------
    # Workload services
    # ------------------------------------------------------------------
    def _coerce_spec(self, spec: ExperimentSpec | str, params: dict[str, Any]) -> ExperimentSpec:
        if isinstance(spec, str):
            return experiment_type(spec)(**params)
        if params:
            raise TypeError("field values are only accepted with a kind name, not a spec instance")
        if not isinstance(spec, ExperimentSpec):
            raise TypeError(f"cannot run {type(spec).__name__}; expected a spec or kind name")
        return spec

    def _provision(
        self,
        cache_name: str,
        key: str,
        factory: Callable[[], Any],
        cacheable: bool = True,
        counter: str = "chips",
    ) -> Any:
        """Fetch-or-build a shared substrate, keeping reuse statistics."""
        cache = self._caches.setdefault(cache_name, {})
        if cacheable and key in cache:
            setattr(self.stats, f"{counter}_reused", getattr(self.stats, f"{counter}_reused") + 1)
            return cache[key]
        built = factory()
        setattr(self.stats, f"{counter}_built", getattr(self.stats, f"{counter}_built") + 1)
        if cacheable:
            cache[key] = built
        return built

    def _result(
        self,
        spec: ExperimentSpec,
        record_name: str,
        records: dict[str, Any],
        metrics: dict[str, Any],
        artifacts: dict[str, Any],
        trace: Optional[Any] = None,
    ) -> ResultSet:
        from .. import __version__

        return ResultSet(
            kind=spec.kind,
            spec=spec.to_dict(),
            seeds=dict(self._current_seeds),
            version=__version__,
            record_name=record_name,
            records=records,
            metrics=metrics,
            artifacts=artifacts,
            trace=trace,
        )
