"""Unified experiment API: declarative specs -> Runner -> ResultSets.

The one front door for all the paper's workloads::

    from repro.experiments import DnaAssaySpec, Runner

    runner = Runner(seed=1)
    result = runner.run(DnaAssaySpec(concentration=1e-5))
    print(result.metrics["discrimination_ratio"])
    payload = result.to_json()

Specs are frozen and serializable (``to_dict``/``from_dict``); the
Runner owns the seed tree, batches over shared chips/layouts/libraries,
and always returns the uniform :class:`ResultSet`.
"""

from .compat import run_legacy_dna_assay, run_legacy_neural_recording
from .results import ResultSet, stack_metrics
from .runner import BACKENDS, Runner, RunnerStats
from .specs import (
    AdcTransferSpec,
    ArrayScaleSpec,
    DnaAssaySpec,
    ExperimentSpec,
    NeuralRecordingSpec,
    ScreeningSpec,
    experiment_kinds,
    experiment_type,
    register_experiment,
    spec_from_dict,
)
from .workloads import register_workload, validate_backend, workload_for

__all__ = [
    "AdcTransferSpec",
    "ArrayScaleSpec",
    "BACKENDS",
    "DnaAssaySpec",
    "ExperimentSpec",
    "NeuralRecordingSpec",
    "ResultSet",
    "Runner",
    "RunnerStats",
    "ScreeningSpec",
    "experiment_kinds",
    "experiment_type",
    "register_experiment",
    "register_workload",
    "run_legacy_dna_assay",
    "run_legacy_neural_recording",
    "spec_from_dict",
    "stack_metrics",
    "validate_backend",
    "workload_for",
]
