"""Workload implementations behind the Runner.

Each experiment kind contributes two functions:

* ``streams(spec)`` — the named random streams it consumes, each mapped
  to a seed-tree path.  Paths are keyed by the *facet* of the spec they
  serve: chip streams hash only chip configuration (so identical chips
  are shared and re-seeded identically), layout streams only the panel
  design (so concentration sweeps keep the same spotted array), and
  measurement streams the full spec (so distinct experiments get
  independent noise).
* ``execute(runner, spec, rngs, inputs)`` — run the physics and fold
  the outcome into a :class:`~repro.experiments.results.ResultSet`.

``register_workload`` adds a new kind at runtime; the built-in three
(plus the ADC sweep) register at import.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..analysis.transfer import characterize_adc
from ..chip.dna_chip import ChipSpecs, DnaMicroarrayChip
from ..chip.neuro_chip import NeuralRecordingChip
from ..dna.assay import AssayProtocol, MicroarrayAssay
from ..dna.sample import Sample
from ..dna.sequences import DnaSequence, Probe, Target
from ..dna.spotting import ProbeLayout
from ..core.signals import Trace
from ..engine import VectorizedDnaChip, VectorizedNeuroChip, kernels, neuro_kernels
from ..neuro.culture import ArrayGeometry, Culture
from ..neuro.spike_detection import detect_spikes, score_detection, spike_snr
from ..pixel.sawtooth_adc import SawtoothAdc
from ..screening.compounds import CompoundLibrary
from ..screening.stages import default_funnel_stages
from .results import ResultSet
from .specs import (
    AdcTransferSpec,
    ArrayScaleSpec,
    DnaAssaySpec,
    ExperimentSpec,
    NeuralRecordingSpec,
    ScreeningSpec,
)

if TYPE_CHECKING:  # pragma: no cover
    from .runner import Runner

StreamsFn = Callable[[ExperimentSpec], dict[str, tuple]]
ExecuteFn = Callable[["Runner", ExperimentSpec, dict, dict], ResultSet]


@dataclass(frozen=True)
class Workload:
    kind: str
    streams: StreamsFn
    execute: ExecuteFn
    #: Compute backends this workload actually dispatches on; the Runner
    #: rejects requests for any other so "vectorized" can never silently
    #: run object-model code.
    backends: tuple[str, ...] = ("object",)


WORKLOADS: dict[str, Workload] = {}


def register_workload(
    kind: str,
    streams: StreamsFn,
    execute: ExecuteFn,
    backends: tuple[str, ...] = ("object",),
) -> None:
    """Plug a new experiment kind into the Runner dispatch table."""
    if kind in WORKLOADS:
        raise ValueError(f"workload {kind!r} already registered")
    WORKLOADS[kind] = Workload(kind=kind, streams=streams, execute=execute, backends=backends)


def _chip_trace(chip: Any) -> Any:
    """The digital-path capture of a recorder-carrying chip (or None).

    Duck-typed so workloads work with object chips, vectorized twins
    and caller-injected substrates alike."""
    recorder = getattr(chip, "recorder", None)
    return recorder.trace() if recorder is not None else None


def workload_for(kind: str) -> Workload:
    try:
        return WORKLOADS[kind]
    except KeyError:
        raise KeyError(
            f"no workload registered for kind {kind!r}; known: {sorted(WORKLOADS)}"
        ) from None


def validate_backend(kind: str, backend: "str | None") -> None:
    """Raise unless ``backend`` is known and supported by ``kind``
    (``None`` — defer to defaults — always passes).

    The one definition of this check: Runner.run, run_campaign and the
    CLI all route through it, so error wording cannot drift, and
    callers that create resources (result stores on disk) can validate
    *first*.
    """
    if backend is None:
        return
    from .specs import BACKENDS

    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    workload = workload_for(kind)
    if backend not in workload.backends:
        raise ValueError(
            f"workload {kind!r} does not support backend "
            f"{backend!r}; supported: {workload.backends}"
        )


# ---------------------------------------------------------------------------
# DNA microarray assay
# ---------------------------------------------------------------------------
def _dna_streams(spec: DnaAssaySpec) -> dict[str, tuple]:
    streams = {
        "chip": ("dna", "chip", spec.chip_key()),
        "calibration": ("dna", "calibration", spec.chip_key()),
        "layout": ("dna", "layout", spec.layout_key()),
        "measure": ("dna", "measure", spec.content_hash()),
    }
    # The fault stream exists only when faults do: zero-fault specs keep
    # their historical stream set (and ResultSet seed provenance)
    # byte-identical.  Keyed on the full content hash — the fault
    # schedule is part of the experiment, not of any shared facet.
    if getattr(spec, "faults", ()):
        streams["faults"] = ("dna", "faults", spec.content_hash())
    return streams


def _build_dna_chip(spec: DnaAssaySpec, chip_rng, calibration_rng) -> DnaMicroarrayChip:
    chip = DnaMicroarrayChip(ChipSpecs(rows=spec.rows, cols=spec.cols), rng=chip_rng)
    bias_ok = chip.configure_bias(spec.v_generator, spec.v_collector)
    if spec.calibrate:
        chip.auto_calibrate(frame_s=spec.calibration_frame_s, rng=calibration_rng)
    chip.bias_ok = bias_ok
    return chip


def _build_dna_layout(spec: DnaAssaySpec, layout_rng) -> tuple[ProbeLayout, DnaSequence | None]:
    """Returns the spotted layout plus, for mismatch panels, the target
    region the probes were designed against."""
    if spec.panel == "mismatch":
        region = DnaSequence.random(spec.probe_length, layout_rng)
        perfect = region.reverse_complement()
        probes = [Probe("match-0mm", perfect)]
        for n_mm in spec.mismatch_counts:
            probes.append(Probe(f"mismatch-{n_mm}mm", perfect.with_mismatches(n_mm, layout_rng)))
        layout = ProbeLayout.tiled(
            probes,
            rows=spec.rows,
            cols=spec.cols,
            replicates=spec.replicates,
            control_every=spec.control_every,
        )
        return layout, region
    layout = ProbeLayout.random_panel(
        spec.probe_count,
        probe_length=spec.probe_length,
        rows=spec.rows,
        cols=spec.cols,
        rng=layout_rng,
        replicates=spec.replicates,
        control_every=spec.control_every,
    )
    return layout, None


def _build_dna_sample(spec: DnaAssaySpec, layout: ProbeLayout, region: DnaSequence | None) -> Sample:
    if spec.panel == "mismatch":
        assert region is not None
        target = Target("reference-target", region, total_length=spec.target_length)
        return Sample({target: spec.concentration})
    probes = layout.probes()
    subset = list(spec.target_subset) if spec.target_subset is not None else None
    return Sample.for_probes(
        probes, spec.concentration, target_length=spec.target_length, subset=subset
    )


def _build_dna_chip_vectorized(
    spec: DnaAssaySpec, chip_rng, calibration_rng
) -> VectorizedDnaChip:
    """The engine-backed twin of :func:`_build_dna_chip`: same chip and
    calibration streams, ``"paired"`` mismatch draws so the pixel
    parameters are bit-identical to the object chip's."""
    chip = VectorizedDnaChip(
        ChipSpecs(rows=spec.rows, cols=spec.cols), rng=chip_rng, mismatch="paired"
    )
    bias_ok = chip.configure_bias(spec.v_generator, spec.v_collector)
    if spec.calibrate:
        chip.auto_calibrate(frame_s=spec.calibration_frame_s, rng=calibration_rng)
    chip.bias_ok = bias_ok
    return chip


def _faulted_readout(
    spec: DnaAssaySpec, chip: DnaMicroarrayChip, counts: np.ndarray, rng
) -> tuple[np.ndarray, dict[str, Any]]:
    """Run the serial readout under fault injection + resilient recovery.

    Attaches a :class:`~repro.faults.FaultInjector` to the link's
    duck-typed seam, drives :func:`~repro.chip.readout
    .read_counters_resilient`, and detaches again — chips are cached
    and shared across campaign points, so the injector (and any
    register corruption that survived recovery) must never outlive this
    point's readout.

    Returns the host-recovered count matrix plus dead/silent site masks
    and the readout accounting.
    """
    from ..chip.readout import read_counters_resilient
    from ..faults import FaultInjector

    injector = FaultInjector(
        spec.faults, rng=rng, recorder=getattr(chip, "recorder", None)
    )
    shadow = chip.registers.dump()
    chip.link.injector = injector
    try:
        outcome = read_counters_resilient(chip)
    finally:
        chip.link.injector = None
        # Scrub any register upset the controller could not rewrite
        # (read-only registers): the shared chip must leave this point
        # exactly as it entered, or later points would see a state that
        # depends on execution order.
        current = chip.registers.dump()
        for name, value in shadow.items():
            if current[name] != value:
                chip.registers.corrupt(name, current[name] ^ value, source="restore")
    readout = np.asarray(outcome.counters, dtype=np.int64).reshape(counts.shape)
    dead = np.zeros(counts.size, dtype=bool)
    if outcome.dead_sites:
        dead[list(outcome.dead_sites)] = True
    dead = dead.reshape(counts.shape)
    # Silent corruption: the host decoded it cleanly, yet it is not what
    # the pixels counted (checksum-preserving flip sets, stuck pixels).
    silent = (readout != counts) & ~dead
    return readout, {"outcome": outcome, "dead": dead, "silent": silent}


def _fault_metrics(info: dict[str, Any], n_sites: int) -> dict[str, Any]:
    """Fold the readout accounting into per-point metrics the
    ``fault_tolerance`` analysis pools across a campaign."""
    outcome = info["outcome"]
    dead = int(info["dead"].sum())
    silent = int(info["silent"].sum())
    detected = outcome.frames_corrupted + outcome.registers_corrupted
    caught = detected + silent
    return {
        "fault_frames_total": outcome.frames_total,
        "fault_frames_corrupted": outcome.frames_corrupted,
        "fault_frames_recovered": outcome.frames_recovered,
        "fault_frames_lost": outcome.frames_lost,
        "fault_retries": outcome.retries,
        "fault_registers_checked": outcome.registers_checked,
        "fault_registers_corrupted": outcome.registers_corrupted,
        "fault_registers_restored": outcome.registers_restored,
        "fault_sites_total": n_sites,
        "fault_sites_dead": dead,
        "fault_sites_silent": silent,
        # Of all corruption the run produced, what fraction did the
        # controller *see* (checksum, read-back) vs decode cleanly?
        "fault_detection_rate": float(detected / caught) if caught else 1.0,
        "fault_silent_rate": float(silent / max(1, n_sites - dead)),
        "fault_site_survival": float(1.0 - dead / n_sites) if n_sites else 1.0,
        "fault_stall_s": float(outcome.stall_s_total),
    }


def _execute_dna(runner: "Runner", spec: DnaAssaySpec, rngs: dict, inputs: dict) -> ResultSet:
    vectorized = runner.backend == "vectorized"
    chip = inputs.get("chip")
    if chip is None:
        build = _build_dna_chip_vectorized if vectorized else _build_dna_chip
        chip = runner._provision(
            "dna_chip_vectorized" if vectorized else "dna_chip",
            spec.chip_key(),
            lambda: build(spec, rngs["chip"], rngs["calibration"]),
            cacheable="chip" not in runner._overridden and "calibration" not in runner._overridden,
        )
    cached_layout = runner._provision(
        "dna_layout",
        spec.layout_key(),
        lambda: _build_dna_layout(spec, rngs["layout"]),
        cacheable="layout" not in runner._overridden,
        counter="layouts",
    )
    layout, region = cached_layout
    sample = _build_dna_sample(spec, layout, region)
    protocol = AssayProtocol(hybridization_s=spec.hybridization_s, wash_s=spec.wash_s)
    assay = MicroarrayAssay(layout).run(sample, protocol)
    counts = chip.measure_assay(assay, frame_s=spec.frame_s, rng=rngs["measure"])
    fault_info = None
    if getattr(spec, "faults", ()):
        if vectorized:
            raise ValueError(
                "fault injection drives the serial readout path, which the "
                "vectorized backend does not model; run faulted dna_assay "
                "specs on the object backend"
            )
        # The host now only knows what the resilient readout recovered:
        # counts (and everything downstream) switch to the wire values,
        # with lost frames zero-filled and flagged per site.
        true_counts = counts
        counts, fault_info = _faulted_readout(spec, chip, counts, rngs["faults"])
    estimates = chip.current_estimates(counts, frame_s=spec.frame_s)

    sites = assay.sites
    records = {
        "row": np.asarray([s.row for s in sites], dtype=int),
        "col": np.asarray([s.col for s in sites], dtype=int),
        "probe": np.asarray([s.probe_name for s in sites], dtype=object),
        "mismatches": np.asarray([s.best_match_mismatches for s in sites], dtype=int),
        "is_match": np.asarray([s.is_match_site for s in sites], dtype=bool),
        "occupancy_hyb": np.asarray([s.occupancy_after_hybridization for s in sites]),
        "occupancy_wash": np.asarray([s.occupancy_after_wash for s in sites]),
        "sensor_current_a": np.asarray([s.sensor_current for s in sites]),
        "count": np.asarray([counts[s.row, s.col] for s in sites], dtype=int),
        "current_estimate_a": np.asarray([estimates[s.row, s.col] for s in sites]),
    }
    if fault_info is not None:
        records["site_dead"] = np.asarray(
            [fault_info["dead"][s.row, s.col] for s in sites], dtype=bool
        )
        records["site_silent"] = np.asarray(
            [fault_info["silent"][s.row, s.col] for s in sites], dtype=bool
        )
    metrics: dict[str, Any] = {
        # bias_ok is stamped by the chip builders; an injected chip
        # (inputs={"chip": ...}) was configured by the caller.
        "bias_ok": bool(getattr(chip, "bias_ok", True)),
        "backend": runner.backend,
        "n_sites": len(sites),
        "n_match_sites": int(records["is_match"].sum()),
        "n_probe_sites": int(sum(1 for s in sites if s.probe_name)),
    }
    match_mask = records["is_match"]
    nonmatch_mask = ~match_mask & (records["probe"] != "").astype(bool)
    match = records["sensor_current_a"][match_mask]
    nonmatch = records["sensor_current_a"][nonmatch_mask]
    if len(match) and len(nonmatch):
        metrics["median_match_current_a"] = float(np.median(match))
        metrics["median_nonmatch_current_a"] = float(np.median(nonmatch))
        metrics["discrimination_ratio"] = float(np.median(match) / np.median(nonmatch))
        # Spot-to-spot spreads: the nonmatch sigma is the per-chip blank
        # noise the 3σ-LoD criterion in repro.inference rests on.
        metrics["match_current_sigma_a"] = (
            float(match.std(ddof=1)) if len(match) > 1 else 0.0
        )
        metrics["nonmatch_current_sigma_a"] = (
            float(nonmatch.std(ddof=1)) if len(nonmatch) > 1 else 0.0
        )
        # The *measured* twins (post ADC + calibration + counting noise):
        # chemistry currents are deterministic per layout, so replicate
        # spread — what a dose–response CI is about — only shows here.
        match_est = records["current_estimate_a"][match_mask]
        nonmatch_est = records["current_estimate_a"][nonmatch_mask]
        metrics["median_match_estimate_a"] = float(np.median(match_est))
        metrics["median_nonmatch_estimate_a"] = float(np.median(nonmatch_est))
    positive = records["current_estimate_a"][records["current_estimate_a"] > 0]
    if len(positive):
        metrics["current_span_decades"] = float(np.log10(positive.max() / positive.min()))
    artifacts = {
        "chip": chip,
        "layout": layout,
        "assay": assay,
        "sample": sample,
        "counts": counts,
        "current_estimates": estimates,
    }
    if fault_info is not None:
        metrics.update(_fault_metrics(fault_info, counts.size))
        artifacts["true_counts"] = true_counts
        artifacts["readout"] = fault_info["outcome"]
    return runner._result(
        spec,
        record_name="site",
        records=records,
        metrics=metrics,
        artifacts=artifacts,
        trace=_chip_trace(chip),
    )


# ---------------------------------------------------------------------------
# Neural recording
# ---------------------------------------------------------------------------
def _neural_streams(spec: NeuralRecordingSpec) -> dict[str, tuple]:
    # Culture/recording hash only the physics facet: sweeping analysis
    # knobs (threshold_sigma, tolerance_s) re-scores the *same*
    # simulated culture and recording, keeping ROC-style comparisons
    # paired.
    return {
        "chip": ("neuro", "chip", spec.chip_key()),
        "culture": ("neuro", "culture", spec.physics_key()),
        "record": ("neuro", "record", spec.physics_key()),
    }


def _build_neuro_chip(spec: NeuralRecordingSpec, chip_rng) -> NeuralRecordingChip:
    chip = NeuralRecordingChip(
        geometry=ArrayGeometry(spec.rows, spec.cols, spec.pitch_m), rng=chip_rng
    )
    chip.calibrate()
    return chip


def _build_neuro_chip_vectorized(spec: NeuralRecordingSpec, chip_rng) -> VectorizedNeuroChip:
    """The engine-backed twin of :func:`_build_neuro_chip`: consumes the
    chip stream identically, so pixel planes and channel draws are
    bit-identical to the object chip's."""
    chip = VectorizedNeuroChip(
        geometry=ArrayGeometry(spec.rows, spec.cols, spec.pitch_m), rng=chip_rng
    )
    chip.calibrate()
    return chip


_NEURAL_COLUMN_NAMES = (
    "neuron",
    "diameter_m",
    "best_row",
    "best_col",
    "peak_v",
    "true_spikes",
    "detected_spikes",
    "precision",
    "recall",
    "snr",
)


def _neural_offgrid_row(columns: dict, neuron, truth) -> None:
    # Off-grid soma (possible at array edges): no trace to score.
    columns["best_row"].append(-1)
    columns["best_col"].append(-1)
    columns["peak_v"].append(0.0)
    columns["true_spikes"].append(len(truth))
    columns["detected_spikes"].append(0)
    columns["precision"].append(0.0)
    columns["recall"].append(0.0)
    columns["snr"].append(float("nan"))


def _score_neurons_object(spec: NeuralRecordingSpec, recording, culture) -> dict:
    """Per-neuron spike scoring on the object path: one trace, one
    detector call per neuron."""
    columns: dict[str, list] = {name: [] for name in _NEURAL_COLUMN_NAMES}
    for neuron in culture.neurons:
        truth = recording.ground_truth[neuron.index]
        columns["neuron"].append(neuron.index)
        columns["diameter_m"].append(neuron.diameter)
        if not culture.pixels_for_neuron(neuron):
            _neural_offgrid_row(columns, neuron, truth)
            continue
        row, col = recording.best_pixel_for(neuron.index)
        trace = recording.electrode_movie.pixel_trace(row, col)
        detected = detect_spikes(trace, threshold_sigma=spec.threshold_sigma)
        score = score_detection(detected, truth, tolerance_s=spec.tolerance_s)
        columns["best_row"].append(row)
        columns["best_col"].append(col)
        columns["peak_v"].append(trace.peak_abs())
        columns["true_spikes"].append(len(truth))
        columns["detected_spikes"].append(len(detected))
        columns["precision"].append(score.precision)
        columns["recall"].append(score.recall)
        columns["snr"].append(spike_snr(trace, truth) if len(truth) else float("nan"))
    return columns


def _score_neurons_vectorized(spec: NeuralRecordingSpec, recording, culture) -> dict:
    """Array-wide scoring: best pixels from one peak plane, every
    best-pixel trace detected in one matrix pass
    (:func:`repro.engine.neuro_kernels.detect_spikes_matrix`)."""
    columns: dict[str, list] = {name: [] for name in _NEURAL_COLUMN_NAMES}
    frames = recording.electrode_movie.frames
    peak_plane = np.max(np.abs(frames), axis=0) if culture.neurons else None
    active: list[tuple[int, int, int]] = []  # (neuron position, row, col)
    for position, neuron in enumerate(culture.neurons):
        truth = recording.ground_truth[neuron.index]
        columns["neuron"].append(neuron.index)
        columns["diameter_m"].append(neuron.diameter)
        covered = culture.pixels_for_neuron(neuron)
        if not covered:
            _neural_offgrid_row(columns, neuron, truth)
            continue
        peaks = np.asarray([peak_plane[r, c] for r, c in covered])
        row, col = covered[int(np.argmax(peaks))]
        active.append((position, row, col))
        columns["best_row"].append(row)
        columns["best_col"].append(col)
        columns["true_spikes"].append(len(truth))
        # peak_v / detection filled from the matrix pass below.
        columns["peak_v"].append(None)
        columns["detected_spikes"].append(None)
        columns["precision"].append(None)
        columns["recall"].append(None)
        columns["snr"].append(None)
    if active:
        dt = 1.0 / recording.electrode_movie.frame_rate_hz
        traces = frames[:, [r for _, r, _ in active], [c for _, _, c in active]].T
        detected_all = neuro_kernels.detect_spikes_matrix(
            traces, dt, threshold_sigma=spec.threshold_sigma
        )
        peak_values = np.max(np.abs(traces), axis=1)
        # Columns hold one entry per neuron in position order, so each
        # active neuron's placeholder sits at its culture position.
        for (position, _, _), trace_row, detected, peak in zip(
            active, traces, detected_all, peak_values
        ):
            neuron = culture.neurons[position]
            truth = recording.ground_truth[neuron.index]
            score = score_detection(detected, truth, tolerance_s=spec.tolerance_s)
            columns["peak_v"][position] = float(peak)
            columns["detected_spikes"][position] = len(detected)
            columns["precision"][position] = score.precision
            columns["recall"][position] = score.recall
            columns["snr"][position] = (
                spike_snr(Trace(trace_row, dt), truth) if len(truth) else float("nan")
            )
    return columns


def neural_records_and_metrics(
    spec: NeuralRecordingSpec, chip, culture, recording, backend: str
) -> tuple[dict, dict]:
    """Fold a recording into the workload's records/metrics — shared by
    the Runner path and the batched campaign fast path."""
    if backend == "vectorized":
        columns = _score_neurons_vectorized(spec, recording, culture)
    else:
        columns = _score_neurons_object(spec, recording, culture)
    records = {
        "neuron": np.asarray(columns["neuron"], dtype=int),
        "diameter_m": np.asarray(columns["diameter_m"], dtype=float),
        "best_row": np.asarray(columns["best_row"], dtype=int),
        "best_col": np.asarray(columns["best_col"], dtype=int),
        "peak_v": np.asarray(columns["peak_v"], dtype=float),
        "true_spikes": np.asarray(columns["true_spikes"], dtype=int),
        "detected_spikes": np.asarray(columns["detected_spikes"], dtype=int),
        "precision": np.asarray(columns["precision"], dtype=float),
        "recall": np.asarray(columns["recall"], dtype=float),
        "snr": np.asarray(columns["snr"], dtype=float),
    }
    # Precision is defined over neurons that detected something,
    # recall over neurons that actually fired — matching the per-neuron
    # DetectionScore denominators.
    detected = records["detected_spikes"] > 0
    fired = records["true_spikes"] > 0
    metrics = {
        "backend": backend,
        "n_neurons": len(culture.neurons),
        # An empty culture covers nothing (coverage_fraction() rejects
        # the 0/0 case; the workload reports 0.0).
        "coverage_fraction": float(culture.coverage_fraction()) if culture.neurons else 0.0,
        "noise_floor_v": float(chip.input_referred_noise_v()),
        "frame_rate_hz": float(chip.scan.frame_rate_hz),
        "channel_pixel_rate_hz": float(chip.scan.channel_pixel_rate_hz),
        "aggregate_pixel_rate_hz": float(chip.scan.aggregate_pixel_rate_hz),
        "total_true_spikes": int(records["true_spikes"].sum()),
        "total_detected_spikes": int(records["detected_spikes"].sum()),
        "mean_precision": float(records["precision"][detected].mean()) if detected.any() else 0.0,
        "mean_recall": float(records["recall"][fired].mean()) if fired.any() else 0.0,
    }
    return records, metrics


def _execute_neural(
    runner: "Runner", spec: NeuralRecordingSpec, rngs: dict, inputs: dict
) -> ResultSet:
    backend = runner.backend
    vectorized = backend == "vectorized"
    chip = inputs.get("chip")
    if chip is None:
        build = _build_neuro_chip_vectorized if vectorized else _build_neuro_chip
        chip = runner._provision(
            "neuro_chip_vectorized" if vectorized else "neuro_chip",
            spec.chip_key(),
            lambda: build(spec, rngs["chip"]),
            cacheable="chip" not in runner._overridden,
        )
    culture = inputs.get("culture")
    if culture is None:
        culture = Culture.random(
            spec.n_neurons,
            chip.geometry,
            diameter_range=spec.diameter_range_m,
            rng=rngs["culture"],
        )
    recording = chip.record_culture(
        culture,
        duration_s=spec.duration_s,
        firing_rate_hz=spec.firing_rate_hz,
        rng=rngs["record"],
        use_hh=spec.use_hh,
    )
    records, metrics = neural_records_and_metrics(spec, chip, culture, recording, backend)
    return runner._result(
        spec,
        record_name="neuron",
        records=records,
        metrics=metrics,
        artifacts={"chip": chip, "culture": culture, "recording": recording},
        trace=_chip_trace(chip),
    )


# ---------------------------------------------------------------------------
# Drug-screening funnel
# ---------------------------------------------------------------------------
def _screening_streams(spec: ScreeningSpec) -> dict[str, tuple]:
    # The funnel stream hashes only the library facet: specs differing in
    # `cmos` draw identical decision noise, giving paired comparisons.
    return {
        "library": ("screening", "library", spec.library_key()),
        "funnel": ("screening", "funnel", spec.library_key()),
    }


def _execute_screening(
    runner: "Runner", spec: ScreeningSpec, rngs: dict, inputs: dict
) -> ResultSet:
    from ..screening.funnel import ScreeningFunnel

    library = inputs.get("library")
    if library is None:
        library = runner._provision(
            "library",
            spec.library_key(),
            lambda: CompoundLibrary.generate(
                size=spec.library_size, viable_rate=spec.viable_rate, rng=rngs["library"]
            ),
            cacheable="library" not in runner._overridden,
            counter="libraries",
        )
    funnel = ScreeningFunnel(default_funnel_stages(cmos=spec.cmos))
    result = funnel.run(library, rng=rngs["funnel"])

    outcomes = result.outcomes
    records = {
        "stage": np.asarray([o.stage_name for o in outcomes], dtype=object),
        "candidates_in": np.asarray([o.candidates_in for o in outcomes], dtype=int),
        "candidates_out": np.asarray([o.candidates_out for o in outcomes], dtype=int),
        "viable_in": np.asarray([o.viable_in for o in outcomes], dtype=int),
        "viable_out": np.asarray([o.viable_out for o in outcomes], dtype=int),
        "cost": np.asarray([o.cost for o in outcomes]),
        "days": np.asarray([o.days for o in outcomes]),
        "cost_per_datapoint": np.asarray([o.cost_per_datapoint for o in outcomes]),
        "datapoints_per_day": np.asarray([o.datapoints_per_day for o in outcomes]),
    }
    metrics = {
        "library_size": library.size,
        "library_viable": library.viable_count(),
        "survivors": result.survivors,
        "surviving_viable": result.surviving_viable,
        "total_cost": float(result.total_cost),
        "total_days": float(result.total_days),
        "monotone_cost_increase": bool(result.monotone_cost_increase()),
        "monotone_throughput_decrease": bool(result.monotone_throughput_decrease()),
    }
    return runner._result(
        spec,
        record_name="stage",
        records=records,
        metrics=metrics,
        artifacts={"funnel": result, "library": library},
    )


# ---------------------------------------------------------------------------
# ADC transfer sweep
# ---------------------------------------------------------------------------
def _adc_streams(spec: AdcTransferSpec) -> dict[str, tuple]:
    # Hash the sweep facet only: max_rel_error is an analysis knob and
    # must not change the measured counts.
    return {"measure": ("adc", "measure", spec.sweep_key())}


def _execute_adc(runner: "Runner", spec: AdcTransferSpec, rngs: dict, inputs: dict) -> ResultSet:
    adc = inputs.get("adc") or SawtoothAdc()
    analysis = characterize_adc(
        adc,
        i_low=spec.i_low_a,
        i_high=spec.i_high_a,
        points_per_decade=spec.points_per_decade,
        frame_s=spec.frame_s,
        rng=rngs["measure"],
        max_rel_error=spec.max_rel_error,
    )
    records = {
        "current_a": np.asarray([r.current_a for r in analysis.rows]),
        "frequency_hz": np.asarray([r.frequency_hz for r in analysis.rows]),
        "ideal_frequency_hz": np.asarray([r.ideal_frequency_hz for r in analysis.rows]),
        "count": np.asarray([r.count for r in analysis.rows], dtype=int),
        "measured_frequency_hz": np.asarray([r.measured_frequency_hz for r in analysis.rows]),
        "relative_error": np.asarray([r.relative_error for r in analysis.rows]),
    }
    metrics = {
        "loglog_slope": float(analysis.loglog_slope),
        "usable_low_a": float(analysis.usable_low_a),
        "usable_high_a": float(analysis.usable_high_a),
        "usable_decades": float(analysis.usable_decades),
        "max_frequency_hz": float(adc.max_frequency()),
    }
    return runner._result(
        spec,
        record_name="sweep_point",
        records=records,
        metrics=metrics,
        artifacts={"adc": adc, "analysis": analysis},
    )


# ---------------------------------------------------------------------------
# Array-scale sweep (the repro.engine workload)
# ---------------------------------------------------------------------------
def _array_scale_streams(spec: ArrayScaleSpec) -> dict[str, tuple]:
    # Chip and calibration streams hash the chip facet (shared across
    # pattern/frame sweeps); measurement the full spec.  The backend is
    # deliberately absent from the facet: object and vectorized runs
    # draw the same chip streams (paired comparisons) and are kept
    # apart by the backend-named cache below instead.
    return {
        "chip": ("array_scale", "chip", spec.chip_key()),
        "calibration": ("array_scale", "calibration", spec.chip_key()),
        "measure": ("array_scale", "measure", spec.content_hash()),
    }


def _build_array_scale_chips(spec: ArrayScaleSpec, backend: str, chip_rng, calibration_rng):
    """Either one VectorizedDnaChip batch or a list of object chips."""
    chip_specs = ChipSpecs(rows=spec.rows, cols=spec.cols)
    if backend == "vectorized":
        chip = VectorizedDnaChip(
            chip_specs, n_chips=spec.n_chips, rng=chip_rng, mismatch=spec.mismatch
        )
        if spec.calibrate:
            chip.auto_calibrate(frame_s=spec.calibration_frame_s, rng=calibration_rng)
        return chip
    from ..core.rng import ensure_rng, spawn_children

    generator = ensure_rng(chip_rng)
    chip_rngs = [generator] if spec.n_chips == 1 else spawn_children(generator, spec.n_chips)
    calibration = ensure_rng(calibration_rng)
    chips = []
    for rng in chip_rngs:
        chip = DnaMicroarrayChip(chip_specs, rng=rng)
        if spec.calibrate:
            chip.auto_calibrate(frame_s=spec.calibration_frame_s, rng=calibration)
        chips.append(chip)
    return chips


def array_scale_records_and_metrics(
    spec: ArrayScaleSpec,
    backend: str,
    counts: np.ndarray,
    dead: np.ndarray,
    counter_bits: int,
    cint_nominal: float,
    swing_nominal: float,
    currents: np.ndarray,
) -> tuple[dict, dict]:
    """Fold a ``(n_chips, rows, cols)`` count stack into the workload's
    records/metrics — shared by the Runner path and the batched
    campaign fast path."""
    full_scale = (1 << counter_bits) - 1
    flat = counts.reshape(spec.n_chips, -1)
    records = {
        "chip": np.arange(spec.n_chips, dtype=int),
        "mean_count": flat.mean(axis=1),
        "median_count": np.median(flat, axis=1),
        "min_count": flat.min(axis=1).astype(int),
        "max_count": flat.max(axis=1).astype(int),
        "zero_sites": (flat == 0).sum(axis=1).astype(int),
        "saturated_sites": (flat >= full_scale).sum(axis=1).astype(int),
        "dead_pixels": dead.astype(int),
    }
    ideal = kernels.ideal_frequency(currents, cint_nominal, swing_nominal) * spec.frame_s
    # Dead-time compression at the highest-current site (the top of the
    # logspan decade; the shared midpoint for pattern="uniform").
    top_site = int(np.argmax(currents.reshape(-1)))
    metrics = {
        "backend": backend,
        "rows": spec.rows,
        "cols": spec.cols,
        "n_chips": spec.n_chips,
        "sites_total": int(spec.n_chips * spec.rows * spec.cols),
        "mean_count": float(flat.mean()),
        "total_counts": int(flat.sum()),
        "zero_site_fraction": float((flat == 0).mean()),
        "top_site_compression": float(flat[:, top_site].mean() / ideal.reshape(-1)[top_site]),
    }
    return records, metrics


def _execute_array_scale(
    runner: "Runner", spec: ArrayScaleSpec, rngs: dict, inputs: dict
) -> ResultSet:
    # run() already resolved the spec's backend field vs its override.
    backend = runner.backend
    chips = inputs.get("chip")
    if chips is None:
        chips = runner._provision(
            f"array_scale_chip_{backend}",
            spec.chip_key(),
            lambda: _build_array_scale_chips(spec, backend, rngs["chip"], rngs["calibration"]),
            cacheable="chip" not in runner._overridden and "calibration" not in runner._overridden,
        )
    currents = spec.site_currents()
    if backend == "vectorized":
        counts = chips.measure_currents(currents, frame_s=spec.frame_s, rng=rngs["measure"])
        counts = counts.reshape(spec.n_chips, spec.rows, spec.cols)
        dead = chips.dead_pixel_map().reshape(spec.n_chips, -1).sum(axis=1)
        counter_bits = chips.specs.counter_bits
        cint_nominal = chips.params.cint_nominal_f
        swing_nominal = chips.params.swing_nominal_v
    else:
        measure_rng = rngs["measure"]
        counts = np.stack(
            [
                chip.measure_currents(currents, frame_s=spec.frame_s, rng=measure_rng)
                for chip in chips
            ]
        )
        dead = np.asarray([int(chip.dead_pixel_map().sum()) for chip in chips])
        counter_bits = chips[0].specs.counter_bits
        pixel = chips[0].pixels[0]
        cint_nominal = pixel.adc.cint.capacitance_f / (1.0 + pixel.variation.cint_relative_error)
        swing_nominal = pixel.adc.comparator.threshold_v

    records, metrics = array_scale_records_and_metrics(
        spec, backend, counts, dead, counter_bits, cint_nominal, swing_nominal, currents
    )
    return runner._result(
        spec,
        record_name="chip",
        records=records,
        metrics=metrics,
        artifacts={"chip": chips, "counts": counts, "currents": currents},
        trace=_chip_trace(chips[0] if isinstance(chips, list) else chips),
    )


register_workload("dna_assay", _dna_streams, _execute_dna, backends=("object", "vectorized"))
register_workload(
    "neural_recording", _neural_streams, _execute_neural, backends=("object", "vectorized")
)
register_workload("screening", _screening_streams, _execute_screening)
register_workload("adc_transfer", _adc_streams, _execute_adc)
register_workload(
    "array_scale", _array_scale_streams, _execute_array_scale, backends=("object", "vectorized")
)
