"""Back-compat shims for the pre-Runner imperative call sequences.

The seed era drove every workload by hand with numbered seeds::

    chip = DnaMicroarrayChip(rng=1)
    chip.configure_bias(0.45, -0.25)
    chip.auto_calibrate(rng=2)
    layout = ProbeLayout.random_panel(16, rng=3)
    counts = chip.measure_assay(MicroarrayAssay(layout).run(sample), rng=4)

These shims keep that calling convention alive — same arguments, same
numbers, bit for bit — while delegating the actual work to
:class:`~repro.experiments.runner.Runner` via its stream-override hook.
They emit :class:`DeprecationWarning`; new code should build a spec and
call the Runner directly.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from ..core.rng import RngLike
from .results import ResultSet
from .runner import Runner
from .specs import DnaAssaySpec, NeuralRecordingSpec


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_legacy_dna_assay(
    chip_rng: RngLike = 1,
    calibration_rng: RngLike = 2,
    layout_rng: RngLike = 3,
    measure_rng: RngLike = 4,
    *,
    probe_count: int = 16,
    probe_length: int = 20,
    replicates: int = 8,
    control_every: int = 0,
    subset: Optional[Sequence[int]] = (0, 1, 2, 3),
    concentration: float = 1e-5,
    target_length: int = 2000,
    frame_s: float = 1.0,
    calibration_frame_s: float = 0.05,
) -> ResultSet:
    """The classic quickstart assay with its four hand-numbered seeds.

    Reproduces ``DnaMicroarrayChip(rng=1) ... measure_assay(rng=4)``
    exactly; the count matrix is ``result.artifacts["counts"]``.
    """
    _deprecated("run_legacy_dna_assay", "repro.experiments.Runner.run(DnaAssaySpec(...))")
    spec = DnaAssaySpec(
        probe_count=probe_count,
        probe_length=probe_length,
        replicates=replicates,
        control_every=control_every,
        target_subset=tuple(subset) if subset is not None else None,
        concentration=concentration,
        target_length=target_length,
        frame_s=frame_s,
        calibration_frame_s=calibration_frame_s,
    )
    return Runner().run(
        spec,
        rng_overrides={
            "chip": chip_rng,
            "calibration": calibration_rng,
            "layout": layout_rng,
            "measure": measure_rng,
        },
    )


def run_legacy_neural_recording(
    chip_rng: RngLike = 1,
    culture_rng: RngLike = 2,
    record_rng: RngLike = 3,
    *,
    rows: int = 64,
    cols: int = 64,
    pitch_m: float = 7.8e-6,
    n_neurons: int = 5,
    diameter_range: tuple[float, float] = (25e-6, 80e-6),
    duration_s: float = 0.25,
    firing_rate_hz: float = 25.0,
    use_hh: bool = True,
) -> ResultSet:
    """The classic neural-recording flow with its three seeds.

    Reproduces ``NeuralRecordingChip(rng=1)``/``Culture.random(rng=2)``/
    ``record_culture(rng=3)`` exactly; the recording object is
    ``result.artifacts["recording"]``.
    """
    _deprecated(
        "run_legacy_neural_recording",
        "repro.experiments.Runner.run(NeuralRecordingSpec(...))",
    )
    spec = NeuralRecordingSpec(
        rows=rows,
        cols=cols,
        pitch_m=pitch_m,
        n_neurons=n_neurons,
        diameter_range_m=diameter_range,
        duration_s=duration_s,
        firing_rate_hz=firing_rate_hz,
        use_hh=use_hh,
    )
    return Runner().run(
        spec,
        rng_overrides={
            "chip": chip_rng,
            "culture": culture_rng,
            "record": record_rng,
        },
    )
