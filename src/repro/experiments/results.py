"""The uniform result container shared by every workload.

A :class:`ResultSet` is the one shape that comes back from the Runner
regardless of experiment kind: columnar per-record data (one record per
array site, neuron or funnel stage), scalar summary ``metrics``, and
full provenance (the spec dict, the seed streams that were consumed,
and the library version).  ``artifacts`` carries the rich in-memory
objects (chip, culture, funnel result, ...) for callers that want to
keep digging; it is deliberately excluded from serialization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np


@dataclass
class ResultSet:
    """Uniform experiment output: records + metrics + provenance."""

    kind: str
    spec: dict[str, Any]
    seeds: dict[str, Any]
    version: str
    record_name: str = "record"
    records: dict[str, np.ndarray] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    artifacts: dict[str, Any] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        lengths = {name: len(column) for name, column in self.records.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"record columns have unequal lengths: {lengths}")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        for column in self.records.values():
            return len(column)
        return 0

    def column(self, name: str) -> np.ndarray:
        try:
            return self.records[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {sorted(self.records)}"
            ) from None

    def select(self, mask: np.ndarray) -> dict[str, np.ndarray]:
        """Apply a boolean mask across every column."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_records,):
            raise ValueError("mask length must match record count")
        return {name: column[mask] for name, column in self.records.items()}

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_rows(self) -> list[dict[str, Any]]:
        """One plain-python dict per record — ready for csv.DictWriter,
        pandas, or a report table."""
        names = list(self.records)
        columns = [self.records[name] for name in names]
        return [
            {name: _as_python(column[i]) for name, column in zip(names, columns)}
            for i in range(self.n_records)
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "spec": self.spec,
            "seeds": self.seeds,
            "version": self.version,
            "record_name": self.record_name,
            "records": {
                name: [_as_python(value) for value in column]
                for name, column in self.records.items()
            },
            "metrics": {name: _as_python(value) for name, value in self.metrics.items()},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "ResultSet":
        data = json.loads(payload)
        return cls(
            kind=data["kind"],
            spec=data["spec"],
            seeds=data["seeds"],
            version=data["version"],
            record_name=data.get("record_name", "record"),
            records={name: np.asarray(column) for name, column in data["records"].items()},
            metrics=data.get("metrics", {}),
        )

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line human summary for logs and examples."""
        return (
            f"<ResultSet {self.kind}: {self.n_records} {self.record_name}s, "
            f"{len(self.metrics)} metrics>"
        )


def _as_python(value: Any) -> Any:
    """Strip numpy scalar types so json serialization round-trips."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_as_python(item) for item in value]
    return value
