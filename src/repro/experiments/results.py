"""The uniform result container shared by every workload.

A :class:`ResultSet` is the one shape that comes back from the Runner
regardless of experiment kind: columnar per-record data (one record per
array site, neuron or funnel stage), scalar summary ``metrics``, and
full provenance (the spec dict, the seed streams that were consumed,
and the library version).  ``artifacts`` carries the rich in-memory
objects (chip, culture, funnel result, ...) for callers that want to
keep digging; it is deliberately excluded from serialization.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np


@dataclass
class ResultSet:
    """Uniform experiment output: records + metrics + provenance."""

    kind: str
    spec: dict[str, Any]
    seeds: dict[str, Any]
    version: str
    record_name: str = "record"
    records: dict[str, np.ndarray] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    artifacts: dict[str, Any] = field(default_factory=dict, repr=False, compare=False)
    #: Optional digital-path capture (:class:`repro.trace.TraceTable`):
    #: attached when the producing chip carried a trace recorder.
    #: Serializes with the result (unlike artifacts) — the trace *is*
    #: provenance — but is excluded from equality like artifacts.
    trace: Optional[Any] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        lengths = {name: len(column) for name, column in self.records.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"record columns have unequal lengths: {lengths}")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        for column in self.records.values():
            return len(column)
        return 0

    def column(self, name: str) -> np.ndarray:
        try:
            return self.records[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {sorted(self.records)}"
            ) from None

    def select(self, mask: np.ndarray) -> dict[str, np.ndarray]:
        """Apply a boolean mask across every column."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_records,):
            raise ValueError("mask length must match record count")
        return {name: column[mask] for name, column in self.records.items()}

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_rows(self) -> list[dict[str, Any]]:
        """One plain-python dict per record — ready for csv.DictWriter,
        pandas, or a report table."""
        names = list(self.records)
        columns = [self.records[name] for name in names]
        return [
            {name: _as_python(column[i]) for name, column in zip(names, columns)}
            for i in range(self.n_records)
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "spec": self.spec,
            "seeds": self.seeds,
            "version": self.version,
            "record_name": self.record_name,
            "records": {
                name: [_as_python(value) for value in column]
                for name, column in self.records.items()
            },
            # Column dtypes travel with the data: a bare np.asarray on
            # load would flip int columns carrying floats-as-json back
            # to float64 and string columns to '<U..' instead of object.
            "dtypes": {name: _dtype_token(column) for name, column in self.records.items()},
            "metrics": {name: _as_python(value) for name, value in self.metrics.items()},
            # Traceless payloads stay byte-identical to pre-trace ones.
            **({"trace": self.trace.to_dict()} if self.trace is not None else {}),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ResultSet":
        """Rebuild from a ``to_dict()`` payload, restoring column dtypes.

        Payloads written before dtypes were recorded still load; their
        columns fall back to ``np.asarray`` inference.
        """
        dtypes = data.get("dtypes", {})
        trace = None
        if data.get("trace") is not None:
            from ..trace.table import TraceTable

            trace = TraceTable.from_dict(data["trace"])
        return cls(
            kind=data["kind"],
            spec=data["spec"],
            seeds=data["seeds"],
            version=data["version"],
            record_name=data.get("record_name", "record"),
            records={
                name: _restore_column(column, dtypes.get(name))
                for name, column in data["records"].items()
            },
            metrics=data.get("metrics", {}),
            trace=trace,
        )

    @classmethod
    def from_json(cls, payload: str) -> "ResultSet":
        return cls.from_dict(json.loads(payload))

    def without_artifacts(self) -> "ResultSet":
        """A copy that drops the rich in-memory objects — the shape that
        crosses process boundaries and lands in result stores.  Records
        and metrics are shared by reference, not copied."""
        return dataclasses.replace(self, artifacts={})

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    @classmethod
    def concat(
        cls, results: "Sequence[ResultSet]", *, point_column: Optional[str] = "point"
    ) -> "ResultSet":
        """Stack same-kind ResultSets into one columnar set.

        The idiom for folding a campaign back into a single table:
        every record column is concatenated in order, and
        ``point_column`` (unless ``None``) prepends the source index so
        rows stay attributable.  Metrics and artifacts do not concat
        meaningfully and are reduced to bookkeeping; use
        :func:`stack_metrics` to tabulate per-source metrics.
        """
        results = list(results)
        if not results:
            raise ValueError("cannot concat zero ResultSets")
        first = results[0]
        for other in results[1:]:
            if other.kind != first.kind:
                raise ValueError(f"cannot concat kinds {first.kind!r} and {other.kind!r}")
            if other.records.keys() != first.records.keys():
                raise ValueError("cannot concat ResultSets with different record columns")
        records: dict[str, np.ndarray] = {}
        if point_column is not None:
            if point_column in first.records:
                raise ValueError(f"point column {point_column!r} collides with a record column")
            records[point_column] = np.repeat(
                np.arange(len(results)), [r.n_records for r in results]
            )
        for name in first.records:
            records[name] = np.concatenate([r.records[name] for r in results])
        roots = []
        for r in results:
            root = r.seeds.get("root")
            if root not in roots:
                roots.append(root)
        return cls(
            kind=first.kind,
            spec={"kind": first.kind, "concat_of": len(results)},
            seeds={"roots": roots},
            version=first.version,
            record_name=first.record_name,
            records=records,
            metrics={"n_sources": len(results), "n_records": sum(r.n_records for r in results)},
        )

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line human summary for logs and examples."""
        return (
            f"<ResultSet {self.kind}: {self.n_records} {self.record_name}s, "
            f"{len(self.metrics)} metrics>"
        )


def stack_metrics(
    results: Sequence[ResultSet], names: Optional[Sequence[str]] = None
) -> dict[str, np.ndarray]:
    """Turn per-ResultSet scalar metrics into aligned arrays.

    ``names`` defaults to the metrics shared by *all* inputs (in the
    first result's order); asking for a metric any input lacks raises.
    The campaign report tables are built on this.
    """
    results = list(results)
    if not results:
        raise ValueError("cannot stack metrics of zero ResultSets")
    if names is None:
        names = [
            name
            for name in results[0].metrics
            if all(name in r.metrics for r in results[1:])
        ]
    else:
        for name in names:
            missing = [i for i, r in enumerate(results) if name not in r.metrics]
            if missing:
                raise KeyError(f"metric {name!r} missing from result(s) {missing}")
    return {name: np.asarray([r.metrics[name] for r in results]) for name in names}


def _as_python(value: Any) -> Any:
    """Strip numpy scalar types so json serialization round-trips."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_as_python(item) for item in value]
    return value


def _dtype_token(column: np.ndarray) -> str:
    """Portable dtype tag for serialization ('object' or np.dtype.str)."""
    column = np.asarray(column)
    return "object" if column.dtype == object else column.dtype.str


def _restore_column(column: list, token: Optional[str]) -> np.ndarray:
    if token is None:
        return np.asarray(column)
    if token == "object":
        restored = np.empty(len(column), dtype=object)
        restored[:] = column
        return restored
    return np.asarray(column, dtype=np.dtype(token))
