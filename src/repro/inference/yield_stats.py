"""Chip-level Monte-Carlo aggregation: yield, spread, dead pixels.

The Fig. 6 argument is a *population* statement — device mismatch
spreads every per-chip figure, and a process is judged by the fraction
of chips that still meet spec.  This module turns a pile of per-chip
measurements (campaign replicates, or the per-chip records of an
``array_scale`` batch) into that judgement: pass/fail yield with Wilson
score intervals, dead-pixel rates with binomial uncertainty, and the
spread statistics (CV, extremes) of any per-chip metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .bootstrap import normal_ppf

#: Pass/fail comparison operators accepted by :func:`apply_criterion`
#: (and the yield analysis spec's ``op`` field).
CRITERIA: dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    ">=": np.greater_equal,
    ">": np.greater,
    "<=": np.less_equal,
    "<": np.less,
}


def apply_criterion(values, op: str, threshold: float) -> np.ndarray:
    """Boolean pass mask for ``values <op> threshold``."""
    try:
        compare = CRITERIA[op]
    except KeyError:
        raise ValueError(f"unknown criterion {op!r}; choose from {sorted(CRITERIA)}") from None
    return np.asarray(compare(np.asarray(values, dtype=float), float(threshold)))


def wilson_interval(
    successes: int, n: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the edges (0 or n successes give one-sided
    intervals that never leave [0, 1]) — exactly the regime chip yield
    lives in, where small Monte-Carlo batches routinely pass or fail
    unanimously.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0 <= successes <= n:
        raise ValueError(f"successes must lie in [0, {n}], got {successes}")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly between 0 and 1")
    z = normal_ppf(0.5 + confidence / 2.0)
    p = successes / n
    denom = 1.0 + z * z / n
    center = (p + z * z / (2 * n)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
    # Unanimous outcomes are one-sided by construction; pin the closed
    # end exactly (center ± margin only reaches 0/1 up to rounding).
    low = 0.0 if successes == 0 else max(0.0, center - margin)
    high = 1.0 if successes == n else min(1.0, center + margin)
    return (low, high)


@dataclass(frozen=True)
class SpreadStats:
    """Distribution summary of a per-chip scalar."""

    n: int
    mean: float
    std: float
    cv: float  # std / |mean| (inf when mean == 0 and std > 0)
    minimum: float
    maximum: float
    median: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "cv": self.cv,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
        }


def spread(values) -> SpreadStats:
    values = np.asarray(values, dtype=float).ravel()
    if len(values) == 0:
        raise ValueError("cannot summarise an empty sample")
    mean = float(values.mean())
    std = float(values.std(ddof=1)) if len(values) > 1 else 0.0
    if mean != 0.0:
        cv = std / abs(mean)
    else:
        cv = 0.0 if std == 0.0 else float("inf")
    return SpreadStats(
        n=len(values),
        mean=mean,
        std=std,
        cv=cv,
        minimum=float(values.min()),
        maximum=float(values.max()),
        median=float(np.median(values)),
    )


@dataclass(frozen=True)
class YieldStats:
    """Pass/fail yield with its Wilson interval."""

    n: int
    passes: int
    fraction: float
    ci_low: float
    ci_high: float
    confidence: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "passes": self.passes,
            "fraction": self.fraction,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "confidence": self.confidence,
        }


def pass_fail_yield(passed, confidence: float = 0.95) -> YieldStats:
    """Yield of a boolean pass vector with Wilson uncertainty."""
    passed = np.asarray(passed, dtype=bool).ravel()
    if len(passed) == 0:
        raise ValueError("cannot compute yield of zero chips")
    n = len(passed)
    successes = int(passed.sum())
    low, high = wilson_interval(successes, n, confidence)
    return YieldStats(
        n=n,
        passes=successes,
        fraction=successes / n,
        ci_low=low,
        ci_high=high,
        confidence=float(confidence),
    )


@dataclass(frozen=True)
class DeadPixelStats:
    """Pooled and per-chip dead-pixel statistics."""

    n_chips: int
    total_sites: int
    total_dead: int
    rate: float
    ci_low: float
    ci_high: float
    per_chip: SpreadStats  # spread of per-chip dead fractions
    confidence: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n_chips": self.n_chips,
            "total_sites": self.total_sites,
            "total_dead": self.total_dead,
            "rate": self.rate,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "worst_chip": self.per_chip.maximum,
            "confidence": self.confidence,
        }


def dead_pixel_stats(
    dead_counts, sites_per_chip: int, confidence: float = 0.95
) -> DeadPixelStats:
    """Dead-pixel rate pooled over chips, Wilson interval on the pooled
    binomial, plus the chip-to-chip spread of the per-chip fractions."""
    dead = np.asarray(dead_counts, dtype=int).ravel()
    if len(dead) == 0:
        raise ValueError("need at least one chip")
    if sites_per_chip < 1:
        raise ValueError("sites_per_chip must be >= 1")
    if np.any(dead < 0) or np.any(dead > sites_per_chip):
        raise ValueError("dead counts must lie in [0, sites_per_chip]")
    total_sites = int(len(dead) * sites_per_chip)
    total_dead = int(dead.sum())
    low, high = wilson_interval(total_dead, total_sites, confidence)
    return DeadPixelStats(
        n_chips=len(dead),
        total_sites=total_sites,
        total_dead=total_dead,
        rate=total_dead / total_sites,
        ci_low=low,
        ci_high=high,
        per_chip=spread(dead / sites_per_chip),
        confidence=float(confidence),
    )
