"""Dose–response model fits and calibration-curve statistics.

The Fig. 4 concentration series is, statistically, a calibration curve:
response vs concentration, a model fit with parameter covariance, and
the derived quantities a sensor datasheet reports — limit of detection
(3σ-blank criterion), limit of quantification (10σ), and dynamic range.
Two models cover the paper's regimes:

* **log-linear** — ``response = a + b·log10(c)`` (or ``log10(response)``
  when ``log_y``, the power-law form the chip's count-vs-concentration
  curve follows below saturation).  Closed-form least squares with
  exact covariance — and therefore *vectorizable across bootstrap
  resamples* (see :func:`bootstrap_loglinear`).
* **Hill / Langmuir** — ``r = bottom + (top-bottom)·cⁿ/(Kⁿ+cⁿ)``,
  the saturating binding isotherm (Langmuir is ``n = 1``), fitted by a
  damped Gauss–Newton (Levenberg–Marquardt) loop in pure NumPy.

Everything here is deterministic given its inputs; the only random
element, the resampling in :func:`bootstrap_loglinear`, routes through
the same seeded generator scheme as :mod:`repro.inference.bootstrap`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.rng import SeedTree

LN10 = math.log(10.0)


# ---------------------------------------------------------------------------
# Log-linear model (closed form)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LogLinearFit:
    """``u = intercept + slope · log10(x)`` with ``u`` either the raw
    response or ``log10(response)`` (``log_y``)."""

    intercept: float
    slope: float
    log_y: bool
    intercept_se: float
    slope_se: float
    covariance: tuple[tuple[float, float], tuple[float, float]]
    r_squared: float
    rmse: float  # residual std (fit space), ddof = 2
    n_points: int

    def predict(self, x) -> np.ndarray:
        """Model response at concentration ``x`` (response space)."""
        x = np.asarray(x, dtype=float)
        u = self.intercept + self.slope * np.log10(x)
        return np.power(10.0, u) if self.log_y else u

    def invert(self, y) -> np.ndarray:
        """Concentration producing response ``y`` (NaN where the model
        cannot produce ``y``, e.g. non-positive ``y`` under ``log_y``)."""
        y = np.asarray(y, dtype=float)
        if self.log_y:
            u = np.where(y > 0, np.log10(np.where(y > 0, y, 1.0)), np.nan)
        else:
            u = y
        if self.slope == 0.0:
            return np.full_like(u, np.nan)
        return np.power(10.0, (u - self.intercept) / self.slope)

    def residuals(self, x, y) -> np.ndarray:
        """Fit-space residuals of ``(x, y)`` against the model."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        u = np.log10(y) if self.log_y else y
        return u - (self.intercept + self.slope * np.log10(x))


def loglinear_fit(x, y, *, log_y: bool = False) -> LogLinearFit:
    """Least-squares ``u = a + b·log10(x)`` with parameter covariance.

    ``x`` must be strictly positive (it is a concentration axis); under
    ``log_y`` so must ``y``.  Needs at least two distinct ``x`` values;
    standard errors need at least three points (they are 0.0 at exactly
    two, where the fit is an interpolation with no residual).
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if len(x) < 2:
        raise ValueError("need at least two points")
    if np.any(x <= 0):
        raise ValueError("concentrations must be strictly positive")
    if log_y and np.any(y <= 0):
        raise ValueError("log_y requires strictly positive responses")
    t = np.log10(x)
    u = np.log10(y) if log_y else y
    t_mean = t.mean()
    sxx = float(np.sum((t - t_mean) ** 2))
    if sxx == 0.0:
        raise ValueError("need at least two distinct x values")
    slope = float(np.sum((t - t_mean) * (u - u.mean())) / sxx)
    intercept = float(u.mean() - slope * t_mean)
    residuals = u - (intercept + slope * t)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((u - u.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    dof = len(x) - 2
    sigma2 = ss_res / dof if dof > 0 else 0.0
    var_slope = sigma2 / sxx
    var_intercept = sigma2 * (1.0 / len(x) + t_mean**2 / sxx)
    cov_ab = -sigma2 * t_mean / sxx
    return LogLinearFit(
        intercept=intercept,
        slope=slope,
        log_y=log_y,
        intercept_se=math.sqrt(var_intercept),
        slope_se=math.sqrt(var_slope),
        covariance=((var_intercept, cov_ab), (cov_ab, var_slope)),
        r_squared=r_squared,
        rmse=math.sqrt(sigma2),
        n_points=len(x),
    )


# ---------------------------------------------------------------------------
# Hill / Langmuir model (Levenberg–Marquardt)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HillFit:
    """``r = bottom + (top-bottom) · xⁿ / (Kⁿ + xⁿ)`` (``K`` = EC50)."""

    bottom: float
    top: float
    ec50: float
    hill_n: float
    param_se: tuple[float, float, float, float]  # (bottom, top, ec50, n)
    r_squared: float
    rmse: float
    n_points: int
    converged: bool
    n_iter: int

    def predict(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        s = np.power(self.ec50 / x, self.hill_n)
        return self.bottom + (self.top - self.bottom) / (1.0 + s)

    def invert(self, y) -> np.ndarray:
        """Concentration at response ``y`` (NaN outside (bottom, top))."""
        y = np.asarray(y, dtype=float)
        span_ok = (y > min(self.bottom, self.top)) & (y < max(self.bottom, self.top))
        frac = np.where(span_ok, (y - self.bottom) / (self.top - y), np.nan)
        return self.ec50 * np.power(frac, 1.0 / self.hill_n)

    @property
    def span(self) -> float:
        return self.top - self.bottom


def _hill_model_and_jacobian(theta: np.ndarray, x: np.ndarray):
    bottom, top, log_k, n = theta
    s = np.power(10.0**log_k / x, n)  # (K/x)^n
    inv = 1.0 / (1.0 + s)
    f = bottom + (top - bottom) * inv
    span = top - bottom
    d_bottom = s * inv
    d_top = inv
    d_logk = -span * n * s * LN10 * inv**2
    with np.errstate(divide="ignore", invalid="ignore"):
        log_ratio = np.log(10.0**log_k / x)
    d_n = -span * s * log_ratio * inv**2
    return f, np.column_stack([d_bottom, d_top, d_logk, d_n])


def hill_fit(
    x,
    y,
    *,
    fix_hill_n: Optional[float] = None,
    max_iter: int = 200,
    tol: float = 1e-10,
) -> HillFit:
    """Fit the Hill equation by Levenberg–Marquardt (pure NumPy).

    ``fix_hill_n=1.0`` pins the cooperativity to the Langmuir isotherm.
    Initialisation is data-driven (bottom/top from the response range,
    EC50 from the geometric mid of the concentration span); covariance
    is the usual ``σ² (JᵀJ)⁻¹`` at the optimum.
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if np.any(x <= 0):
        raise ValueError("concentrations must be strictly positive")
    free = [0, 1, 2] if fix_hill_n is not None else [0, 1, 2, 3]
    if len(x) < len(free) + 1:
        raise ValueError(f"need at least {len(free) + 1} points for a Hill fit")
    y_lo, y_hi = float(y.min()), float(y.max())
    if y_hi == y_lo:
        raise ValueError("responses are constant; nothing to fit")
    theta = np.array(
        [
            y_lo,
            y_hi,
            0.5 * (np.log10(x.min()) + np.log10(x.max())),
            1.0 if fix_hill_n is None else float(fix_hill_n),
        ]
    )
    f, jac = _hill_model_and_jacobian(theta, x)
    ssr = float(np.sum((y - f) ** 2))
    lam = 1e-3
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        residual = y - f
        j_free = jac[:, free]
        jtj = j_free.T @ j_free
        jtr = j_free.T @ residual
        try:
            step = np.linalg.solve(jtj + lam * np.diag(np.diag(jtj)) + 1e-300 * np.eye(len(free)), jtr)
        except np.linalg.LinAlgError:
            lam *= 10.0
            continue
        trial = theta.copy()
        trial[free] += step
        # Keep the exponent physical; reject absurd EC50 excursions.
        trial[3] = float(np.clip(trial[3], 0.05, 10.0))
        f_trial, jac_trial = _hill_model_and_jacobian(trial, x)
        ssr_trial = float(np.sum((y - f_trial) ** 2))
        if np.isfinite(ssr_trial) and ssr_trial <= ssr:
            improvement = ssr - ssr_trial
            theta, f, jac, ssr = trial, f_trial, jac_trial, ssr_trial
            lam = max(lam / 3.0, 1e-12)
            if improvement <= tol * (ssr + tol):
                converged = True
                break
        else:
            lam *= 5.0
            if lam > 1e12:
                break
    dof = len(x) - len(free)
    sigma2 = ssr / dof if dof > 0 else 0.0
    j_free = jac[:, free]
    try:
        cov_free = sigma2 * np.linalg.inv(j_free.T @ j_free)
        se = np.sqrt(np.clip(np.diag(cov_free), 0.0, None))
    except np.linalg.LinAlgError:
        se = np.full(len(free), np.nan)
    se_full = np.zeros(4)
    se_full[free] = se
    bottom, top, log_k, n = theta
    ec50 = float(10.0**log_k)
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    return HillFit(
        bottom=float(bottom),
        top=float(top),
        ec50=ec50,
        hill_n=float(n),
        param_se=(
            float(se_full[0]),
            float(se_full[1]),
            float(ec50 * LN10 * se_full[2]),  # log10-K SE mapped to K
            float(se_full[3]),
        ),
        r_squared=1.0 - ssr / ss_tot if ss_tot > 0 else 1.0,
        rmse=math.sqrt(sigma2),
        n_points=len(x),
        converged=converged,
        n_iter=iteration,
    )


# ---------------------------------------------------------------------------
# The full dose–response analysis
# ---------------------------------------------------------------------------
MODELS = ("loglinear", "loglog", "hill", "langmuir")


@dataclass(frozen=True)
class DoseResponse:
    """A fitted calibration curve plus its detection figures of merit."""

    model: str
    fit: Union[LogLinearFit, HillFit]
    blank_mean: float
    blank_sigma: float
    blank_n: int
    blank_source: str  # "blank" | "zero-concentration" | "fit-residual"
    lod_sigma: float
    loq_sigma: float
    lod: float
    loq: float
    range_low: float
    range_high: float
    dynamic_range_decades: float

    @property
    def increasing(self) -> bool:
        if isinstance(self.fit, LogLinearFit):
            return self.fit.slope > 0
        return self.fit.top > self.fit.bottom


def _critical_concentration(fit, blank_mean: float, delta: float) -> float:
    """Concentration whose model response sits ``delta`` above (below,
    for falling curves) the blank — NaN when the model never gets
    there."""
    if isinstance(fit, LogLinearFit):
        direction = 1.0 if fit.slope > 0 else -1.0
    else:
        direction = 1.0 if fit.top > fit.bottom else -1.0
    value = float(np.asarray(fit.invert(blank_mean + direction * delta)).item())
    return value if math.isfinite(value) and value > 0 else float("nan")


def analyze_dose_response(
    concentrations,
    responses,
    *,
    model: str = "loglinear",
    blank_responses=None,
    lod_sigma: float = 3.0,
    loq_sigma: float = 10.0,
) -> DoseResponse:
    """Fit a dose–response model and derive LoD / LoQ / dynamic range.

    Zero-concentration points are excluded from the fit and — when no
    explicit ``blank_responses`` are given — serve as the blank pool for
    the 3σ criterion.  With neither blanks nor zero-dose points, the
    blank level falls back to the model response at the lowest measured
    dose with the fit-space RMSE as its σ (flagged ``"fit-residual"``).
    """
    x = np.asarray(concentrations, dtype=float).ravel()
    y = np.asarray(responses, dtype=float).ravel()
    if x.shape != y.shape:
        raise ValueError("concentrations and responses must have equal length")
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}; choose from {MODELS}")
    if lod_sigma <= 0 or loq_sigma < lod_sigma:
        raise ValueError("need 0 < lod_sigma <= loq_sigma")
    positive = x > 0
    x_fit, y_fit = x[positive], y[positive]
    if len(x_fit) < 2:
        raise ValueError("need at least two positive-concentration points")

    if model in ("hill", "langmuir"):
        fit: Union[LogLinearFit, HillFit] = hill_fit(
            x_fit, y_fit, fix_hill_n=1.0 if model == "langmuir" else None
        )
    else:
        fit = loglinear_fit(x_fit, y_fit, log_y=(model == "loglog"))

    if blank_responses is not None:
        blanks = np.asarray(blank_responses, dtype=float).ravel()
        source = "blank"
    elif np.any(~positive):
        blanks = y[~positive]
        source = "zero-concentration"
    else:
        blanks = np.asarray([])
        source = "fit-residual"
    if source == "fit-residual" or len(blanks) < 2:
        # Model response at the lowest dose, σ from the fit residuals
        # mapped back to response space at that point.
        low_response = float(np.asarray(fit.predict(x_fit.min())).item())
        if isinstance(fit, LogLinearFit) and fit.log_y:
            sigma = low_response * (10.0**fit.rmse - 1.0)
        else:
            sigma = fit.rmse
        if len(blanks) >= 1:
            blank_mean = float(blanks.mean())
            blank_n = len(blanks)
        else:
            blank_mean, blank_n = low_response, 0
            source = "fit-residual"
        blank_sigma = float(sigma)
    else:
        blank_mean = float(blanks.mean())
        blank_sigma = float(blanks.std(ddof=1))
        blank_n = len(blanks)

    lod = _critical_concentration(fit, blank_mean, lod_sigma * blank_sigma)
    loq = _critical_concentration(fit, blank_mean, loq_sigma * blank_sigma)
    range_low = loq if math.isfinite(loq) else lod
    if not math.isfinite(range_low):
        range_low = float(x_fit.min())
    range_low = max(range_low, 0.0)
    if isinstance(fit, HillFit):
        # Saturation end: 90% of the fitted span.
        range_high = float(
            np.asarray(fit.invert(fit.bottom + 0.9 * (fit.top - fit.bottom))).item()
        )
        if not math.isfinite(range_high):
            range_high = float(x_fit.max())
    else:
        range_high = float(x_fit.max())
    decades = (
        math.log10(range_high / range_low)
        if range_low > 0 and range_high > range_low
        else 0.0
    )
    return DoseResponse(
        model=model,
        fit=fit,
        blank_mean=blank_mean,
        blank_sigma=blank_sigma,
        blank_n=blank_n,
        blank_source=source,
        lod_sigma=float(lod_sigma),
        loq_sigma=float(loq_sigma),
        lod=lod,
        loq=loq,
        range_low=range_low,
        range_high=range_high,
        dynamic_range_decades=decades,
    )


# ---------------------------------------------------------------------------
# Vectorized pairs bootstrap (log-linear models only — closed form)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LoglinearBootstrap:
    """Percentile CIs from a vectorized pairs bootstrap of the fit."""

    slope: tuple[float, float]
    intercept: tuple[float, float]
    lod: tuple[float, float]
    n_valid: int  # resamples with a well-posed fit and reachable LoD
    n_resamples: int
    confidence: float
    seed: int


def bootstrap_loglinear(
    concentrations,
    responses,
    *,
    log_y: bool = False,
    blank_responses=None,
    lod_sigma: float = 3.0,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
    label: tuple = (),
) -> LoglinearBootstrap:
    """Pairs-bootstrap the log-linear calibration — slope, intercept and
    LoD intervals — with every resample's fit computed in closed form
    across the whole ``(B, n)`` block at once.

    ``(x, y)`` pairs are resampled jointly; blanks are resampled
    independently, so the LoD distribution carries both the curve
    uncertainty and the blank-level uncertainty.  The blank pool
    mirrors :func:`analyze_dose_response` exactly: explicit
    ``blank_responses`` first, else zero-concentration points, else the
    per-resample fit-residual σ — so the CI always brackets the same
    LoD definition the point estimate used.  Degenerate resamples (a
    single distinct dose, an unreachable critical level) are dropped
    from the quantiles and counted out of ``n_valid``.
    """
    x = np.asarray(concentrations, dtype=float).ravel()
    y = np.asarray(responses, dtype=float).ravel()
    keep = x > 0
    if blank_responses is None and np.any(~keep):
        blank_responses = y[~keep]
    x, y = x[keep], y[keep]
    n = len(x)
    if n < 2:
        raise ValueError("need at least two positive-concentration points")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly between 0 and 1")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    t = np.log10(x)
    u = np.log10(y) if log_y else y
    rng = SeedTree(int(seed)).generator(
        "inference", "doseresponse", "pairs-bootstrap", n, int(n_resamples), *label
    )
    idx = rng.integers(0, n, size=(int(n_resamples), n))
    tb, ub = t[idx], u[idx]
    t_mean = tb.mean(axis=1, keepdims=True)
    u_mean = ub.mean(axis=1, keepdims=True)
    sxx = np.sum((tb - t_mean) ** 2, axis=1)
    sxy = np.sum((tb - t_mean) * (ub - u_mean), axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        slope = np.where(sxx > 0, sxy / np.where(sxx > 0, sxx, 1.0), np.nan)
    intercept = u_mean.ravel() - slope * t_mean.ravel()

    blanks = (
        np.asarray(blank_responses, dtype=float).ravel()
        if blank_responses is not None
        else np.asarray([])
    )
    if len(blanks) >= 2:
        bidx = rng.integers(0, len(blanks), size=(int(n_resamples), len(blanks)))
        bb = blanks[bidx]
        blank_mean = bb.mean(axis=1)
        blank_sigma = bb.std(axis=1, ddof=1)
    else:
        # Residual-σ fallback, recomputed per resample — the same split
        # analyze_dose_response makes: a single blank still anchors the
        # level, only its σ comes from the fit residuals.
        dof = max(n - 2, 1)
        resid = ub - (intercept[:, None] + slope[:, None] * tb)
        rmse = np.sqrt(np.sum(resid**2, axis=1) / dof)
        low_u = intercept + slope * t.min()
        if log_y:
            low_response = 10.0**low_u
            blank_mean = low_response
            blank_sigma = low_response * (10.0**rmse - 1.0)
        else:
            blank_mean = low_u
            blank_sigma = rmse
        if len(blanks) == 1:
            blank_mean = np.full(int(n_resamples), blanks.mean())

    direction = np.where(slope > 0, 1.0, -1.0)
    y_crit = blank_mean + direction * lod_sigma * blank_sigma
    if log_y:
        with np.errstate(divide="ignore", invalid="ignore"):
            u_crit = np.where(y_crit > 0, np.log10(np.where(y_crit > 0, y_crit, 1.0)), np.nan)
    else:
        u_crit = y_crit
    with np.errstate(divide="ignore", invalid="ignore"):
        lod = np.power(10.0, (u_crit - intercept) / slope)
    lod = np.where(np.isfinite(lod) & (lod > 0), lod, np.nan)

    alpha = 1.0 - confidence
    quantiles = (alpha / 2.0, 1.0 - alpha / 2.0)

    def _ci(values: np.ndarray) -> tuple[float, float]:
        finite = values[np.isfinite(values)]
        if len(finite) == 0:
            return (float("nan"), float("nan"))
        lo, hi = np.quantile(finite, quantiles)
        return (float(lo), float(hi))

    return LoglinearBootstrap(
        slope=_ci(slope),
        intercept=_ci(intercept),
        lod=_ci(lod),
        n_valid=int(np.isfinite(lod).sum()),
        n_resamples=int(n_resamples),
        confidence=float(confidence),
        seed=int(seed),
    )
