"""The uniform analysis report: scalars + tables, JSON/markdown/text.

Every analysis returns one :class:`AnalysisReport` — the analysis spec
that produced it, a provenance block about the source campaign, a flat
``scalars`` mapping (the headline numbers), and ordered tables.  The
three renderings serve the three consumers: ``to_dict``/``to_json`` for
machines (deterministic: sorted keys, floats via repr, NaN/inf mapped
to null so the payload is strict JSON), ``to_markdown`` for docs and
PRs, ``to_text`` for the terminal (via :mod:`repro.core.tables`, so
``repro analyze`` output matches the rest of the CLI).

Reports deliberately carry **no wall-clock or executor fields**: a
report is a pure function of the stored campaign data and the analysis
spec, so the same campaign analysed twice — or run serial vs process,
stored in memory vs JSONL — yields byte-identical JSON.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.tables import format_cell, render_kv, render_table


def _json_safe(value: Any) -> Any:
    """Plain-python, strict-JSON-serializable copy of ``value``."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, np.ndarray):
        return [_json_safe(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return value


def _md_cell(value: Any) -> str:
    text = format_cell(value) if not isinstance(value, str) else value
    return text.replace("|", "\\|")


@dataclass
class ReportTable:
    """One titled table of an analysis report."""

    title: str
    headers: list[str]
    rows: list[list[Any]]

    def to_dict(self) -> dict[str, Any]:
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [_json_safe(row) for row in self.rows],
        }

    def to_text(self) -> str:
        if not self.rows:
            return f"{self.title}\n(no rows)"
        return render_table(self.headers, self.rows, title=self.title)

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("| " + " | ".join("---" for _ in self.headers) + " |")
        for row in self.rows:
            lines.append("| " + " | ".join(_md_cell(cell) for cell in row) + " |")
        return "\n".join(lines)


@dataclass
class AnalysisReport:
    """What every analysis spec's ``run`` hands back."""

    kind: str
    analysis: dict[str, Any]  # the spec's to_dict()
    source: dict[str, Any]  # campaign provenance (no wall times)
    scalars: dict[str, Any] = field(default_factory=dict)
    tables: list[ReportTable] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Preformatted monospace diagrams (e.g. ASCII wafer maps), each
    #: ``{"title": str, "lines": [str, ...]}``.  Rendered verbatim.
    diagrams: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        data = {
            "schema": "repro-analysis/1",
            "kind": self.kind,
            "analysis": _json_safe(self.analysis),
            "source": _json_safe(self.source),
            "scalars": _json_safe(self.scalars),
            "tables": [table.to_dict() for table in self.tables],
            "notes": list(self.notes),
        }
        # Only when present, so analyses without diagrams keep their
        # exact pre-existing JSON bytes.
        if self.diagrams:
            data["diagrams"] = [
                {"title": str(d.get("title", "")), "lines": [str(line) for line in d["lines"]]}
                for d in self.diagrams
            ]
        return data

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, allow_nan=False)

    def to_text(self) -> str:
        blocks = [render_kv(f"analysis: {self.kind}", sorted(self.source.items()))]
        if self.scalars:
            blocks.append(render_kv("results", list(self.scalars.items())))
        for table in self.tables:
            blocks.append(table.to_text())
        for diagram in self.diagrams:
            title = diagram.get("title", "")
            body = "\n".join(diagram["lines"])
            blocks.append(f"{title}\n{body}" if title else body)
        for note in self.notes:
            blocks.append(f"note: {note}")
        return "\n\n".join(blocks)

    def to_markdown(self) -> str:
        lines = [f"## Analysis: {self.kind}", ""]
        if self.source:
            for key in sorted(self.source):
                lines.append(f"- **{key}**: {_md_cell(self.source[key])}")
            lines.append("")
        if self.scalars:
            lines.append("### Results")
            lines.append("")
            lines.append("| quantity | value |")
            lines.append("| --- | --- |")
            for key, value in self.scalars.items():
                lines.append(f"| {key} | {_md_cell(value)} |")
            lines.append("")
        for table in self.tables:
            lines.append(table.to_markdown())
            lines.append("")
        for diagram in self.diagrams:
            title = diagram.get("title", "")
            if title:
                lines.append(f"### {title}")
                lines.append("")
            lines.append("```")
            lines.extend(str(line) for line in diagram["lines"])
            lines.append("```")
            lines.append("")
        for note in self.notes:
            lines.append(f"> {note}")
        return "\n".join(lines).rstrip() + "\n"

    def summary(self) -> str:
        return (
            f"<AnalysisReport {self.kind}: {len(self.scalars)} scalars, "
            f"{len(self.tables)} tables>"
        )
