"""Seeded, vectorized bootstrap resampling.

Confidence intervals for any scalar statistic of a sample, computed by
NumPy-vectorized resampling: one ``(n_resamples, n)`` index draw, one
axis-aware statistic evaluation, no Python-level loop over resamples.
Seeding routes through :class:`~repro.core.rng.SeedTree`, so a
bootstrap is a pure function of ``(seed, label, data)`` — bit-identical
on repeat, across processes, and regardless of how the campaign that
produced the data was executed.

The ``engine="loop"`` path draws the *same* index stream one resample
at a time (a ``(B, n)`` integer draw consumes the generator exactly as
``B`` successive ``n``-draws do), so the two engines are bit-identical
— the property the ``benchmarks/bench_inference.py`` speedup claim and
the parity tests both rest on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from ..core.rng import SeedTree

#: Named statistics resolvable by string.  Each maps to an axis-aware
#: NumPy reduction, so a whole ``(B, n)`` resample block collapses in
#: one call.  ``std`` is the sample standard deviation (ddof=1).
STATISTICS: dict[str, Callable] = {
    "mean": np.mean,
    "median": np.median,
    "std": lambda a, axis=None: np.std(a, axis=axis, ddof=1),
    "min": np.min,
    "max": np.max,
    "sum": np.sum,
}

Statistic = Union[str, Callable]

#: Resample blocks are chunked so the index matrix never exceeds this
#: many elements — memory stays bounded for large samples without
#: changing the drawn stream (chunking splits rows, and row-blocked
#: draws consume the generator identically to one big draw).
MAX_BLOCK_ELEMENTS = 4_000_000

ENGINES = ("vectorized", "loop")


def _resolve_statistic(statistic: Statistic) -> tuple[str, Callable]:
    if callable(statistic):
        return getattr(statistic, "__name__", "callable"), statistic
    try:
        return statistic, STATISTICS[statistic]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown statistic {statistic!r}; choose from {sorted(STATISTICS)} "
            f"or pass an axis-aware callable"
        ) from None


def bootstrap_generator(
    seed: int, *label: object, n: int, n_resamples: int, statistic: str
) -> np.random.Generator:
    """The one seed-tree path every bootstrap draw comes from.

    Keyed by (statistic, sample size, resample count, caller label) so
    distinct analyses in one report draw independent streams while the
    same analysis re-run anywhere replays the same bits.
    """
    return SeedTree(int(seed)).generator(
        "inference", "bootstrap", statistic, int(n), int(n_resamples), *label
    )


def resample_statistics(
    values: np.ndarray,
    statistic: Statistic = "mean",
    *,
    n_resamples: int = 2000,
    seed: int = 0,
    label: tuple = (),
    engine: str = "vectorized",
) -> np.ndarray:
    """The bootstrap distribution: ``statistic`` over ``n_resamples``
    with-replacement resamples of ``values``.

    ``engine="loop"`` is the deliberately naive per-resample Python loop
    kept as the benchmark baseline; it draws the identical index stream
    and returns bit-identical output.
    """
    values = np.asarray(values, dtype=float).ravel()
    n = len(values)
    if n == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    name, fn = _resolve_statistic(statistic)
    rng = bootstrap_generator(seed, *label, n=n, n_resamples=n_resamples, statistic=name)
    if engine == "loop":
        out = np.empty(n_resamples)
        for b in range(n_resamples):
            indices = rng.integers(0, n, size=n)
            try:
                out[b] = fn(values[indices], axis=None)
            except TypeError:
                # Same axis-free-callable fallback as the vectorized
                # path — the engines must accept identical statistics.
                out[b] = fn(values[indices])
        return out
    block_rows = max(1, MAX_BLOCK_ELEMENTS // n)
    stats: list[np.ndarray] = []
    for start in range(0, n_resamples, block_rows):
        rows = min(block_rows, n_resamples - start)
        indices = rng.integers(0, n, size=(rows, n))
        try:
            block = np.asarray(fn(values[indices], axis=1), dtype=float)
        except TypeError:
            # Callable without an axis parameter: apply row-wise on the
            # same index block (still one draw, still deterministic).
            block = np.asarray([fn(row) for row in values[indices]], dtype=float)
        if block.shape != (rows,):
            raise ValueError(
                f"statistic must reduce each resample to a scalar; got shape "
                f"{block.shape} for a {rows}-row block"
            )
        stats.append(block)
    return np.concatenate(stats)


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with its percentile bootstrap interval."""

    estimate: float
    low: float
    high: float
    se: float
    confidence: float
    n_resamples: int
    statistic: str
    n: int
    seed: int

    @property
    def half_width(self) -> float:
        return 0.5 * (self.high - self.low)

    def as_dict(self) -> dict[str, float]:
        return {
            "estimate": self.estimate,
            "low": self.low,
            "high": self.high,
            "se": self.se,
            "confidence": self.confidence,
        }


def bootstrap_ci(
    values: np.ndarray,
    statistic: Statistic = "mean",
    *,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
    label: tuple = (),
    engine: str = "vectorized",
) -> BootstrapCI:
    """Percentile bootstrap confidence interval for any scalar metric."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly between 0 and 1")
    values = np.asarray(values, dtype=float).ravel()
    name, fn = _resolve_statistic(statistic)
    distribution = resample_statistics(
        values, statistic, n_resamples=n_resamples, seed=seed, label=label, engine=engine
    )
    try:
        estimate = float(fn(values, axis=None))
    except TypeError:
        estimate = float(fn(values))
    alpha = 1.0 - confidence
    low, high = np.quantile(distribution, [alpha / 2.0, 1.0 - alpha / 2.0])
    se = float(distribution.std(ddof=1)) if len(distribution) > 1 else 0.0
    return BootstrapCI(
        estimate=estimate,
        low=float(low),
        high=float(high),
        se=se,
        confidence=float(confidence),
        n_resamples=int(n_resamples),
        statistic=name,
        n=len(values),
        seed=int(seed),
    )


def normal_ppf(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation,
    |relative error| < 1.2e-9 — plenty for interval z-scores, and it
    keeps the library SciPy-free)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must lie strictly between 0 and 1")
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )
