"""Statistical inference over campaign results.

The layer between :mod:`repro.campaigns` and a scientific answer: the
paper's headline results are statistical claims (a calibration curve
with a limit of detection, a match/mismatch separation, a chip-yield
distribution), and this package computes them — with uncertainty — from
any stored campaign::

    from repro.inference import analyze

    report = analyze("fig4-campaign/")          # a JSONL campaign dir
    print(report.to_text())                     # or .to_markdown() / .to_json()
    print(report.scalars["lod"])                # 3σ-blank limit of detection

Sub-modules, usable standalone:

* :mod:`~repro.inference.bootstrap` — seeded, vectorized resampling:
  CIs for any scalar statistic, bit-reproducible anywhere;
* :mod:`~repro.inference.doseresponse` — log-linear and Hill/Langmuir
  dose–response fits with covariance, LoD/LoQ/dynamic range;
* :mod:`~repro.inference.detection` — ROC/AUC hybridization calling
  and threshold selection at a target false-positive rate;
* :mod:`~repro.inference.yield_stats` — pass/fail yield with Wilson
  intervals, dead-pixel rates, per-chip spread;
* :mod:`~repro.inference.wafermap` — ASCII wafer maps for die-binning
  results (``wafer_yield`` reports render them into ``repro report``);
* :mod:`~repro.inference.tabulate` — columnar access to stores (the
  campaign report tables are built on it);
* :mod:`~repro.inference.specs` — the ``AnalysisSpec`` registry that
  makes analyses declarative and CLI-addressable, mirroring
  :mod:`repro.experiments.specs`.
"""

from .bootstrap import (
    STATISTICS,
    BootstrapCI,
    bootstrap_ci,
    normal_ppf,
    resample_statistics,
)
from .detection import (
    OperatingPoint,
    RocCurve,
    SeparationStats,
    auc_score,
    bootstrap_auc,
    match_mismatch_scores,
    operating_point,
    roc_curve,
    separation_stats,
)
from .doseresponse import (
    MODELS,
    DoseResponse,
    HillFit,
    LogLinearFit,
    LoglinearBootstrap,
    analyze_dose_response,
    bootstrap_loglinear,
    hill_fit,
    loglinear_fit,
)
from .report import AnalysisReport, ReportTable
from .specs import (
    AnalysisSpec,
    DetectionAnalysis,
    DoseResponseAnalysis,
    FaultToleranceAnalysis,
    WaferYieldAnalysis,
    YieldAnalysis,
    analysis_from_dict,
    analysis_kinds,
    analysis_type,
    analyze,
    default_analysis_for,
    register_analysis,
)
from .tabulate import CampaignFrame, report_rows
from .wafermap import render_wafer_map, wafer_map_diagram
from .yield_stats import (
    CRITERIA,
    DeadPixelStats,
    SpreadStats,
    YieldStats,
    apply_criterion,
    dead_pixel_stats,
    pass_fail_yield,
    spread,
    wilson_interval,
)

__all__ = [
    "CRITERIA",
    "MODELS",
    "STATISTICS",
    "AnalysisReport",
    "AnalysisSpec",
    "BootstrapCI",
    "CampaignFrame",
    "DeadPixelStats",
    "DetectionAnalysis",
    "DoseResponse",
    "DoseResponseAnalysis",
    "FaultToleranceAnalysis",
    "HillFit",
    "LogLinearFit",
    "LoglinearBootstrap",
    "OperatingPoint",
    "ReportTable",
    "RocCurve",
    "SeparationStats",
    "SpreadStats",
    "WaferYieldAnalysis",
    "YieldAnalysis",
    "YieldStats",
    "analysis_from_dict",
    "analysis_kinds",
    "analysis_type",
    "analyze",
    "analyze_dose_response",
    "apply_criterion",
    "auc_score",
    "bootstrap_auc",
    "bootstrap_ci",
    "bootstrap_loglinear",
    "dead_pixel_stats",
    "default_analysis_for",
    "hill_fit",
    "loglinear_fit",
    "match_mismatch_scores",
    "normal_ppf",
    "operating_point",
    "pass_fail_yield",
    "register_analysis",
    "render_wafer_map",
    "report_rows",
    "resample_statistics",
    "roc_curve",
    "separation_stats",
    "spread",
    "wafer_map_diagram",
    "wilson_interval",
]
