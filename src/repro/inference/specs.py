"""Declarative analysis specifications — registered alongside experiments.

An :class:`AnalysisSpec` is to a stored campaign what an
:class:`~repro.experiments.specs.ExperimentSpec` is to a Runner: a
frozen, serializable description of *what to compute*, with the same
``kind`` registry / ``to_dict`` / ``from_dict`` machinery, so analyses
travel as JSON through the CLI exactly like experiment specs do.  Three
kinds ship:

* ``dose_response`` — calibration-curve fit over a concentration axis
  with LoD / LoQ / dynamic range and bootstrap CIs (Fig. 4);
* ``detection`` — per-spot hybridization calling: match/mismatch
  separation, ROC/AUC, threshold at a target false-positive rate
  (Fig. 2's discrimination claim, made operational);
* ``yield`` — chip-level Monte-Carlo aggregation: pass/fail yield with
  Wilson intervals, metric spread, dead-pixel rates (Fig. 6);
* ``wafer_yield`` — die binning over stored wafer campaigns: ASCII
  wafer maps, per-wafer yield with Wilson intervals, cross-wafer yield
  with a seeded bootstrap CI;
* ``fault_tolerance`` — resilience accounting over fault-injection
  campaigns: detection vs silent-corruption rates, frame recovery
  yield and site survival with Wilson intervals, bootstrap CIs along
  ``faults.*`` sweep axes.

``analyze(source, analysis)`` is the front door: it accepts a
:class:`~repro.campaigns.store.CampaignResult`, any ResultStore, or a
campaign directory path, resolves the analysis (explicitly, or by
inspecting the campaign via :func:`default_analysis_for`), and returns
an :class:`~repro.inference.report.AnalysisReport`.  Reports are pure
functions of (stored data, analysis spec) — bit-identical across
repeated runs, executors and store backends.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, ClassVar, Optional

import numpy as np

from . import detection as _detection
from . import doseresponse as _doseresponse
from . import yield_stats as _yield
from .bootstrap import bootstrap_ci
from .report import AnalysisReport, ReportTable
from .tabulate import CampaignFrame

# ---------------------------------------------------------------------------
# Registry (mirrors repro.experiments.specs)
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, type["AnalysisSpec"]] = {}


def register_analysis(kind: str) -> Callable[[type], type]:
    """Class decorator: register an analysis spec class under ``kind``."""

    def decorate(cls: type) -> type:
        if not issubclass(cls, AnalysisSpec):
            raise TypeError(f"{cls.__name__} is not an AnalysisSpec")
        existing = _REGISTRY.get(kind)
        if existing is not None and existing is not cls:
            raise ValueError(f"analysis kind {kind!r} already registered to {existing.__name__}")
        cls.kind = kind
        _REGISTRY[kind] = cls
        return cls

    return decorate


def analysis_kinds() -> list[str]:
    """All registered analysis kinds, sorted."""
    return sorted(_REGISTRY)


def analysis_type(kind: str) -> type["AnalysisSpec"]:
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise KeyError(
            f"unknown analysis kind {kind!r}; registered kinds: {analysis_kinds()}"
        ) from None


def analysis_from_dict(data: dict[str, Any]) -> "AnalysisSpec":
    """Rebuild any registered analysis from its ``to_dict()`` payload."""
    if "kind" not in data:
        raise ValueError("analysis dict needs a 'kind' entry")
    return analysis_type(data["kind"]).from_dict(data)


@dataclass(frozen=True)
class AnalysisSpec:
    """Common serialization machinery for all analysis kinds."""

    kind: ClassVar[str] = ""

    def to_dict(self) -> dict[str, Any]:
        from ..experiments.specs import _plain

        data: dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            data[field.name] = _plain(getattr(self, field.name))
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AnalysisSpec":
        payload = dict(data)
        kind = payload.pop("kind", cls.kind)
        if kind != cls.kind:
            raise ValueError(f"{cls.__name__} cannot load kind {kind!r}")
        names = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise ValueError(f"unknown fields for {cls.__name__}: {sorted(unknown)}")
        coerced = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in payload.items()
        }
        return cls(**coerced)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def replace(self, **changes: Any) -> "AnalysisSpec":
        return dataclasses.replace(self, **changes)

    def spec_hash(self) -> str:
        """Canonical, process-stable content hash (sorted keys, dtype
        wrappers collapsed) — same recipe as
        :meth:`repro.experiments.specs.ExperimentSpec.spec_hash`, so an
        analysis can be content-addressed alongside the campaign it
        analyses."""
        from ..service.keys import spec_key

        return spec_key(self.to_dict())

    # ------------------------------------------------------------------
    def run(self, source: Any) -> AnalysisReport:
        """Analyse a CampaignResult / ResultStore and return the report."""
        raise NotImplementedError


def _source_block(store: Any, frame: CampaignFrame) -> dict[str, Any]:
    """Campaign provenance for the report header.

    Deliberately excludes executor, worker count and wall times: a
    report must be byte-identical however the campaign was executed.
    """
    manifest = getattr(store, "manifest", None) or {}
    block: dict[str, Any] = {
        "name": manifest.get("name", ""),
        "kind": "+".join(frame.kinds()) or "?",
        "n_points": frame.n_points,
    }
    if "seed" in manifest:
        block["seed"] = manifest["seed"]
    if "version" in manifest:
        block["version"] = manifest["version"]
    return block


def _fmt(value: float) -> float:
    """Round-trip-stable plain float for report scalars."""
    return float(value)


# ---------------------------------------------------------------------------
# dose_response
# ---------------------------------------------------------------------------
@register_analysis("dose_response")
@dataclass(frozen=True)
class DoseResponseAnalysis(AnalysisSpec):
    """Calibration-curve fit over a concentration axis (Fig. 4).

    ``response`` is the per-point scalar metric regressed on ``axis``;
    ``blank`` (when present in the store) is the per-point background
    metric whose spread sets the 3σ-blank LoD criterion — for DNA
    assays the mismatched-spot current is exactly that built-in blank.
    ``model`` is one of :data:`~repro.inference.doseresponse.MODELS`;
    the log-linear family also gets vectorized pairs-bootstrap CIs on
    slope and LoD (Hill fits report parameter SEs instead).
    """

    axis: str = "concentration"
    response: str = "median_match_estimate_a"
    blank: str = "median_nonmatch_estimate_a"
    model: str = "loglog"
    lod_sigma: float = 3.0
    loq_sigma: float = 10.0
    n_resamples: int = 2000
    confidence: float = 0.95
    seed: int = 0

    def __post_init__(self) -> None:
        if self.model not in _doseresponse.MODELS:
            raise ValueError(
                f"unknown model {self.model!r}; choose from {_doseresponse.MODELS}"
            )
        if self.n_resamples < 1:
            raise ValueError("n_resamples must be >= 1")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must lie strictly between 0 and 1")

    def run(self, source: Any) -> AnalysisReport:
        frame = CampaignFrame.from_store(source)
        if frame.n_points == 0:
            raise ValueError("store holds no results to analyse")
        x = np.asarray(frame.axis(self.axis), dtype=float)
        y = frame.metric(self.response)
        blanks = frame.metric(self.blank) if self.blank and frame.has_metric(self.blank) else None
        result = _doseresponse.analyze_dose_response(
            x,
            y,
            model=self.model,
            blank_responses=blanks,
            lod_sigma=self.lod_sigma,
            loq_sigma=self.loq_sigma,
        )
        fit = result.fit
        scalars: dict[str, Any] = {
            "model": result.model,
            "n_points": int(len(x)),
            "response_metric": self.response,
            "r_squared": _fmt(fit.r_squared),
            "rmse": _fmt(fit.rmse),
            "blank_mean": _fmt(result.blank_mean),
            "blank_sigma": _fmt(result.blank_sigma),
            "blank_source": result.blank_source,
            "lod": _fmt(result.lod),
            "loq": _fmt(result.loq),
            "range_low": _fmt(result.range_low),
            "range_high": _fmt(result.range_high),
            "dynamic_range_decades": _fmt(result.dynamic_range_decades),
        }
        notes: list[str] = []
        if isinstance(fit, _doseresponse.HillFit):
            scalars.update(
                {
                    "hill_bottom": _fmt(fit.bottom),
                    "hill_top": _fmt(fit.top),
                    "hill_ec50": _fmt(fit.ec50),
                    "hill_n": _fmt(fit.hill_n),
                    "hill_ec50_se": _fmt(fit.param_se[2]),
                    "hill_converged": bool(fit.converged),
                }
            )
            notes.append(
                "bootstrap LoD intervals are computed for log-linear models only; "
                "Hill fits report parameter standard errors"
            )
        else:
            scalars.update(
                {
                    "slope": _fmt(fit.slope),
                    "slope_se": _fmt(fit.slope_se),
                    "intercept": _fmt(fit.intercept),
                    "intercept_se": _fmt(fit.intercept_se),
                }
            )
            boot = _doseresponse.bootstrap_loglinear(
                x,
                y,
                log_y=fit.log_y,
                blank_responses=blanks,
                lod_sigma=self.lod_sigma,
                n_resamples=self.n_resamples,
                confidence=self.confidence,
                seed=self.seed,
            )
            scalars.update(
                {
                    "slope_ci_low": _fmt(boot.slope[0]),
                    "slope_ci_high": _fmt(boot.slope[1]),
                    "lod_ci_low": _fmt(boot.lod[0]),
                    "lod_ci_high": _fmt(boot.lod[1]),
                    "bootstrap_n_valid": boot.n_valid,
                    "bootstrap_n_resamples": boot.n_resamples,
                }
            )

        rows: list[list[Any]] = []
        for position, (dose, indices) in enumerate(frame.group_indices(self.axis)):
            group = y[indices]
            ci = bootstrap_ci(
                group,
                "mean",
                n_resamples=self.n_resamples,
                confidence=self.confidence,
                seed=self.seed,
                label=("dose-mean", position),
            )
            rows.append(
                [
                    float(dose),
                    int(len(group)),
                    _fmt(ci.estimate),
                    _fmt(group.std(ddof=1)) if len(group) > 1 else 0.0,
                    _fmt(ci.low),
                    _fmt(ci.high),
                ]
            )
        table = ReportTable(
            title=f"per-dose {self.response} (bootstrap {self.confidence:g} CIs)",
            headers=[self.axis, "n", "mean", "std", "ci_low", "ci_high"],
            rows=rows,
        )
        return AnalysisReport(
            kind=self.kind,
            analysis=self.to_dict(),
            source=_source_block(getattr(source, "store", source), frame),
            scalars=scalars,
            tables=[table],
            notes=notes,
        )


# ---------------------------------------------------------------------------
# detection
# ---------------------------------------------------------------------------
@register_analysis("detection")
@dataclass(frozen=True)
class DetectionAnalysis(AnalysisSpec):
    """Per-spot hybridization calling over a stored DNA-assay campaign.

    Streams record payloads point by point (never the whole campaign at
    once), pools match vs mismatch scores in point order, and reports
    separation statistics, ROC/AUC with a vectorized bootstrap CI, and
    the calling threshold at ``target_fpr``.
    """

    score_column: str = "sensor_current_a"
    target_fpr: float = 0.01
    n_resamples: int = 500
    confidence: float = 0.95
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.target_fpr <= 1.0:
            raise ValueError("target_fpr must lie in [0, 1]")
        if self.n_resamples < 1:
            raise ValueError("n_resamples must be >= 1")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must lie strictly between 0 and 1")

    def run(self, source: Any) -> AnalysisReport:
        frame = CampaignFrame.from_store(source)
        if frame.n_points == 0:
            raise ValueError("store holds no results to analyse")
        store = getattr(source, "store", source)
        per_point: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for meta, result in store.iter_results():
            pos, neg = _detection.match_mismatch_scores(result, self.score_column)
            per_point[meta["point"]] = (pos, neg)
        # Pool in point order — completion order varies by executor and
        # must never leak into the pooled arrays (or the bootstrap).
        points = sorted(per_point)
        pos = np.concatenate([per_point[p][0] for p in points])
        neg = np.concatenate([per_point[p][1] for p in points])
        stats = _detection.separation_stats(pos, neg)
        roc = _detection.roc_curve(pos, neg)
        op = _detection.operating_point(roc, self.target_fpr)
        auc_low, auc_high = _detection.bootstrap_auc(
            pos,
            neg,
            n_resamples=self.n_resamples,
            confidence=self.confidence,
            seed=self.seed,
        )
        scalars: dict[str, Any] = {
            "score_column": self.score_column,
            "n_match_spots": stats.n_match,
            "n_mismatch_spots": stats.n_mismatch,
            "median_match": _fmt(stats.median_match),
            "median_mismatch": _fmt(stats.median_mismatch),
            "median_ratio": _fmt(stats.median_ratio),
            "d_prime": _fmt(stats.d_prime),
            "auc": _fmt(stats.auc),
            "auc_ci_low": _fmt(auc_low),
            "auc_ci_high": _fmt(auc_high),
            "threshold": _fmt(op.threshold),
            "threshold_fpr": _fmt(op.fpr),
            "threshold_tpr": _fmt(op.tpr),
            "target_fpr": _fmt(self.target_fpr),
        }
        rows = []
        for point in points:
            p_pos, p_neg = per_point[point]
            if len(p_pos) and len(p_neg):
                point_stats = _detection.separation_stats(p_pos, p_neg)
                auc, ratio = point_stats.auc, point_stats.median_ratio
            else:
                auc, ratio = float("nan"), float("nan")
            rows.append([point, len(p_pos), len(p_neg), _fmt(auc), _fmt(ratio)])
        table = ReportTable(
            title=f"per-point separation ({self.score_column})",
            headers=["point", "n_match", "n_mismatch", "auc", "median_ratio"],
            rows=rows,
        )
        return AnalysisReport(
            kind=self.kind,
            analysis=self.to_dict(),
            source=_source_block(store, frame),
            scalars=scalars,
            tables=[table],
        )


# ---------------------------------------------------------------------------
# yield
# ---------------------------------------------------------------------------
@register_analysis("yield")
@dataclass(frozen=True)
class YieldAnalysis(AnalysisSpec):
    """Chip-level Monte-Carlo aggregation (Fig. 6).

    Each stored point is one chip draw; ``metric op threshold`` is the
    pass criterion (e.g. ``discrimination_ratio >= 2``).  When the
    stored records carry per-chip ``dead_pixels`` columns (the
    ``array_scale`` workload), pooled dead-pixel statistics stream in
    point by point as well.
    """

    metric: str = "discrimination_ratio"
    op: str = ">="
    threshold: float = 2.0
    confidence: float = 0.95
    n_resamples: int = 1000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.op not in _yield.CRITERIA:
            raise ValueError(
                f"unknown criterion {self.op!r}; choose from {sorted(_yield.CRITERIA)}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must lie strictly between 0 and 1")
        if self.n_resamples < 1:
            raise ValueError("n_resamples must be >= 1")

    def run(self, source: Any) -> AnalysisReport:
        frame = CampaignFrame.from_store(source)
        if frame.n_points == 0:
            raise ValueError("store holds no results to analyse")
        store = getattr(source, "store", source)
        values = frame.metric(self.metric)
        passed = _yield.apply_criterion(values, self.op, self.threshold)
        stats = _yield.pass_fail_yield(passed, confidence=self.confidence)
        distribution = _yield.spread(values)
        mean_ci = bootstrap_ci(
            values,
            "mean",
            n_resamples=self.n_resamples,
            confidence=self.confidence,
            seed=self.seed,
            label=("yield-metric-mean",),
        )
        scalars: dict[str, Any] = {
            "metric": self.metric,
            "criterion": f"{self.metric} {self.op} {format(self.threshold, 'g')}",
            "n_chips": stats.n,
            "passes": stats.passes,
            "yield": _fmt(stats.fraction),
            "yield_ci_low": _fmt(stats.ci_low),
            "yield_ci_high": _fmt(stats.ci_high),
            "metric_mean": _fmt(distribution.mean),
            "metric_mean_ci_low": _fmt(mean_ci.low),
            "metric_mean_ci_high": _fmt(mean_ci.high),
            "metric_std": _fmt(distribution.std),
            "metric_cv": _fmt(distribution.cv),
            "metric_min": _fmt(distribution.minimum),
            "metric_max": _fmt(distribution.maximum),
        }
        notes: list[str] = []
        tables: list[ReportTable] = []

        # Per-chip dead pixels, when the workload recorded them.
        dead_counts: list[int] = []
        sites_per_chip: Optional[int] = None
        uniform_sites = True
        for _, result in store.iter_results():
            if "dead_pixels" not in result.records:
                dead_counts = []
                break
            spec = result.spec
            sites = int(spec.get("rows", 0)) * int(spec.get("cols", 0))
            if sites_per_chip is None:
                sites_per_chip = sites
            elif sites != sites_per_chip:
                uniform_sites = False
                break
            dead_counts.extend(int(d) for d in result.records["dead_pixels"])
        if dead_counts and sites_per_chip and uniform_sites:
            dead = _yield.dead_pixel_stats(
                dead_counts, sites_per_chip, confidence=self.confidence
            )
            scalars.update(
                {
                    "dead_pixel_rate": _fmt(dead.rate),
                    "dead_pixel_ci_low": _fmt(dead.ci_low),
                    "dead_pixel_ci_high": _fmt(dead.ci_high),
                    "dead_pixel_worst_chip": _fmt(dead.per_chip.maximum),
                    "dead_pixel_chips": dead.n_chips,
                }
            )
        elif not uniform_sites:
            notes.append("dead-pixel pooling skipped: chips have differing geometries")

        rows = []
        replicates = frame.replicates()
        for row_index, meta in enumerate(frame.metas):
            rows.append(
                [
                    meta["point"],
                    int(replicates[row_index]),
                    *[meta.get("assignment", {}).get(name, "") for name in frame.axis_names],
                    _fmt(values[row_index]),
                    bool(passed[row_index]),
                ]
            )
        tables.append(
            ReportTable(
                title=f"per-chip {self.metric} vs criterion",
                headers=["point", "replicate", *frame.axis_names, self.metric, "pass"],
                rows=rows,
            )
        )
        return AnalysisReport(
            kind=self.kind,
            analysis=self.to_dict(),
            source=_source_block(store, frame),
            scalars=scalars,
            tables=tables,
            notes=notes,
        )


# ---------------------------------------------------------------------------
# fault_tolerance
# ---------------------------------------------------------------------------
@register_analysis("fault_tolerance")
@dataclass(frozen=True)
class FaultToleranceAnalysis(AnalysisSpec):
    """Resilience accounting over a fault-injection campaign.

    Each stored point ran the resilient readout under injected faults
    and recorded the controller's ledger as ``fault_*`` metrics.  The
    report pools those ledgers: detection rate (corruption the
    controller caught vs silent corruption that reached the results),
    frame recovery yield within the retry budget, and site survival —
    each with Wilson intervals on the pooled counts — plus seeded
    bootstrap CIs on the per-point means, grouped along a fault axis
    (``faults.rate`` sweeps) when the campaign has one.
    """

    #: Axis to group the per-rate table by; "" auto-picks the first
    #: ``faults.*`` campaign axis (per-point rows when there is none).
    axis: str = ""
    confidence: float = 0.95
    n_resamples: int = 1000
    seed: int = 0

    #: Pooled-count metrics every analysed point must carry.
    REQUIRED: ClassVar[tuple[str, ...]] = (
        "fault_frames_total",
        "fault_frames_corrupted",
        "fault_frames_recovered",
        "fault_frames_lost",
        "fault_retries",
        "fault_registers_corrupted",
        "fault_sites_total",
        "fault_sites_dead",
        "fault_sites_silent",
        "fault_detection_rate",
        "fault_site_survival",
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must lie strictly between 0 and 1")
        if self.n_resamples < 1:
            raise ValueError("n_resamples must be >= 1")

    def run(self, source: Any) -> AnalysisReport:
        frame = CampaignFrame.from_store(source)
        if frame.n_points == 0:
            raise ValueError("store holds no results to analyse")
        missing = [name for name in self.REQUIRED if not frame.has_metric(name)]
        if missing:
            raise ValueError(
                f"store carries no fault-injection metrics ({missing[0]} missing); "
                f"fault_tolerance analyses campaigns whose base spec has faults"
            )
        pooled = {
            name: int(frame.metric(name).sum())
            for name in self.REQUIRED
            if name not in ("fault_detection_rate", "fault_site_survival")
        }
        detected = pooled["fault_frames_corrupted"] + pooled["fault_registers_corrupted"]
        silent = pooled["fault_sites_silent"]
        surviving = pooled["fault_sites_total"] - pooled["fault_sites_dead"]
        survival_per_point = frame.metric("fault_site_survival")
        detection_per_point = frame.metric("fault_detection_rate")

        def _proportion(successes: int, n: int) -> tuple[float, float, float]:
            """(fraction, ci_low, ci_high); degenerate n=0 pins to 1.0
            (nothing happened, so nothing was missed/lost)."""
            if n < 1:
                return 1.0, 1.0, 1.0
            low, high = _yield.wilson_interval(successes, n, self.confidence)
            return successes / n, low, high

        detection, detection_low, detection_high = _proportion(detected, detected + silent)
        recovery, recovery_low, recovery_high = _proportion(
            pooled["fault_frames_recovered"], pooled["fault_frames_corrupted"]
        )
        survival, survival_low, survival_high = _proportion(
            surviving, pooled["fault_sites_total"]
        )
        silent_rate, silent_low, silent_high = (
            (0.0, 0.0, 0.0)
            if surviving < 1
            else (
                silent / surviving,
                *_yield.wilson_interval(silent, surviving, self.confidence),
            )
        )
        survival_ci = bootstrap_ci(
            survival_per_point,
            "mean",
            n_resamples=self.n_resamples,
            confidence=self.confidence,
            seed=self.seed,
            label=("fault-survival-mean",),
        )
        scalars: dict[str, Any] = {
            "n_points": frame.n_points,
            "frames_total": pooled["fault_frames_total"],
            "frames_corrupted": pooled["fault_frames_corrupted"],
            "frames_recovered": pooled["fault_frames_recovered"],
            "frames_lost": pooled["fault_frames_lost"],
            "retries": pooled["fault_retries"],
            "registers_corrupted": pooled["fault_registers_corrupted"],
            "sites_total": pooled["fault_sites_total"],
            "sites_dead": pooled["fault_sites_dead"],
            "sites_silent": silent,
            "detection_rate": _fmt(detection),
            "detection_ci_low": _fmt(detection_low),
            "detection_ci_high": _fmt(detection_high),
            "silent_corruption_rate": _fmt(silent_rate),
            "silent_ci_low": _fmt(silent_low),
            "silent_ci_high": _fmt(silent_high),
            "recovery_yield": _fmt(recovery),
            "recovery_ci_low": _fmt(recovery_low),
            "recovery_ci_high": _fmt(recovery_high),
            "site_survival": _fmt(survival),
            "site_survival_ci_low": _fmt(survival_low),
            "site_survival_ci_high": _fmt(survival_high),
            "site_survival_mean_ci_low": _fmt(survival_ci.low),
            "site_survival_mean_ci_high": _fmt(survival_ci.high),
        }
        notes: list[str] = []
        if detected + silent == 0:
            notes.append(
                "no corruption occurred anywhere in the campaign; detection "
                "rate degenerates to 1.0 by convention"
            )
        if pooled["fault_frames_corrupted"] == 0:
            notes.append("no frame was ever corrupted; recovery yield is vacuous")

        axis = self.axis or next(
            (name for name in frame.axis_names if name.startswith("faults.")), ""
        )
        count_columns = (
            "fault_frames_corrupted",
            "fault_frames_recovered",
            "fault_frames_lost",
            "fault_sites_dead",
            "fault_sites_silent",
        )
        rows: list[list[Any]] = []
        if axis and frame.has_axis(axis):
            for position, (value, indices) in enumerate(frame.group_indices(axis)):
                group_survival = survival_per_point[indices]
                group_ci = bootstrap_ci(
                    group_survival,
                    "mean",
                    n_resamples=self.n_resamples,
                    confidence=self.confidence,
                    seed=self.seed,
                    label=("fault-survival", position),
                )
                rows.append(
                    [
                        value,
                        int(len(indices)),
                        *[int(frame.metric(name)[indices].sum()) for name in count_columns],
                        _fmt(detection_per_point[indices].mean()),
                        _fmt(group_ci.estimate),
                        _fmt(group_ci.low),
                        _fmt(group_ci.high),
                    ]
                )
            table = ReportTable(
                title=(
                    f"fault tolerance vs {axis} "
                    f"(bootstrap {self.confidence:g} CIs on site survival)"
                ),
                headers=[
                    axis,
                    "n",
                    "corrupted",
                    "recovered",
                    "lost",
                    "dead",
                    "silent",
                    "detection",
                    "survival",
                    "ci_low",
                    "ci_high",
                ],
                rows=rows,
            )
        else:
            if self.axis:
                notes.append(f"axis {self.axis!r} not found; reporting per point")
            for row_index, meta in enumerate(frame.metas):
                rows.append(
                    [
                        meta["point"],
                        int(frame.replicates()[row_index]),
                        *[int(frame.metric(name)[row_index]) for name in count_columns],
                        _fmt(detection_per_point[row_index]),
                        _fmt(survival_per_point[row_index]),
                    ]
                )
            table = ReportTable(
                title="per-point fault tolerance",
                headers=[
                    "point",
                    "replicate",
                    "corrupted",
                    "recovered",
                    "lost",
                    "dead",
                    "silent",
                    "detection",
                    "survival",
                ],
                rows=rows,
            )
        return AnalysisReport(
            kind=self.kind,
            analysis=self.to_dict(),
            source=_source_block(getattr(source, "store", source), frame),
            scalars=scalars,
            tables=[table],
            notes=notes,
        )


# ---------------------------------------------------------------------------
# wafer_yield
# ---------------------------------------------------------------------------
@register_analysis("wafer_yield")
@dataclass(frozen=True)
class WaferYieldAnalysis(AnalysisSpec):
    """Die binning and cross-wafer yield over stored wafer campaigns.

    Each stored point is one wafer whose records carry one row per die
    (the ``wafer`` workload); ``metric op threshold`` bins dies pass or
    fail (default: at most 2% dead pixels).  The report layers three
    levels: per-die binning (rendered as ASCII wafer maps, up to
    ``max_maps``), per-wafer yield with Wilson intervals, and
    cross-wafer yield statistics with a seeded bootstrap CI on the mean
    wafer yield.
    """

    metric: str = "dead_fraction"
    op: str = "<="
    threshold: float = 0.02
    confidence: float = 0.95
    n_resamples: int = 1000
    seed: int = 0
    max_maps: int = 4

    def __post_init__(self) -> None:
        if self.op not in _yield.CRITERIA:
            raise ValueError(
                f"unknown criterion {self.op!r}; choose from {sorted(_yield.CRITERIA)}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must lie strictly between 0 and 1")
        if self.n_resamples < 1:
            raise ValueError("n_resamples must be >= 1")
        if self.max_maps < 0:
            raise ValueError("max_maps must be non-negative")

    def run(self, source: Any) -> AnalysisReport:
        from .wafermap import wafer_map_diagram

        frame = CampaignFrame.from_store(source)
        if frame.n_points == 0:
            raise ValueError("store holds no results to analyse")
        store = getattr(source, "store", source)
        criterion = f"{self.metric} {self.op} {format(self.threshold, 'g')}"
        # Stream one wafer at a time; keep only per-die binning columns.
        per_point: dict[int, dict[str, Any]] = {}
        for meta, result in store.iter_results():
            records = result.records
            if self.metric not in records:
                raise ValueError(
                    f"records carry no per-die column {self.metric!r}; "
                    f"available: {sorted(records)}"
                )
            if "grid_x" not in records or "grid_y" not in records:
                raise ValueError(
                    "records carry no die grid coordinates; "
                    "wafer_yield needs a wafer-kind campaign"
                )
            values = np.asarray(records[self.metric], dtype=float)
            passed = _yield.apply_criterion(values, self.op, self.threshold)
            per_point[meta["point"]] = {
                "grid_x": np.asarray(records["grid_x"], dtype=int),
                "grid_y": np.asarray(records["grid_y"], dtype=int),
                "passed": passed,
                "stats": _yield.pass_fail_yield(passed, confidence=self.confidence),
                "n_grid_x": result.metrics.get("n_grid_x"),
                "n_grid_y": result.metrics.get("n_grid_y"),
            }
        points = sorted(per_point)
        pooled = _yield.pass_fail_yield(
            np.concatenate([per_point[p]["passed"] for p in points]),
            confidence=self.confidence,
        )
        wafer_yields = np.asarray(
            [per_point[p]["stats"].fraction for p in points], dtype=float
        )
        scalars: dict[str, Any] = {
            "metric": self.metric,
            "criterion": criterion,
            "n_wafers": int(len(points)),
            "n_dies": pooled.n,
            "die_passes": pooled.passes,
            "die_yield": _fmt(pooled.fraction),
            "die_yield_ci_low": _fmt(pooled.ci_low),
            "die_yield_ci_high": _fmt(pooled.ci_high),
            "wafer_yield_mean": _fmt(wafer_yields.mean()),
            "wafer_yield_min": _fmt(wafer_yields.min()),
            "wafer_yield_max": _fmt(wafer_yields.max()),
        }
        notes: list[str] = []
        if len(points) > 1:
            ci = bootstrap_ci(
                wafer_yields,
                "mean",
                n_resamples=self.n_resamples,
                confidence=self.confidence,
                seed=self.seed,
                label=("wafer-yield-mean",),
            )
            scalars["wafer_yield_std"] = _fmt(wafer_yields.std(ddof=1))
            scalars["wafer_yield_mean_ci_low"] = _fmt(ci.low)
            scalars["wafer_yield_mean_ci_high"] = _fmt(ci.high)
        else:
            notes.append("cross-wafer bootstrap CI needs at least two wafers")

        rows: list[list[Any]] = []
        replicates = frame.replicates()
        for row_index, meta in enumerate(frame.metas):
            stats = per_point[meta["point"]]["stats"]
            rows.append(
                [
                    meta["point"],
                    int(replicates[row_index]),
                    *[meta.get("assignment", {}).get(name, "") for name in frame.axis_names],
                    stats.n,
                    stats.passes,
                    _fmt(stats.fraction),
                    _fmt(stats.ci_low),
                    _fmt(stats.ci_high),
                ]
            )
        table = ReportTable(
            title=f"per-wafer die yield ({criterion}; Wilson {self.confidence:g} CIs)",
            headers=[
                "point",
                "replicate",
                *frame.axis_names,
                "n_dies",
                "passes",
                "yield",
                "ci_low",
                "ci_high",
            ],
            rows=rows,
        )
        diagrams = [
            wafer_map_diagram(
                per_point[p]["grid_x"],
                per_point[p]["grid_y"],
                per_point[p]["passed"],
                title=f"wafer map — point {p} ({criterion})",
                n_grid_x=per_point[p]["n_grid_x"],
                n_grid_y=per_point[p]["n_grid_y"],
            )
            for p in points[: self.max_maps]
        ]
        if len(points) > self.max_maps:
            notes.append(
                f"wafer maps rendered for the first {self.max_maps} of "
                f"{len(points)} wafers (raise max_maps for more)"
            )
        return AnalysisReport(
            kind=self.kind,
            analysis=self.to_dict(),
            source=_source_block(store, frame),
            scalars=scalars,
            tables=[table],
            notes=notes,
            diagrams=diagrams,
        )


# ---------------------------------------------------------------------------
# Front door
# ---------------------------------------------------------------------------
def default_analysis_for(source: Any) -> AnalysisSpec:
    """Pick the analysis a stored campaign most plausibly wants.

    A ``concentration`` axis means a dose series (``dose_response``);
    an ``array_scale`` campaign is a chip Monte Carlo (``yield`` on the
    zero-site fraction); a DNA assay without a dose axis is a
    detection experiment; anything else with replicates is a yield
    question on its shared metrics.
    """
    frame = CampaignFrame.from_store(source)
    if frame.n_points == 0:
        raise ValueError("store holds no results to analyse")
    kinds = frame.kinds()
    # Fault sweeps first: a faulted campaign's dose/detection numbers
    # are corrupted by construction — resilience is the question.
    if frame.has_metric("fault_detection_rate") or any(
        name.startswith("faults.") for name in frame.axis_names
    ):
        return FaultToleranceAnalysis()
    if frame.has_axis("concentration"):
        return DoseResponseAnalysis()
    if kinds == ["array_scale"]:
        return YieldAnalysis(metric="zero_site_fraction", op="<=", threshold=0.05)
    if kinds == ["wafer"]:
        return WaferYieldAnalysis()
    if kinds == ["dna_assay"]:
        return DetectionAnalysis()
    if frame.metric_names:
        return YieldAnalysis(metric=frame.metric_names[0], op=">=", threshold=0.0)
    raise ValueError(
        f"cannot infer an analysis for kind(s) {kinds}; pass one of {analysis_kinds()}"
    )


def analyze(
    source: Any,
    analysis: Any = None,
    **overrides: Any,
) -> AnalysisReport:
    """Run an analysis over a campaign and return its report.

    ``source`` may be a :class:`~repro.campaigns.store.CampaignResult`,
    any ResultStore, or a campaign directory (``str``/``Path`` — loaded
    as a JSONL store).  ``analysis`` may be ``None`` (inferred via
    :func:`default_analysis_for`), a registered kind name, a spec
    instance, or a spec dict; keyword ``overrides`` replace fields on
    whichever spec results.
    """
    if isinstance(source, (str, Path)):
        from ..campaigns.store import JsonlResultStore

        source = JsonlResultStore.load(source)
    if analysis is None:
        spec = default_analysis_for(source)
    elif isinstance(analysis, AnalysisSpec):
        spec = analysis
    elif isinstance(analysis, str):
        spec = analysis_type(analysis)()
    elif isinstance(analysis, dict):
        spec = analysis_from_dict(analysis)
    else:
        raise TypeError(
            f"cannot resolve an analysis from {type(analysis).__name__}; expected "
            f"None, a kind name, an AnalysisSpec or a dict"
        )
    if overrides:
        known = {field.name for field in dataclasses.fields(spec)}
        unknown = set(overrides) - known
        if unknown:
            raise ValueError(
                f"unknown fields for {type(spec).__name__}: {sorted(unknown)}"
            )
        spec = spec.replace(**overrides)
    return spec.run(source)
