"""Hybridization calling: match/mismatch separation, ROC and thresholds.

The chip's qualitative claim ("matching sites light up, mismatched
sites don't") becomes quantitative here: per-spot scores split into a
match population and a mismatch/background population, an ROC curve
over every possible calling threshold, the AUC as the single-number
separability, and the operating threshold at a target false-positive
rate — the number an assay protocol would actually ship with.

All curve construction is vectorized (one sort), and the AUC bootstrap
resamples both populations in one ``(B, n)`` block with ranks computed
per row — no Python-level loop over resamples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.rng import SeedTree

# NumPy 2 renamed trapz -> trapezoid; the package floor is 1.22.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


def _as_scores(values, name: str) -> np.ndarray:
    scores = np.asarray(values, dtype=float).ravel()
    if len(scores) == 0:
        raise ValueError(f"{name} scores are empty")
    return scores


@dataclass(frozen=True)
class RocCurve:
    """TPR/FPR over descending score thresholds (prepended (0, 0))."""

    thresholds: np.ndarray
    fpr: np.ndarray
    tpr: np.ndarray
    auc: float
    n_pos: int
    n_neg: int


def roc_curve(pos_scores, neg_scores) -> RocCurve:
    """The ROC of "call hybridized when score >= threshold".

    One stable descending sort over the pooled scores; tied scores
    collapse to a single operating point so the curve never cuts
    through a tie.  The trapezoidal area equals the Mann–Whitney AUC of
    :func:`auc_score`.
    """
    pos = _as_scores(pos_scores, "positive")
    neg = _as_scores(neg_scores, "negative")
    scores = np.concatenate([pos, neg])
    labels = np.concatenate([np.ones(len(pos)), np.zeros(len(neg))])
    order = np.argsort(-scores, kind="stable")
    scores = scores[order]
    labels = labels[order]
    tps = np.cumsum(labels)
    fps = np.cumsum(1.0 - labels)
    # Keep only the last index of each run of equal scores.
    distinct = np.append(np.diff(scores) != 0, True)
    tpr = np.concatenate([[0.0], tps[distinct] / len(pos)])
    fpr = np.concatenate([[0.0], fps[distinct] / len(neg)])
    thresholds = np.concatenate([[float("inf")], scores[distinct]])
    auc = float(_trapezoid(tpr, fpr))
    return RocCurve(
        thresholds=thresholds, fpr=fpr, tpr=tpr, auc=auc, n_pos=len(pos), n_neg=len(neg)
    )


def auc_score(pos_scores, neg_scores) -> float:
    """Mann–Whitney AUC with exact tie handling (averaged ranks)."""
    pos = _as_scores(pos_scores, "positive")
    neg = _as_scores(neg_scores, "negative")
    scores = np.concatenate([pos, neg])
    # Tie-averaged ranks: rank runs of equal values by their mean rank.
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores))
    sorted_scores = scores[order]
    boundaries = np.concatenate(
        [[0], np.nonzero(np.diff(sorted_scores))[0] + 1, [len(scores)]]
    )
    base = np.arange(1, len(scores) + 1, dtype=float)
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        base[start:stop] = base[start:stop].mean()
    ranks[order] = base
    rank_sum = float(ranks[: len(pos)].sum())
    u = rank_sum - len(pos) * (len(pos) + 1) / 2.0
    return u / (len(pos) * len(neg))


@dataclass(frozen=True)
class OperatingPoint:
    """The calling threshold chosen at a target false-positive rate."""

    threshold: float
    fpr: float
    tpr: float
    target_fpr: float


def operating_point(roc: RocCurve, target_fpr: float = 0.01) -> OperatingPoint:
    """Highest-sensitivity point with ``fpr <= target_fpr``.

    The ROC is stepwise, so this is the last curve vertex not past the
    target; the returned ``fpr`` is the rate actually achieved there
    (<= target, possibly 0).
    """
    if not 0.0 <= target_fpr <= 1.0:
        raise ValueError("target_fpr must lie in [0, 1]")
    eligible = np.nonzero(roc.fpr <= target_fpr)[0]
    index = int(eligible[-1])  # fpr is non-decreasing; last one is best
    return OperatingPoint(
        threshold=float(roc.thresholds[index]),
        fpr=float(roc.fpr[index]),
        tpr=float(roc.tpr[index]),
        target_fpr=float(target_fpr),
    )


@dataclass(frozen=True)
class SeparationStats:
    """Distribution-level separation between match and mismatch spots."""

    n_match: int
    n_mismatch: int
    median_match: float
    median_mismatch: float
    median_ratio: float
    d_prime: float
    auc: float


def separation_stats(pos_scores, neg_scores) -> SeparationStats:
    pos = _as_scores(pos_scores, "positive")
    neg = _as_scores(neg_scores, "negative")
    median_pos = float(np.median(pos))
    median_neg = float(np.median(neg))
    pooled = 0.5 * (pos.var(ddof=1) if len(pos) > 1 else 0.0) + 0.5 * (
        neg.var(ddof=1) if len(neg) > 1 else 0.0
    )
    d_prime = (
        float((pos.mean() - neg.mean()) / math.sqrt(pooled)) if pooled > 0 else float("inf")
    )
    return SeparationStats(
        n_match=len(pos),
        n_mismatch=len(neg),
        median_match=median_pos,
        median_mismatch=median_neg,
        median_ratio=median_pos / median_neg if median_neg > 0 else float("inf"),
        d_prime=d_prime,
        auc=auc_score(pos, neg),
    )


def bootstrap_auc(
    pos_scores,
    neg_scores,
    *,
    n_resamples: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
    label: tuple = (),
) -> tuple[float, float]:
    """Percentile bootstrap CI for the AUC, vectorized across resamples.

    Both populations resample independently; per-resample AUC comes
    from rank sums computed row-wise over the whole block (ties broken
    by sort order — scores here are continuous currents, where exact
    ties only occur for duplicated values, which resampling preserves
    on both sides).
    """
    pos = _as_scores(pos_scores, "positive")
    neg = _as_scores(neg_scores, "negative")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly between 0 and 1")
    rng = SeedTree(int(seed)).generator(
        "inference", "detection", "auc-bootstrap", len(pos), len(neg), int(n_resamples), *label
    )
    n_pos, n_neg = len(pos), len(neg)
    m = n_pos + n_neg
    # Both index matrices are drawn up front (so the stream never
    # depends on block size); only the rank workspace is row-blocked to
    # stay within the bootstrap engine's memory budget.
    pos_idx = rng.integers(0, n_pos, size=(int(n_resamples), n_pos))
    neg_idx = rng.integers(0, n_neg, size=(int(n_resamples), n_neg))
    from .bootstrap import MAX_BLOCK_ELEMENTS

    block_rows = max(1, MAX_BLOCK_ELEMENTS // m)
    aucs: list[np.ndarray] = []
    for start in range(0, int(n_resamples), block_rows):
        stop = min(start + block_rows, int(n_resamples))
        combined = np.concatenate(
            [pos[pos_idx[start:stop]], neg[neg_idx[start:stop]]], axis=1
        )
        order = np.argsort(combined, axis=1, kind="stable")
        ranks = np.empty_like(order)
        np.put_along_axis(ranks, order, np.arange(1, m + 1)[None, :], axis=1)
        rank_sum = ranks[:, :n_pos].sum(axis=1).astype(float)
        aucs.append((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))
    distribution = np.concatenate(aucs)
    alpha = 1.0 - confidence
    low, high = np.quantile(distribution, [alpha / 2.0, 1.0 - alpha / 2.0])
    return (float(low), float(high))


def match_mismatch_scores(
    result, score_column: str = "sensor_current_a"
) -> tuple[np.ndarray, np.ndarray]:
    """Split a ``dna_assay`` ResultSet's spots into (match, mismatch)
    score arrays.

    Matches are the perfectly complementary sites; the negative
    population is every *probe-bearing* non-match site (mismatched or
    unaddressed probes) — empty control/background spots carry no probe
    and belong to neither population.
    """
    records = result.records if hasattr(result, "records") else result
    try:
        scores = np.asarray(records[score_column], dtype=float)
        is_match = np.asarray(records["is_match"], dtype=bool)
        probe = np.asarray(records["probe"], dtype=object)
    except KeyError as error:
        raise KeyError(
            f"result lacks column {error.args[0]!r}; detection needs "
            f"{score_column!r}, 'is_match' and 'probe' columns"
        ) from None
    has_probe = np.asarray([bool(name) for name in probe])
    return scores[is_match], scores[~is_match & has_probe]
