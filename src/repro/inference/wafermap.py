"""ASCII wafer maps — die-binning results inspectable in a terminal.

One character per die on the wafer's grid, top grid row first (the
geometry layer places ``grid_y`` 0 at the top, so maps render in wafer
orientation without flipping).  Grid positions the edge exclusion
removed render as ``empty_char``, which traces the wafer's circular
outline for free.

The renderer is deliberately data-only: it takes grid coordinates and
per-die values, not a ``WaferSpec``, so it works on stored campaign
records long after the spec module that produced them has moved on.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

__all__ = ["render_wafer_map", "wafer_map_diagram"]


def render_wafer_map(
    grid_x: Sequence[int],
    grid_y: Sequence[int],
    flags: Sequence[Any],
    *,
    pass_char: str = "#",
    fail_char: str = "x",
    empty_char: str = ".",
    n_grid_x: Optional[int] = None,
    n_grid_y: Optional[int] = None,
) -> list[str]:
    """Render per-die pass/fail flags as map lines, one char per die.

    ``flags`` is truthy-per-die (pass).  The grid extent defaults to the
    bounding box of the given coordinates; pass ``n_grid_x``/``n_grid_y``
    to pin it (e.g. the layout's full extent) so maps from sparser
    wafers stay comparable.
    """
    gx = np.asarray(grid_x, dtype=int)
    gy = np.asarray(grid_y, dtype=int)
    ok = np.asarray(flags, dtype=bool)
    if not (len(gx) == len(gy) == len(ok)):
        raise ValueError("grid_x, grid_y and flags must have equal length")
    if len(gx) == 0:
        return []
    width = int(n_grid_x) if n_grid_x is not None else int(gx.max()) + 1
    height = int(n_grid_y) if n_grid_y is not None else int(gy.max()) + 1
    if gx.min() < 0 or gy.min() < 0 or gx.max() >= width or gy.max() >= height:
        raise ValueError("grid coordinates fall outside the grid extent")
    cells = [[empty_char] * width for _ in range(height)]
    for x, y, flag in zip(gx, gy, ok):
        cells[y][x] = pass_char if flag else fail_char
    return [" ".join(row) for row in cells]


def wafer_map_diagram(
    grid_x: Sequence[int],
    grid_y: Sequence[int],
    flags: Sequence[Any],
    *,
    title: str,
    pass_char: str = "#",
    fail_char: str = "x",
    empty_char: str = ".",
    n_grid_x: Optional[int] = None,
    n_grid_y: Optional[int] = None,
) -> dict[str, Any]:
    """A report-ready diagram block (title + legend + map lines) for
    :attr:`repro.inference.report.AnalysisReport.diagrams`."""
    lines = render_wafer_map(
        grid_x,
        grid_y,
        flags,
        pass_char=pass_char,
        fail_char=fail_char,
        empty_char=empty_char,
        n_grid_x=n_grid_x,
        n_grid_y=n_grid_y,
    )
    legend = f"{pass_char}=pass {fail_char}=fail {empty_char}=no die"
    return {"title": title, "lines": [legend, *lines]}
