"""Columnar access to campaign stores — the bridge into the analyses.

A result store holds per-point *metadata rows* (axis assignment,
replicate, scalar metrics); every analysis here wants *columns* over
points.  :class:`CampaignFrame` is that pivot: metas sorted by point
index, axis and metric columns materialised as arrays on demand, and
grouping by axis value for replicate aggregation.  It is built from
metadata only — no record payload is deserialized — so framing a
million-point JSONL campaign costs metadata, not results.

:func:`report_rows` (the per-point table the CLI prints) lives here
too; :mod:`repro.campaigns.report` delegates to it, so the report and
the analyses can never disagree about what a stored campaign contains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np


def _store_of(source: Any) -> Any:
    """Accept a CampaignResult (has ``.store``) or a store directly."""
    store = getattr(source, "store", source)
    if not hasattr(store, "point_metas"):
        raise TypeError(
            f"cannot read campaign data from {type(source).__name__}; expected a "
            f"ResultStore or CampaignResult"
        )
    return store


@dataclass
class CampaignFrame:
    """Point-metadata of one campaign, pivoted into columns."""

    metas: list[dict[str, Any]]
    axis_names: list[str] = field(default_factory=list)
    metric_names: list[str] = field(default_factory=list)

    @classmethod
    def from_store(cls, source: Any) -> "CampaignFrame":
        """Build from a store / CampaignResult, ordered by point index.

        ``axis_names`` collects every assignment field any point
        carries (first-seen order); ``metric_names`` the scalar metrics
        *shared by every point*, sorted — the same defaults the report
        table uses.
        """
        store = _store_of(source)
        metas = sorted(store.point_metas(), key=lambda meta: meta["point"])
        axis_names: list[str] = []
        for meta in metas:
            for name in meta.get("assignment", {}):
                if name not in axis_names:
                    axis_names.append(name)
        if metas:
            # Sorted, not insertion order: JSONL lines store metrics
            # with sorted keys, so live and reloaded frames agree.
            first_metrics = metas[0].get("metrics", {})
            metric_names = sorted(
                name
                for name in first_metrics
                if all(name in meta.get("metrics", {}) for meta in metas[1:])
            )
        else:
            metric_names = []
        return cls(metas=metas, axis_names=axis_names, metric_names=metric_names)

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return len(self.metas)

    def points(self) -> np.ndarray:
        return np.asarray([meta["point"] for meta in self.metas], dtype=int)

    def replicates(self) -> np.ndarray:
        return np.asarray([meta.get("replicate", 0) for meta in self.metas], dtype=int)

    def kinds(self) -> list[str]:
        """Distinct experiment kinds, in first-seen order."""
        seen: list[str] = []
        for meta in self.metas:
            kind = meta.get("kind")
            if kind is not None and kind not in seen:
                seen.append(kind)
        return seen

    def has_axis(self, name: str) -> bool:
        return name in self.axis_names

    def has_metric(self, name: str) -> bool:
        return all(name in meta.get("metrics", {}) for meta in self.metas) and bool(self.metas)

    def axis(self, name: str) -> np.ndarray:
        """One axis assignment per point (object dtype unless numeric)."""
        if name not in self.axis_names:
            raise KeyError(f"no axis {name!r}; campaign axes: {self.axis_names}")
        values = [meta.get("assignment", {}).get(name) for meta in self.metas]
        if any(value is None for value in values):
            missing = [m["point"] for m, v in zip(self.metas, values) if v is None]
            raise KeyError(f"axis {name!r} missing from point(s) {missing}")
        try:
            return np.asarray(values, dtype=float)
        except (TypeError, ValueError):
            out = np.empty(len(values), dtype=object)
            out[:] = values
            return out

    def metric(self, name: str) -> np.ndarray:
        """One scalar metric per point, as floats."""
        missing = [
            meta["point"] for meta in self.metas if name not in meta.get("metrics", {})
        ]
        if missing or not self.metas:
            raise KeyError(
                f"metric {name!r} missing from point(s) {missing or 'all'}; "
                f"metrics shared by every point: {self.metric_names}"
            )
        return np.asarray(
            [meta["metrics"][name] for meta in self.metas], dtype=float
        )

    def wall_s(self) -> np.ndarray:
        return np.asarray([float(meta.get("wall_s", 0.0)) for meta in self.metas])

    def group_indices(self, axis_name: str) -> list[tuple[Any, np.ndarray]]:
        """``(axis value, point-row indices)`` per distinct value, in
        ascending value order — the replicate-grouping the per-dose
        tables are built on."""
        values = self.axis(axis_name)
        distinct = sorted(set(values.tolist()))
        return [
            (value, np.nonzero(values == value)[0])
            for value in distinct
        ]


# ---------------------------------------------------------------------------
# The per-point report table (consumed by repro.campaigns.report)
# ---------------------------------------------------------------------------
def report_rows(
    source: Any,
    metrics: Optional[Sequence[str]] = None,
) -> tuple[list[str], list[list[Any]]]:
    """``(headers, rows)`` for the per-point table, ordered by point.

    Columns: point, replicate, every axis field that appears in any
    point's assignment, wall time, then the requested metrics
    (defaulting to the scalar metrics shared by every point, sorted).
    Built entirely from point metadata — no record payload is ever
    deserialized for a report.
    """
    frame = CampaignFrame.from_store(source)
    if not frame.metas:
        return ["point"], []
    if metrics is None:
        metrics = frame.metric_names
    headers = ["point", "replicate", *frame.axis_names, "wall_s", *metrics]
    rows = []
    for meta in frame.metas:
        assignment = meta.get("assignment", {})
        point_metrics = meta.get("metrics", {})
        rows.append(
            [
                meta["point"],
                meta.get("replicate", 0),
                *[assignment.get(name, "") for name in frame.axis_names],
                float(meta.get("wall_s", 0.0)),
                *[point_metrics.get(name, "") for name in metrics],
            ]
        )
    return headers, rows
