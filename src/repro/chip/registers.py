"""Configuration register file of the sensor chips.

The 6-pin interface leaves no room for parallel configuration: every
operating parameter (electrode DAC codes, frame length, calibration
mode) lives in an on-chip register file written over the serial link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class RegisterSpec:
    """One register's address, width, reset value and host access.

    ``read_only`` registers (chip identification, status flags) reject
    host writes over the serial link; only chip-internal hardware
    (:meth:`RegisterFile.hw_write`) may update them.
    """

    name: str
    address: int
    bits: int
    reset_value: int = 0
    read_only: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.address <= 0xFF:
            raise ValueError("address must fit in one byte")
        if not 1 <= self.bits <= 16:
            raise ValueError("register width must lie in [1, 16]")
        if not 0 <= self.reset_value < (1 << self.bits):
            raise ValueError("reset value does not fit the register")


class RegisterFile:
    """Addressable register bank with range and access checking.

    An optional ``recorder`` (:class:`~repro.trace.TraceRecorder`,
    duck-typed — this module never imports the trace package) gets one
    event per write, read, reset and rejected write.
    """

    def __init__(self, specs: list[RegisterSpec], recorder: Optional[Any] = None) -> None:
        if not specs:
            raise ValueError("register file needs at least one register")
        addresses = [spec.address for spec in specs]
        if len(set(addresses)) != len(addresses):
            raise ValueError("duplicate register addresses")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate register names")
        self._by_name = {spec.name: spec for spec in specs}
        self._by_address = {spec.address: spec for spec in specs}
        self._values = {spec.name: spec.reset_value for spec in specs}
        self.recorder = recorder

    def reset(self) -> None:
        for name, spec in self._by_name.items():
            self._values[name] = spec.reset_value
        if self.recorder is not None:
            self.recorder.reg_reset(dict(self._values))

    # ------------------------------------------------------------------
    def write(self, name_or_address: str | int, value: int, source: str = "host") -> None:
        """Write a register.  ``source="host"`` models traffic arriving
        over the serial link and is rejected on read-only registers; the
        chip's own hardware writes via :meth:`hw_write`."""
        spec = self._lookup(name_or_address)
        if spec.read_only and source == "host":
            if self.recorder is not None:
                self.recorder.reg_reject(
                    spec.name, spec.address, value, "read-only register", source=source
                )
            raise ValueError(f"register {spec.name!r} is read-only to the host")
        if not 0 <= value < (1 << spec.bits):
            if self.recorder is not None:
                self.recorder.reg_reject(
                    spec.name,
                    spec.address,
                    value,
                    f"does not fit {spec.bits} bits",
                    source=source,
                )
            raise ValueError(
                f"value {value} does not fit register {spec.name!r} ({spec.bits} bits)"
            )
        old = self._values[spec.name]
        self._values[spec.name] = value
        if self.recorder is not None:
            self.recorder.reg_write(spec.name, spec.address, value, old, source=source)

    def hw_write(self, name_or_address: str | int, value: int) -> None:
        """Chip-internal write path (status flags etc.) — allowed on
        read-only registers."""
        self.write(name_or_address, value, source="hw")

    def read(self, name_or_address: str | int) -> int:
        spec = self._lookup(name_or_address)
        value = self._values[spec.name]
        if self.recorder is not None:
            self.recorder.reg_read(spec.name, spec.address, value)
        return value

    def corrupt(self, name_or_address: str | int, mask: int, source: str = "fault") -> int:
        """Hardware-level bit upset: XOR ``mask`` into the stored value.

        This is the fault-injection seam — it bypasses host access
        checks (physics does not honour ``read_only``) but stays inside
        the register's width and emits an ordinary write event, so
        corruption is visible in the trace and detectable by read-back
        verify.  Returns the corrupted value.
        """
        spec = self._lookup(name_or_address)
        old = self._values[spec.name]
        value = (old ^ mask) & ((1 << spec.bits) - 1)
        self._values[spec.name] = value
        if self.recorder is not None:
            self.recorder.reg_write(spec.name, spec.address, value, old, source=source)
        return value

    def bits(self, name_or_address: str | int) -> int:
        """Width in bits of one register (fault injectors bound their
        flip positions with this)."""
        return self._lookup(name_or_address).bits

    def _lookup(self, key: str | int) -> RegisterSpec:
        if isinstance(key, str):
            if key not in self._by_name:
                raise KeyError(f"unknown register {key!r}")
            return self._by_name[key]
        if key not in self._by_address:
            raise KeyError(f"no register at address {key:#04x}")
        return self._by_address[key]

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def dump(self) -> dict[str, int]:
        return dict(self._values)


def dna_chip_registers(recorder: Optional[Any] = None) -> RegisterFile:
    """Register map of the DNA microarray chip (Section 2 periphery)."""
    return RegisterFile(
        [
            RegisterSpec("generator_dac", 0x00, 8, 0),
            RegisterSpec("collector_dac", 0x01, 8, 0),
            RegisterSpec("frame_exponent", 0x02, 4, 8),  # frame = 2^n ms
            RegisterSpec("calibration_enable", 0x03, 1, 0),
            RegisterSpec("reference_current_sel", 0x04, 3, 2),
            RegisterSpec("status", 0x05, 8, 0, read_only=True),
            RegisterSpec("chip_id", 0x06, 8, 0x2D, read_only=True),
        ],
        recorder=recorder,
    )


def neuro_chip_registers(recorder: Optional[Any] = None) -> RegisterFile:
    """Register map of the 128x128 neural-recording chip (Section 3)."""
    return RegisterFile(
        [
            RegisterSpec("calibration_current", 0x00, 8, 128),
            RegisterSpec("frame_rate_div", 0x01, 8, 1),
            RegisterSpec("row_start", 0x02, 8, 0),
            RegisterSpec("row_stop", 0x03, 8, 127),
            RegisterSpec("gain_trim", 0x04, 4, 8),
            RegisterSpec("status", 0x05, 8, 0, read_only=True),
            RegisterSpec("chip_id", 0x06, 8, 0x4E, read_only=True),
        ],
        recorder=recorder,
    )
