"""The 128x128 neural-recording chip (Section 3, Figs. 5-6).

"chips with 128x128 positions within a total sensor area of 1mm x 1mm
are presented in [19] ... the chosen pitch of 7.8 um ... Full frame rate
is 2k samples/s."

The chip model combines:
  * the vectorised :class:`~repro.neuro.array.NeuralArrayModel` (M1/M2
    calibration physics),
  * 16 parallel :class:`~repro.neuro.readout_chain.ReadoutChannel`
    cascades (x100, x7 @ 4 MHz, 8:1 mux, driver @ 32 MHz, off-chip x4
    and x2),
  * the :class:`~repro.chip.sequencer.ScanTiming` arithmetic that locks
    frame rate, mux depth and bandwidths together,
  * registers + serial configuration like the DNA chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.rng import RngLike, ensure_rng, spawn_children
from ..core.signals import Trace
from ..neuro.action_potential import (
    HodgkinHuxleyNeuron,
    StimulusProtocol,
)
from ..neuro.array import NeuralArrayModel, RecordedMovie
from ..neuro.culture import ArrayGeometry, Culture, NEURO_GEOMETRY
from ..neuro.readout_chain import ReadoutChannel, TOTAL_GAIN
from ..neuro.sensor_pixel import NeuralPixelDesign
from .registers import RegisterFile, neuro_chip_registers
from .sequencer import NEURO_SCAN, ScanTiming
from .serial_interface import Command, Frame, SerialLink


@dataclass
class RecordingResult:
    """Output of one recording run.

    ``electrode_movie`` is sensor-referred volts; ``output_movie`` is
    after the full x5600 chain (what the off-chip converter sees).
    ``ground_truth`` maps neuron index -> true spike times.
    """

    electrode_movie: RecordedMovie
    output_movie: RecordedMovie
    ground_truth: dict[int, np.ndarray]
    culture: Culture

    def best_pixel_for(self, neuron_index: int) -> tuple[int, int]:
        """The covered pixel with the largest recorded peak signal."""
        neuron = self.culture.neurons[neuron_index]
        covered = self.culture.pixels_for_neuron(neuron)
        if not covered:
            raise ValueError(f"neuron {neuron_index} covers no pixel")
        peaks = [
            float(np.max(np.abs(self.electrode_movie.frames[:, r, c]))) for r, c in covered
        ]
        return covered[int(np.argmax(peaks))]


class NeuralRecordingChip:
    """Behavioural model of the full 128x128 device."""

    def __init__(
        self,
        geometry: ArrayGeometry | None = None,
        design: NeuralPixelDesign | None = None,
        scan: ScanTiming | None = None,
        rng: RngLike = None,
        recorder: object = None,
    ) -> None:
        generator = ensure_rng(rng)
        # A trace recorder (duck-typed; see repro.trace) observing the
        # digital path: register traffic, serial frames, scan states.
        self.recorder = recorder
        self.geometry = geometry or NEURO_GEOMETRY
        self.scan = scan or ScanTiming(
            rows=self.geometry.rows,
            cols=self.geometry.cols,
            channels=16 if self.geometry.cols % 16 == 0 else 1,
            frame_rate_hz=2000.0,
        )
        self.array = NeuralArrayModel(self.geometry, design, rng=generator)
        channel_rngs = spawn_children(generator, self.scan.channels)
        self.channels = [ReadoutChannel.sample(r) for r in channel_rngs]
        self.registers: RegisterFile = neuro_chip_registers(recorder=recorder)
        self.link = SerialLink(recorder=recorder)
        self.calibrated = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def calibrate(self, include_imperfections: bool = True) -> None:
        """Pixel calibration (rows in parallel, columns in sequence, per
        the paper) plus the gain-stage offset calibration."""
        if self.recorder is not None:
            self.recorder.seq_state("calibrate", detail="row-parallel pixel calibration")
        self.array.calibrate(include_imperfections=include_imperfections)
        for channel in self.channels:
            channel.calibrate()
        frame = Frame(Command.CALIBRATE, 0x00)
        self.link.transfer(frame)
        # Status is read-only to the host; the chip's own hardware
        # latches the calibrated flag.
        self.registers.hw_write("status", 0x01)
        if self.recorder is not None:
            self.recorder.advance(self.calibration_sweep_time_s())
        self.calibrated = True

    def calibration_sweep_time_s(self) -> float:
        """Time for one full calibration pass: rows in parallel, columns
        in sequence — ``cols`` settle periods of the pixel loop."""
        settle_per_column = 5e-6
        return self.geometry.cols * settle_per_column

    # ------------------------------------------------------------------
    # Noise
    # ------------------------------------------------------------------
    def input_referred_noise_v(self) -> float:
        """Chain noise referred to the sensor electrode (per sample)."""
        chain_noise = self.channels[0].chain.input_referred_noise_rms()
        # gm * R_ti = 1 by design, so chain input volts == coupled
        # electrode volts; refer through the coupling factor.
        return chain_noise / self.array.design.coupling_factor

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_culture(
        self,
        culture: Culture,
        duration_s: float = 0.05,
        firing_rate_hz: float = 20.0,
        rng: RngLike = None,
        use_hh: bool = True,
    ) -> RecordingResult:
        """Simulate spontaneous activity and record it.

        Each neuron gets a Poisson stimulus train, an HH trajectory (or
        the fast template for large cultures), a junction transform and
        its pixels sampled at the scan timing.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if not self.calibrated:
            raise RuntimeError("calibrate() the chip before recording")
        generator = ensure_rng(rng)
        junction_traces: dict[int, Trace] = {}
        ground_truth: dict[int, np.ndarray] = {}
        neuron_rngs = spawn_children(generator, max(1, len(culture.neurons)))
        for neuron, neuron_rng in zip(culture.neurons, neuron_rngs):
            stimulus = StimulusProtocol.spike_train(firing_rate_hz, duration_s, rng=neuron_rng)
            if use_hh:
                hh = HodgkinHuxleyNeuron().simulate(duration_s, dt_s=20e-6, stimulus=stimulus)
                vj = neuron.junction.junction_voltage(hh)
                ground_truth[neuron.index] = hh.spike_times
            else:
                from ..neuro.action_potential import template_action_potential

                vj = Trace.zeros(duration_s, 20e-6)
                spike_times = np.asarray([p[0] for p in stimulus.pulses])
                for t_spike in spike_times:
                    ap = template_action_potential(
                        duration_s=min(6e-3, duration_s), dt_s=20e-6, t_spike_s=1e-3
                    )
                    vj_one = neuron.junction.junction_voltage_from_template(ap)
                    offset = int((t_spike) / vj.dt)
                    end = min(vj.n, offset + vj_one.n)
                    if end > offset:
                        vj.samples[offset:end] += vj_one.samples[: end - offset]
                ground_truth[neuron.index] = spike_times + 1e-3
            junction_traces[neuron.index] = vj
        n_frames = int(duration_s * self.scan.frame_rate_hz)
        electrode_movie = self.array.record(
            culture,
            junction_traces,
            n_frames=n_frames,
            frame_rate_hz=self.scan.frame_rate_hz,
            noise_rms_v=self.input_referred_noise_v(),
            rng=generator,
        )
        output_movie = RecordedMovie(
            frames=self._apply_chain_gain(electrode_movie.frames),
            frame_rate_hz=self.scan.frame_rate_hz,
        )
        return RecordingResult(
            electrode_movie=electrode_movie,
            output_movie=output_movie,
            ground_truth=ground_truth,
            culture=culture,
        )

    def _apply_chain_gain(self, frames: np.ndarray) -> np.ndarray:
        """Static chain transfer per column's channel (gain + clipping)."""
        out = np.empty_like(frames)
        mux_depth = self.scan.mux_depth
        for channel_index, channel in enumerate(self.channels):
            col_lo = channel_index * mux_depth
            col_hi = col_lo + mux_depth
            gain = channel.chain.actual_gain * self.array.design.coupling_factor
            block = frames[:, :, col_lo:col_hi] * gain
            rail = channel.chain.stages[-1].rail_high
            out[:, :, col_lo:col_hi] = np.clip(block, -rail, rail)
        return out

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def timing_report(self) -> dict[str, float]:
        """The locked-together numbers of Section 3 / Fig. 6."""
        return {
            "frame_rate_hz": self.scan.frame_rate_hz,
            "row_time_s": self.scan.row_time_s,
            "slot_time_s": self.scan.slot_time_s,
            "channel_pixel_rate_hz": self.scan.channel_pixel_rate_hz,
            "aggregate_pixel_rate_hz": self.scan.aggregate_pixel_rate_hz,
            "readout_amp_settles": float(self.scan.settling_ok(4e6)),
            "driver_settles": float(self.scan.settling_ok(32e6)),
            "total_gain": TOTAL_GAIN,
        }
