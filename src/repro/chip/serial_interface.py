"""The 6-pin serial interface (Section 2).

"... and 6 pin interface for power supply and serial digital data
transmission."  Pins: VDD, GND, CLK, DIN, DOUT, CS.  Everything —
register writes, assay triggers, counter readout — crosses these two
data pins as framed byte packets:

    [SOF 0xA5] [CMD] [ADDR] [LEN] [PAYLOAD x LEN] [CHKSUM]

CHKSUM is the two's-complement of the byte sum so the full frame sums to
zero mod 256.  The model is bit-accurate: bytes are serialised MSB-first
and can be corrupted per-bit for failure-injection tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any


SOF = 0xA5

PINS = ("VDD", "GND", "CLK", "DIN", "DOUT", "CS")

#: Direction tags of the wire a frame crosses: host -> chip is DIN,
#: chip -> host is DOUT.  Shared with the trace layer's event payloads.
HOST_TO_CHIP = "->"
CHIP_TO_HOST = "<-"


class Command(IntEnum):
    """Host-to-chip command opcodes."""

    WRITE_REG = 0x01
    READ_REG = 0x02
    RUN_FRAME = 0x03
    READ_COUNTERS = 0x04
    CALIBRATE = 0x05
    RESET = 0x0F


class FrameError(ValueError):
    """Raised when a serial frame fails structural or checksum checks."""


@dataclass(frozen=True)
class Frame:
    """One decoded serial packet."""

    command: Command
    address: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.address <= 0xFF:
            raise FrameError(f"address {self.address} out of byte range")
        if len(self.payload) > 0xFF:
            raise FrameError("payload too long for one frame")


def checksum(data: bytes) -> int:
    """Two's-complement checksum byte."""
    return (-sum(data)) & 0xFF


def encode_frame(frame: Frame) -> bytes:
    """Frame -> raw bytes."""
    body = bytes([SOF, int(frame.command), frame.address, len(frame.payload)]) + frame.payload
    return body + bytes([checksum(body)])


def decode_frame(raw: bytes) -> Frame:
    """Raw bytes -> Frame, validating structure and checksum."""
    if len(raw) < 5:
        raise FrameError(f"frame too short ({len(raw)} bytes)")
    if raw[0] != SOF:
        raise FrameError(f"bad start byte {raw[0]:#04x}")
    length = raw[3]
    expected = 5 + length
    if len(raw) != expected:
        raise FrameError(f"length field says {expected} bytes, got {len(raw)}")
    if sum(raw) & 0xFF:
        raise FrameError("checksum mismatch")
    try:
        command = Command(raw[1])
    except ValueError as exc:
        raise FrameError(f"unknown command {raw[1]:#04x}") from exc
    return Frame(command=command, address=raw[2], payload=bytes(raw[4:4 + length]))


# ---------------------------------------------------------------------------
# Bit-level serialisation (what actually crosses DIN/DOUT)
# ---------------------------------------------------------------------------
def bytes_to_bits(data: bytes) -> list[int]:
    """MSB-first bit expansion."""
    bits = []
    for byte in data:
        bits.extend((byte >> i) & 1 for i in range(7, -1, -1))
    return bits


def bits_to_bytes(bits: list[int]) -> bytes:
    """Inverse of :func:`bytes_to_bits`; length must be a byte multiple."""
    if len(bits) % 8:
        raise FrameError(f"bit stream length {len(bits)} is not a byte multiple")
    if any(b not in (0, 1) for b in bits):
        raise FrameError("bit stream must contain only 0/1")
    out = bytearray()
    for i in range(0, len(bits), 8):
        byte = 0
        for bit in bits[i : i + 8]:
            byte = (byte << 1) | bit
        out.append(byte)
    return bytes(out)


@dataclass
class SerialLink:
    """A host <-> chip link with a transcript and error injection.

    ``flip_bits`` lists bit positions (in the full stream) to corrupt —
    the checksum must catch them.

    The transcript records *both* sides of every wire crossing as
    ``(direction, stage, bytes)`` triples: ``stage`` is ``"sent"`` (what
    the transmitter drove) or ``"received"`` (what arrived after any
    injected corruption), so flipped bits are visible as a byte diff.
    An optional ``recorder`` (:class:`~repro.trace.TraceRecorder`,
    duck-typed — this module never imports the trace package) gets one
    serial-frame event per transfer and its simulated clock advanced by
    the frame's wire time.

    An optional ``injector`` (:class:`~repro.faults.FaultInjector`,
    duck-typed the same way — this module never imports the faults
    package) is asked for extra flip positions on every transfer; its
    draws are seeded per run, so attached faults stay a pure function
    of ``(spec, seed)``.
    """

    clock_hz: float = 1e6
    transcript: list[tuple[str, str, bytes]] = field(default_factory=list)
    recorder: Any = None
    injector: Any = None

    def transfer(
        self,
        frame: Frame,
        flip_bits: list[int] | None = None,
        direction: str = HOST_TO_CHIP,
    ) -> Frame:
        """Send a frame through the bit-level pipe and decode it again.

        ``direction`` tags which wire the frame crosses
        (:data:`HOST_TO_CHIP` = DIN, :data:`CHIP_TO_HOST` = DOUT).
        """
        raw = encode_frame(frame)
        bits = bytes_to_bits(raw)
        flips = tuple(flip_bits or ())
        if self.injector is not None:
            injected = self.injector.frame_flips(len(bits), direction)
            if injected:
                flips = tuple(sorted(set(flips) | set(injected)))
        for position in flips:
            if not 0 <= position < len(bits):
                raise IndexError(f"bit position {position} outside stream")
            bits[position] ^= 1
        received = bits_to_bytes(bits)
        self.transcript.append((direction, "sent", raw))
        self.transcript.append((direction, "received", received))
        duration_s = len(bits) / self.clock_hz
        try:
            decoded = decode_frame(received)
        except FrameError as exc:
            self._record(frame, direction, raw, received, flips, False, str(exc), duration_s)
            raise
        self._record(frame, direction, raw, received, flips, True, None, duration_s)
        return decoded

    def _record(
        self,
        frame: Frame,
        direction: str,
        raw: bytes,
        received: bytes,
        flips: tuple[int, ...],
        ok: bool,
        error: str | None,
        duration_s: float,
    ) -> None:
        if self.recorder is None:
            return
        self.recorder.serial_frame(
            direction=direction,
            command=frame.command.name,
            address=frame.address,
            length=len(frame.payload),
            sent=raw,
            received=received,
            flipped=flips,
            ok=ok,
            error=error,
            duration_s=duration_s,
        )
        self.recorder.advance(duration_s)

    def transfer_time_s(self, frame: Frame) -> float:
        """Wire time of one frame at the configured clock."""
        return len(bytes_to_bits(encode_frame(frame))) / self.clock_hz

    def respond(self, payload: bytes, command: Command = Command.READ_COUNTERS, address: int = 0) -> Frame:
        """Build a chip-to-host response frame.  The wire crossing (and
        its transcript/trace record) happens when the frame is pushed
        through :meth:`transfer` with ``direction=CHIP_TO_HOST``."""
        return Frame(command=command, address=address, payload=payload)


def pack_counters(counts: list[int], bits_per_counter: int = 24) -> bytes:
    """Serialise pixel counter values for READ_COUNTERS responses."""
    if bits_per_counter % 8:
        raise ValueError("counter width must be a byte multiple for packing")
    nbytes = bits_per_counter // 8
    out = bytearray()
    for count in counts:
        if count < 0 or count >= (1 << bits_per_counter):
            raise ValueError(f"count {count} does not fit {bits_per_counter} bits")
        out.extend(count.to_bytes(nbytes, "big"))
    return bytes(out)


def unpack_counters(data: bytes, bits_per_counter: int = 24) -> list[int]:
    """Inverse of :func:`pack_counters`."""
    if bits_per_counter % 8:
        raise ValueError("counter width must be a byte multiple for packing")
    nbytes = bits_per_counter // 8
    if len(data) % nbytes:
        raise ValueError("data length is not a whole number of counters")
    return [int.from_bytes(data[i : i + nbytes], "big") for i in range(0, len(data), nbytes)]
