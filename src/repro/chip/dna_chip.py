"""The 16x8 electrochemical DNA microarray chip (Fig. 4).

"The chips consist of a 8x16 sensor array including peripheral circuitry
(bandgap and current references, auto-calibration circuits, D/A-
converters to provide the required voltages for the electrochemical
operation) and 6 pin interface for power supply and serial digital data
transmission."  Basic CMOS process: Lmin = 0.5 um, tox = 15 nm, VDD = 5 V.

The model wires together:
  * 128 sensor pixels, each a Fig. 3 sawtooth ADC with its own drawn
    manufacturing variation,
  * a bandgap + reference-current fanout + two electrode DACs periphery,
  * the 6-pin serial protocol for configuration and counter readout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.process import C5_PROCESS, ProcessSpec
from ..core.rng import RngLike, ensure_rng, spawn_children
from ..core.units import fF
from ..devices.bandgap import BandgapReference
from ..devices.current_mirror import ReferenceCurrentFanout
from ..devices.dac import ResistorStringDac
from ..dna.assay import AssayResult
from ..electrochem.redox_cycling import RedoxCyclingSensor
from ..pixel.pixel import DnaSensorPixel, PixelVariation
from .registers import RegisterFile, dna_chip_registers
from .sequencer import SiteSequence
from .serial_interface import (
    CHIP_TO_HOST,
    Command,
    Frame,
    FrameError,
    SerialLink,
    pack_counters,
    unpack_counters,
)


#: Register address map of the DNA chip's serial protocol — the single
#: source of truth shared with the vectorized backend's chip model.
DNA_REGISTER_ADDRESSES = {
    "generator_dac": 0x00,
    "collector_dac": 0x01,
    "frame_exponent": 0x02,
    "calibration_enable": 0x03,
    "reference_current_sel": 0x04,
}


def counter_chunk_bytes(counter_bits: int) -> int:
    """Largest whole-counter payload that fits a <=255-byte frame."""
    if counter_bits < 8 or counter_bits % 8:
        raise ValueError("counter width must be a byte multiple for packing")
    return 252 - (252 % (counter_bits // 8))


def write_dna_register(link: SerialLink, registers: RegisterFile, name: str, value: int) -> None:
    """One register write through the full serial stack — the protocol
    shared by the object chip and its vectorized twin."""
    frame = Frame(Command.WRITE_REG, DNA_REGISTER_ADDRESSES[name], bytes([value & 0xFF]))
    received = link.transfer(frame)
    registers.write(received.address, received.payload[0])


@dataclass
class ChipSpecs:
    """Name-plate data of the device (the Fig. 4 caption)."""

    rows: int = 16
    cols: int = 8
    process: ProcessSpec = field(default_factory=lambda: C5_PROCESS)
    pin_count: int = 6
    counter_bits: int = 24

    @property
    def sites(self) -> int:
        return self.rows * self.cols

    def as_rows(self) -> list[tuple[str, str]]:
        return [
            ("sensor array", f"{self.rows} x {self.cols} = {self.sites} sites"),
            ("process", self.process.name),
            ("Lmin", f"{self.process.l_min * 1e6:.2g} um"),
            ("tox", f"{self.process.t_ox * 1e9:.2g} nm"),
            ("VDD", f"{self.process.vdd:.2g} V"),
            ("interface", f"{self.pin_count}-pin serial"),
            ("counter width", f"{self.counter_bits} bits"),
        ]


class DnaMicroarrayChip:
    """Behavioural model of the full Fig. 4 device.

    Parameters
    ----------
    specs:
        Array dimensions and process.
    rng:
        Seeds every per-instance variation on the die (pixels, DACs,
        bandgap, reference tree).
    """

    def __init__(
        self,
        specs: ChipSpecs | None = None,
        rng: RngLike = None,
        recorder: object = None,
    ) -> None:
        self.specs = specs or ChipSpecs()
        # A trace recorder (duck-typed; see repro.trace) observing the
        # digital path: register traffic, serial frames, sample slots.
        self.recorder = recorder
        generator = ensure_rng(rng)
        pixel_rngs = spawn_children(generator, self.specs.sites)
        self.pixels: list[DnaSensorPixel] = [
            DnaSensorPixel(
                PixelVariation.draw(pixel_rng),
                counter_bits=self.specs.counter_bits,
            )
            for pixel_rng in pixel_rngs
        ]
        self.bandgap = BandgapReference.sample(generator)
        self.generator_dac = ResistorStringDac.sample(generator, bits=8, v_low=0.0, v_high=2.0)
        self.collector_dac = ResistorStringDac.sample(generator, bits=8, v_low=-1.0, v_high=1.0)
        self.reference_tree = ReferenceCurrentFanout.build(
            master_current=self.bandgap.reference_current(1.2e6),
            count=8,
            rng=generator,
        )
        self.registers: RegisterFile = dna_chip_registers(recorder=recorder)
        self.link = SerialLink(recorder=recorder)
        self.sequence = SiteSequence(
            rows=self.specs.rows,
            cols=self.specs.cols,
            counter_bits=self.specs.counter_bits,
        )
        self._configured = False
        # Latest per-site counts, flat row-major — held as an ndarray so
        # readout/serial paths index it instead of rebuilding list[int]
        # copies of the rows x cols loop.
        self._last_counts: np.ndarray = np.zeros(self.specs.sites, dtype=np.int64)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _site_index(self, row: int, col: int) -> int:
        if not (0 <= row < self.specs.rows and 0 <= col < self.specs.cols):
            raise IndexError(f"site ({row}, {col}) outside array")
        return row * self.specs.cols + col

    def pixel_at(self, row: int, col: int) -> DnaSensorPixel:
        return self.pixels[self._site_index(row, col)]

    # ------------------------------------------------------------------
    # Configuration (over the serial link, as on silicon)
    # ------------------------------------------------------------------
    def configure_bias(self, v_generator: float, v_collector: float) -> bool:
        """Program the electrode DACs and validate redox-cycling bias.

        Returns True when every pixel's sensor is correctly biased.
        """
        if self.recorder is not None:
            self.recorder.seq_state("configure", detail="electrode DAC programming")
        gen_code = self.generator_dac.code_for_voltage(v_generator)
        col_code = self.collector_dac.code_for_voltage(v_collector)
        self._write_register("generator_dac", gen_code)
        self._write_register("collector_dac", col_code)
        v_gen_actual = self.generator_dac.output(gen_code)
        v_col_actual = self.collector_dac.output(col_code)
        all_ok = True
        for pixel in self.pixels:
            ok = pixel.sensor.check_bias(v_gen_actual, v_col_actual)
            all_ok = all_ok and ok
        self._configured = all_ok
        return all_ok

    def _write_register(self, name: str, value: int) -> None:
        write_dna_register(self.link, self.registers, name, value)

    # ------------------------------------------------------------------
    # Auto-calibration
    # ------------------------------------------------------------------
    def auto_calibrate(self, frame_s: float = 0.05, rng: RngLike = None) -> np.ndarray:
        """Run the on-chip calibration: apply a branch of the reference
        tree (divided 100:1 into the ADC's mid-range) to every pixel and
        store gain corrections.  Returns the array of correction
        factors."""
        if self.recorder is not None:
            self.recorder.seq_state("calibrate", detail=f"reference frame {frame_s} s")
        generator = ensure_rng(rng)
        branch_currents = self.reference_tree.branch_currents() / 100.0
        corrections = np.empty(self.specs.sites)
        for index, pixel in enumerate(self.pixels):
            i_ref = float(branch_currents[index % len(branch_currents)])
            corrections[index] = pixel.calibrate(i_ref, frame_s, rng=generator)
        self._write_register("calibration_enable", 1)
        if self.recorder is not None:
            self.recorder.advance(frame_s)  # the calibration counting frame
        return corrections

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measure_assay(
        self, assay: AssayResult, frame_s: float = 1.0, rng: RngLike = None
    ) -> np.ndarray:
        """Digitise an assay outcome: every site's surface concentration
        is re-transduced by that pixel's own sensor and converted by its
        own ADC.  Returns the (rows x cols) count matrix."""
        if assay.rows != self.specs.rows or assay.cols != self.specs.cols:
            raise ValueError(
                f"assay grid {assay.rows}x{assay.cols} does not match the "
                f"{self.specs.rows}x{self.specs.cols} chip"
            )
        if self.recorder is not None:
            self.recorder.seq_state("measure", detail=f"assay frame {frame_s} s")
        generator = ensure_rng(rng)
        counts = np.zeros((self.specs.rows, self.specs.cols), dtype=int)
        for site in assay.sites:
            pixel = self.pixel_at(site.row, site.col)
            counts[site.row, site.col] = pixel.measure_concentration(
                site.surface_concentration, frame_s, rng=generator
            )
        self._last_counts = counts.reshape(-1).astype(np.int64)
        if self.recorder is not None:
            self.recorder.advance(frame_s)  # the counting frame
        return counts

    def measure_currents(
        self, currents: np.ndarray, frame_s: float = 1.0, rng: RngLike = None
    ) -> np.ndarray:
        """Directly digitise a matrix of sensor currents (test mode)."""
        currents = np.asarray(currents, dtype=float)
        if currents.shape != (self.specs.rows, self.specs.cols):
            raise ValueError(f"expected {self.specs.rows}x{self.specs.cols} currents")
        if self.recorder is not None:
            self.recorder.seq_state("measure", detail=f"current pattern frame {frame_s} s")
        generator = ensure_rng(rng)
        counts = np.zeros_like(currents, dtype=int)
        for row in range(self.specs.rows):
            for col in range(self.specs.cols):
                pixel = self.pixel_at(row, col)
                counts[row, col] = pixel.convert_current(
                    float(currents[row, col]), frame_s, rng=generator
                )
        self._last_counts = counts.reshape(-1).astype(np.int64)
        if self.recorder is not None:
            self.recorder.advance(frame_s)  # the counting frame
        return counts

    def current_estimates(self, counts: np.ndarray, frame_s: float) -> np.ndarray:
        """Host-side conversion of counts to amperes with stored
        per-pixel calibration.

        Evaluated as one :mod:`repro.engine.kernels` call over the
        gathered per-pixel parameters (same formula and operation order
        as the former per-pixel loop, bit-identical results).
        """
        from ..engine import kernels

        counts = np.trunc(np.asarray(counts))  # counts are whole pulses
        if counts.shape != (self.specs.rows, self.specs.cols):
            raise ValueError("count matrix shape mismatch")
        if frame_s <= 0:
            raise ValueError("frame must be positive")
        cint_nominal = np.array(
            [
                pixel.adc.cint.capacitance_f / (1.0 + pixel.variation.cint_relative_error)
                for pixel in self.pixels
            ]
        ).reshape(counts.shape)
        gains = np.array([pixel.gain_correction for pixel in self.pixels]).reshape(counts.shape)
        return kernels.host_current_estimate(counts, frame_s, cint_nominal, gains)

    # ------------------------------------------------------------------
    # Serial readout (the 6-pin data path)
    # ------------------------------------------------------------------
    def read_counters_serial(
        self,
        flip_bits: list[int] | None = None,
        flip_frame: int = 0,
        flip_frames: "dict[int, list[int]] | None" = None,
    ) -> list[int]:
        """Full digital path: pack the latest counts, push them through
        the bit-level link, unpack on the host side.

        ``flip_bits`` injects bit corruption into response chunk number
        ``flip_frame`` (the checksum must catch it and raise
        :class:`~repro.chip.serial_interface.FrameError`).  For
        multi-frame corruption pass ``flip_frames``, a mapping of chunk
        index -> bit positions; it overrides the singular pair.  A
        decode failure carries the failing chunk index on the raised
        error as ``frame_index``."""
        if self.recorder is not None:
            self.recorder.seq_state("readout", detail="serial counter shift-out")
        request = Frame(Command.READ_COUNTERS, 0x00)
        self.link.transfer(request)
        if self.recorder is not None:
            # One sample-slot event per site, timestamped by the
            # SiteSequence schedule relative to the start of shift-out.
            base = self.recorder.now
            for row in range(self.specs.rows):
                for col in range(self.specs.cols):
                    self.recorder.seq_sample(
                        row,
                        col,
                        time_s=base + self.sequence.site_time_s(row, col),
                        slot_s=self.sequence.site_slot_s,
                        slot=row * self.specs.cols + col,
                    )
        payload = pack_counters(self._last_counts.tolist(), self.specs.counter_bits)
        # Large payloads are split into <=255-byte frames.
        chunk = counter_chunk_bytes(self.specs.counter_bits)
        if flip_frames is None:
            flip_frames = {flip_frame: flip_bits} if flip_bits else {}
        received = bytearray()
        for index, start in enumerate(range(0, len(payload), chunk)):
            part = payload[start : start + chunk]
            response = self.link.respond(part)
            try:
                roundtrip = self.link.transfer(
                    response,
                    flip_bits=flip_frames.get(index),
                    direction=CHIP_TO_HOST,
                )
            except FrameError as exc:
                exc.frame_index = index  # type: ignore[attr-defined]
                raise
            received.extend(roundtrip.payload)
        return unpack_counters(bytes(received), self.specs.counter_bits)

    def inject_dead_pixel(self, row: int, col: int) -> None:
        """Failure injection: make one pixel's leakage exceed the signal
        floor so it never fires."""
        pixel = self.pixel_at(row, col)
        pixel.adc.leakage_a = 10e-12

    def dead_pixel_map(self) -> np.ndarray:
        from ..engine import kernels

        leakage = np.array([pixel.adc.leakage_a for pixel in self.pixels])
        return kernels.dead_pixel_mask(leakage).reshape(self.specs.rows, self.specs.cols)

    # ------------------------------------------------------------------
    # Vectorized-backend bridge
    # ------------------------------------------------------------------
    def vectorized(self) -> "object":
        """This chip's drawn state wrapped as a
        :class:`~repro.engine.vchip.VectorizedDnaChip` twin — same pixel
        parameters, periphery and calibration, evaluated as array
        kernels (see :mod:`repro.engine` for the parity contract)."""
        from ..engine import VectorizedDnaChip

        return VectorizedDnaChip.from_object_chip(self)
