"""Scan sequencing and timing arithmetic.

The neurochip numbers in the paper lock together:

    128 x 128 pixels at 2 kframe/s
    -> row time = 1/(2000 * 128)            = 3.906 us
    -> 16 channels, 8-to-1 multiplexer      => 128 columns
    -> mux slot = row_time / 8              = 488 ns
    -> per-channel pixel rate               = 2.048 MHz  (< 4 MHz amp BW)
    -> aggregate pixel rate = 16 channels   = 32.77 Mpixel/s (32 MHz driver)

:class:`ScanTiming` derives all of these from (rows, cols, channels,
frame rate) and validates them against the amplifier bandwidths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ScanTiming:
    """Timing solution of a row-parallel, column-multiplexed scanner.

    Parameters
    ----------
    rows, cols:
        Array dimensions.
    channels:
        Parallel readout channels (the paper: 16).
    frame_rate_hz:
        Full-frame rate (the paper: 2000).
    """

    rows: int
    cols: int
    channels: int
    frame_rate_hz: float

    def __post_init__(self) -> None:
        if min(self.rows, self.cols, self.channels) < 1:
            raise ValueError("dimensions and channels must be positive")
        if self.frame_rate_hz <= 0:
            raise ValueError("frame rate must be positive")
        if self.cols % self.channels:
            raise ValueError(
                f"{self.cols} columns do not divide evenly over {self.channels} channels"
            )

    @property
    def mux_depth(self) -> int:
        """Columns per channel (the paper's 8-to-1 multiplexer)."""
        return self.cols // self.channels

    @property
    def frame_time_s(self) -> float:
        return 1.0 / self.frame_rate_hz

    @property
    def row_time_s(self) -> float:
        """Time budget per row (rows scanned sequentially)."""
        return self.frame_time_s / self.rows

    @property
    def slot_time_s(self) -> float:
        """Time per multiplexer slot within a row."""
        return self.row_time_s / self.mux_depth

    @property
    def channel_pixel_rate_hz(self) -> float:
        """Pixels per second through one readout channel."""
        return 1.0 / self.slot_time_s

    @property
    def aggregate_pixel_rate_hz(self) -> float:
        """Total pixel rate leaving the chip."""
        return self.channel_pixel_rate_hz * self.channels

    # ------------------------------------------------------------------
    def settling_ok(self, amplifier_bw_hz: float, settle_taus: float = 3.0) -> bool:
        """Can a single-pole amplifier settle within one mux slot?

        Requires ``settle_taus`` time constants inside the slot.
        """
        if amplifier_bw_hz <= 0:
            raise ValueError("bandwidth must be positive")
        tau = 1.0 / (2.0 * math.pi * amplifier_bw_hz)
        return settle_taus * tau <= self.slot_time_s

    def max_frame_rate_hz(self, amplifier_bw_hz: float, settle_taus: float = 3.0) -> float:
        """Largest frame rate the amplifier bandwidth supports."""
        tau = 1.0 / (2.0 * math.pi * amplifier_bw_hz)
        min_slot = settle_taus * tau
        return 1.0 / (min_slot * self.mux_depth * self.rows)

    def pixel_order(self) -> list[tuple[int, int]]:
        """(row, col) visit order: rows sequential, channels parallel,
        mux slots sequential.  Within one slot, channel k reads column
        k * mux_depth + slot."""
        order = []
        for row in range(self.rows):
            for slot in range(self.mux_depth):
                for channel in range(self.channels):
                    order.append((row, channel * self.mux_depth + slot))
        return order

    def sample_time_s(self, row: int, col: int) -> float:
        """Time offset of a pixel's sample within the frame."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"pixel ({row}, {col}) outside array")
        slot = col % self.mux_depth
        return row * self.row_time_s + slot * self.slot_time_s


# The paper's neurochip timing, used as the default everywhere.
NEURO_SCAN = ScanTiming(rows=128, cols=128, channels=16, frame_rate_hz=2000.0)


@dataclass(frozen=True)
class SiteSequence:
    """Sequential per-site conversion schedule of the DNA chip.

    The 16x8 chip converts all 128 sites in parallel (each has its own
    ADC) but reads the counters out serially; this class budgets the
    full measurement: frame time + serial readout.
    """

    rows: int = 16
    cols: int = 8
    counter_bits: int = 24
    serial_clock_hz: float = 1e6

    def __post_init__(self) -> None:
        if min(self.rows, self.cols) < 1:
            raise ValueError("dimensions must be positive")
        if self.counter_bits < 1 or self.serial_clock_hz <= 0:
            raise ValueError("invalid serial parameters")

    @property
    def sites(self) -> int:
        return self.rows * self.cols

    @property
    def site_slot_s(self) -> float:
        """Serial shift time of one counter — the per-site readout slot."""
        return self.counter_bits / self.serial_clock_hz

    def site_time_s(self, row: int, col: int) -> float:
        """Offset of a site's counter within the readout stream (sites
        shift out row-major, one counter per slot)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"site ({row}, {col}) outside array")
        return (row * self.cols + col) * self.site_slot_s

    def readout_time_s(self, overhead_bits: int = 40) -> float:
        """Serial time to shift out every counter once."""
        total_bits = self.sites * self.counter_bits + overhead_bits
        return total_bits / self.serial_clock_hz

    def measurement_time_s(self, frame_s: float) -> float:
        if frame_s <= 0:
            raise ValueError("frame must be positive")
        return frame_s + self.readout_time_s()
