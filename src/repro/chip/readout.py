"""Resilient host-side readout controller for the serial counter path.

Real hosts do not crash on a corrupted frame — they detect it (the
two's-complement checksum catches any flip set that changes the byte
sum mod 256), retry with bounded backoff, and when a chunk stays
unreadable they mark its sites dead and keep going.  This module is
that controller for the DNA chip's READ_COUNTERS path:

* **detect** — frame decode failure (`FrameError`) or register
  read-back mismatch against the host's shadow of the configuration
  registers;
* **retry** — up to ``max_retries`` re-transfers per chunk, waiting
  ``backoff_s * backoff_factor**attempt`` of *simulated* clock between
  attempts (the trace recorder's clock, never wall time);
* **degrade** — a chunk that exhausts its retries is zero-filled and
  its counter span reported in ``dead_sites`` instead of raising.

Every detect/retry/recover/give-up decision lands in the trace as a
typed ``readout.*`` event, so a capture replays the controller's exact
decision sequence.  Fault injection reaches this path only through the
duck-typed ``injector`` seam on the link — no faults import here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dna_chip import DnaMicroarrayChip, counter_chunk_bytes
from .serial_interface import (
    CHIP_TO_HOST,
    HOST_TO_CHIP,
    Command,
    Frame,
    FrameError,
    pack_counters,
    unpack_counters,
)


@dataclass(frozen=True)
class ReadoutPolicy:
    """Bounded-retry policy; all waiting is simulated-clock time."""

    max_retries: int = 3
    backoff_s: float = 1e-4
    backoff_factor: float = 2.0
    verify_registers: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0.0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )


@dataclass
class ReadoutOutcome:
    """What the host recovered, and the accounting of how."""

    counters: list[int] = field(default_factory=list)
    dead_sites: tuple[int, ...] = ()
    frames_total: int = 0
    frames_corrupted: int = 0
    frames_recovered: int = 0
    frames_lost: int = 0
    retries: int = 0
    registers_checked: int = 0
    registers_corrupted: int = 0
    registers_restored: int = 0
    stall_s_total: float = 0.0


def _verify_registers(
    chip: DnaMicroarrayChip, expected: dict[str, int], outcome: ReadoutOutcome
) -> None:
    """Read back every register against the host shadow; rewrite
    mismatched host-writable ones (read-only upsets stay detected but
    unrecoverable)."""
    recorder = chip.recorder
    for name in sorted(expected):
        outcome.registers_checked += 1
        value = chip.registers.read(name)
        if value == expected[name]:
            continue
        outcome.registers_corrupted += 1
        if recorder is not None:
            recorder.readout_detect(
                f"reg.{name}",
                error=f"read-back mismatch: got {value:#x}, shadow {expected[name]:#x}",
            )
        try:
            chip.registers.write(name, expected[name])
        except ValueError:
            continue
        outcome.registers_restored += 1
        if recorder is not None:
            recorder.readout_recover(f"reg.{name}", attempts=1)


def _transfer_with_retry(
    chip: DnaMicroarrayChip,
    frame: Frame,
    direction: str,
    policy: ReadoutPolicy,
    outcome: ReadoutOutcome,
    frame_index: int | None,
    channel: str,
) -> tuple[Frame | None, int]:
    """Push one frame, retrying with deterministic backoff.

    Returns ``(decoded, failures)`` — ``decoded`` is ``None`` after
    give-up.  Each attempt is a real wire crossing (the injector
    re-draws), so transient corruption usually clears on retry.
    """
    recorder = chip.recorder
    failures = 0
    for attempt in range(policy.max_retries + 1):
        try:
            received = chip.link.transfer(frame, direction=direction)
        except FrameError as exc:
            failures += 1
            if recorder is not None:
                recorder.readout_detect(
                    channel, error=str(exc), frame=frame_index, attempt=attempt
                )
            if attempt >= policy.max_retries:
                return None, failures
            delay = policy.backoff_s * policy.backoff_factor**attempt
            outcome.retries += 1
            if recorder is not None:
                recorder.readout_retry(
                    channel, delay_s=delay, frame=frame_index, attempt=attempt + 1
                )
                recorder.advance(delay)
            continue
        return received, failures
    return None, failures  # pragma: no cover - loop always returns


def read_counters_resilient(
    chip: DnaMicroarrayChip, policy: ReadoutPolicy | None = None
) -> ReadoutOutcome:
    """Run the full READ_COUNTERS sequence under the resilient policy.

    Mirrors :meth:`DnaMicroarrayChip.read_counters_serial` chunk for
    chunk (identical counters when nothing is injected) but never
    raises on corruption: unrecoverable chunks are zero-filled with
    their counter spans reported in ``dead_sites``.
    """
    policy = policy or ReadoutPolicy()
    recorder = chip.recorder
    injector = getattr(chip.link, "injector", None)
    outcome = ReadoutOutcome()
    if recorder is not None:
        recorder.seq_state("readout", detail="resilient serial counter shift-out")

    # Register integrity: the shadow is what the host believes it wrote.
    expected = chip.registers.dump()
    if injector is not None:
        injector.corrupt_registers(chip.registers)
    if policy.verify_registers:
        _verify_registers(chip, expected, outcome)

    counts = chip._last_counts
    if injector is not None:
        full_scale = (1 << chip.specs.counter_bits) - 1
        stuck = injector.stuck_sites(chip.specs.sites, full_scale)
        if stuck:
            counts = counts.copy()
            for site, value in stuck:
                counts[site] = value

    payload = pack_counters(counts.tolist(), chip.specs.counter_bits)
    chunk = counter_chunk_bytes(chip.specs.counter_bits)
    bytes_per_counter = chip.specs.counter_bits // 8
    spans = [
        (index, start, payload[start : start + chunk])
        for index, start in enumerate(range(0, len(payload), chunk))
    ]
    outcome.frames_total = len(spans)

    request, _ = _transfer_with_retry(
        chip,
        Frame(Command.READ_COUNTERS, 0x00),
        direction=HOST_TO_CHIP,
        policy=policy,
        outcome=outcome,
        frame_index=None,
        channel="serial.request",
    )
    if request is None:
        # The chip never saw the command: the whole array is lost.
        if recorder is not None:
            recorder.readout_giveup(
                "serial.request",
                attempts=policy.max_retries + 1,
                sites_lost=chip.specs.sites,
            )
        outcome.frames_lost = len(spans)
        outcome.counters = [0] * chip.specs.sites
        outcome.dead_sites = tuple(range(chip.specs.sites))
        return outcome

    if recorder is not None:
        # Same sample-slot schedule as the plain readout.
        base = recorder.now
        for row in range(chip.specs.rows):
            for col in range(chip.specs.cols):
                recorder.seq_sample(
                    row,
                    col,
                    time_s=base + chip.sequence.site_time_s(row, col),
                    slot_s=chip.sequence.site_slot_s,
                    slot=row * chip.specs.cols + col,
                )

    received = bytearray()
    dead: list[int] = []
    for index, start, part in spans:
        if injector is not None:
            stall = injector.stall_s(index)
            if stall > 0.0:
                outcome.stall_s_total += stall
                if recorder is not None:
                    recorder.advance(stall)
        response = chip.link.respond(part)
        roundtrip, failures = _transfer_with_retry(
            chip,
            response,
            direction=CHIP_TO_HOST,
            policy=policy,
            outcome=outcome,
            frame_index=index,
            channel="serial",
        )
        if failures:
            outcome.frames_corrupted += 1
        if roundtrip is None:
            outcome.frames_lost += 1
            first = start // bytes_per_counter
            n_sites = len(part) // bytes_per_counter
            dead.extend(range(first, first + n_sites))
            if recorder is not None:
                recorder.readout_giveup(
                    "serial",
                    attempts=policy.max_retries + 1,
                    frame=index,
                    sites_lost=n_sites,
                )
            received.extend(b"\x00" * len(part))
        else:
            if failures:
                outcome.frames_recovered += 1
                if recorder is not None:
                    recorder.readout_recover(
                        "serial", attempts=failures + 1, frame=index
                    )
            received.extend(roundtrip.payload)

    outcome.counters = unpack_counters(bytes(received), chip.specs.counter_bits)
    outcome.dead_sites = tuple(dead)
    return outcome
