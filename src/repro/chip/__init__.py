"""Full-chip integration: DNA microarray chip, neurochip, serial interface."""

from .dna_chip import ChipSpecs, DnaMicroarrayChip
from .neuro_chip import NeuralRecordingChip, RecordingResult
from .registers import (
    RegisterFile,
    RegisterSpec,
    dna_chip_registers,
    neuro_chip_registers,
)
from .sequencer import NEURO_SCAN, ScanTiming, SiteSequence
from .serial_interface import (
    Command,
    Frame,
    FrameError,
    SerialLink,
    bits_to_bytes,
    bytes_to_bits,
    checksum,
    decode_frame,
    encode_frame,
    pack_counters,
    unpack_counters,
)

__all__ = [
    "ChipSpecs",
    "Command",
    "DnaMicroarrayChip",
    "Frame",
    "FrameError",
    "NEURO_SCAN",
    "NeuralRecordingChip",
    "RecordingResult",
    "RegisterFile",
    "RegisterSpec",
    "ScanTiming",
    "SerialLink",
    "SiteSequence",
    "bits_to_bytes",
    "bytes_to_bits",
    "checksum",
    "decode_frame",
    "dna_chip_registers",
    "encode_frame",
    "neuro_chip_registers",
    "pack_counters",
    "unpack_counters",
]
