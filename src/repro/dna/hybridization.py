"""Hybridization and washing kinetics (the Fig. 2 phenomenology).

Surface hybridization follows Langmuir kinetics: probes capture targets
at rate k_on * c and release them at k_off; mismatched duplexes release
exponentially faster (each mismatch destabilises the duplex by roughly a
fixed free-energy increment).  The washing step removes unbound and
weakly bound material: matched sites keep their double-stranded DNA,
mismatched sites lose it — which is precisely what Fig. 2 f) and g)
depict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class HybridizationKinetics:
    """Rate model for one probe/target pair.

    Parameters
    ----------
    k_on:
        Association rate constant, 1/(mol/m^3 * s).  Literature values
        ~1e3-1e4 1/(M s) = 1-10 1/(mol/m^3 s) for 20-mers on surfaces.
    k_off_match:
        Dissociation rate of the perfect duplex, 1/s.
    mismatch_penalty:
        Multiplicative k_off factor per mismatching base (e / duplex
        destabilisation); 8-30 is typical for internal mismatches in
        short oligos.
    length_factor:
        Longer targets diffuse slower and hybridize slower; k_on is
        scaled by (probe_length / target_length)^0.5.
    """

    k_on: float = 5.0
    k_off_match: float = 1.0e-4
    mismatch_penalty: float = 12.0
    wash_stringency: float = 25.0

    def __post_init__(self) -> None:
        if self.k_on <= 0 or self.k_off_match <= 0:
            raise ValueError("rate constants must be positive")
        if self.mismatch_penalty < 1:
            raise ValueError("mismatch penalty must be >= 1")
        if self.wash_stringency < 1:
            raise ValueError("wash stringency must be >= 1")

    def k_off(self, mismatches: int) -> float:
        """Dissociation rate for a duplex with ``mismatches`` defects."""
        if mismatches < 0:
            raise ValueError("mismatch count must be non-negative")
        return self.k_off_match * self.mismatch_penalty**mismatches

    def k_on_effective(self, probe_length: int, target_length: int) -> float:
        """Association rate adjusted for target size (long targets are
        slow: the paper notes targets 2-3 decades longer than probes)."""
        if probe_length <= 0 or target_length <= 0:
            raise ValueError("lengths must be positive")
        if target_length < probe_length:
            target_length = probe_length
        return self.k_on * math.sqrt(probe_length / target_length)

    # ------------------------------------------------------------------
    # Langmuir solutions
    # ------------------------------------------------------------------
    def equilibrium_occupancy(self, concentration: float, mismatches: int = 0) -> float:
        """theta_eq = k_on c / (k_on c + k_off)."""
        if concentration < 0:
            raise ValueError("concentration must be non-negative")
        on = self.k_on * concentration
        off = self.k_off(mismatches)
        return on / (on + off)

    def occupancy_after(
        self,
        duration_s: float,
        concentration: float,
        mismatches: int = 0,
        initial: float = 0.0,
        probe_length: int = 20,
        target_length: int = 20,
    ) -> float:
        """Closed-form Langmuir relaxation after ``duration_s`` of
        exposure to ``concentration`` of target."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if not 0.0 <= initial <= 1.0:
            raise ValueError("initial occupancy must lie in [0, 1]")
        on = self.k_on_effective(probe_length, target_length) * concentration
        off = self.k_off(mismatches)
        rate = on + off
        theta_eq = on / rate if rate > 0 else 0.0
        return theta_eq + (initial - theta_eq) * math.exp(-rate * duration_s)

    def occupancy_after_wash(
        self,
        duration_s: float,
        mismatches: int = 0,
        initial: float = 1.0,
    ) -> float:
        """Occupancy decay during the washing step.

        Washing uses low-salt, flowing buffer: concentration ~ 0 and the
        dissociation rate is raised by ``wash_stringency`` (same factor
        for all duplexes; mismatched ones are already k_off-penalised, so
        they strip first)."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if not 0.0 <= initial <= 1.0:
            raise ValueError("initial occupancy must lie in [0, 1]")
        off = self.k_off(mismatches) * self.wash_stringency
        return initial * math.exp(-off * duration_s)

    def discrimination_ratio(
        self,
        hybridization_s: float,
        wash_s: float,
        concentration: float,
        mismatches: int = 1,
        probe_length: int = 20,
        target_length: int = 20,
    ) -> float:
        """Match/mismatch occupancy ratio after the full protocol — the
        figure of merit of the washing step."""
        match = self.occupancy_after(
            hybridization_s, concentration, 0, 0.0, probe_length, target_length
        )
        match = self.occupancy_after_wash(wash_s, 0, match)
        mm = self.occupancy_after(
            hybridization_s, concentration, mismatches, 0.0, probe_length, target_length
        )
        mm = self.occupancy_after_wash(wash_s, mismatches, mm)
        if mm <= 0:
            return float("inf")
        return match / mm


DEFAULT_KINETICS = HybridizationKinetics()


@dataclass(frozen=True)
class ProbeSiteState:
    """Occupancy bookkeeping for one array site through the protocol."""

    occupancy_after_hybridization: float
    occupancy_after_wash: float
    mismatches: int

    def retained_fraction(self) -> float:
        if self.occupancy_after_hybridization <= 0:
            return 0.0
        return self.occupancy_after_wash / self.occupancy_after_hybridization
