"""DNA sequence algebra.

Probes on the microarray are 15-40-mers (Fig. 2 caption); targets are up
to 2-3 orders of magnitude longer.  The hybridization model only needs
the probe-facing subsequence, so targets carry a recognition region plus
a nominal total length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.rng import RngLike, ensure_rng

_BASES = "ACGT"
_COMPLEMENT = {"A": "T", "T": "A", "C": "G", "G": "C"}


class DnaSequence:
    """An immutable 5'->3' DNA string over {A, C, G, T}."""

    __slots__ = ("_bases",)

    def __init__(self, bases: str) -> None:
        bases = bases.upper().replace(" ", "")
        if not bases:
            raise ValueError("empty DNA sequence")
        invalid = set(bases) - set(_BASES)
        if invalid:
            raise ValueError(f"invalid bases {sorted(invalid)} in sequence")
        self._bases = bases

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return self._bases

    def __repr__(self) -> str:
        return f"DnaSequence({self._bases!r})"

    def __len__(self) -> int:
        return len(self._bases)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DnaSequence):
            return self._bases == other._bases
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bases)

    def __getitem__(self, index) -> str:
        return self._bases[index]

    # ------------------------------------------------------------------
    # Biology
    # ------------------------------------------------------------------
    def complement(self) -> "DnaSequence":
        """Base-wise complement (not reversed)."""
        return DnaSequence("".join(_COMPLEMENT[b] for b in self._bases))

    def reverse_complement(self) -> "DnaSequence":
        """The strand that hybridizes with this one."""
        return DnaSequence("".join(_COMPLEMENT[b] for b in reversed(self._bases)))

    def gc_content(self) -> float:
        """Fraction of G/C bases (duplex stability proxy)."""
        gc = sum(1 for b in self._bases if b in "GC")
        return gc / len(self._bases)

    def melting_temperature_c(self) -> float:
        """Approximate duplex melting temperature in Celsius.

        Wallace rule for short oligos (<14), GC-fraction formula
        otherwise — accurate enough to rank probe stabilities.
        """
        n = len(self._bases)
        at = sum(1 for b in self._bases if b in "AT")
        gc = n - at
        if n < 14:
            return 2.0 * at + 4.0 * gc
        return 64.9 + 41.0 * (gc - 16.4) / n

    def mismatches_against(self, probe: "DnaSequence") -> int:
        """Number of mismatched positions when ``probe`` is aligned
        against the reverse complement of this sequence's best window.

        The probe hybridizes to a target if the target contains a region
        (anti-)complementary to it.  We slide the probe's reverse
        complement along this sequence and return the minimum Hamming
        distance over all alignments (full overlap only).
        """
        pattern = str(probe.reverse_complement())
        text = self._bases
        if len(pattern) > len(text):
            # Probe longer than target region: count overhang as mismatch.
            best = self._hamming(pattern[: len(text)], text) + (len(pattern) - len(text))
            return best
        best = len(pattern)
        for start in range(len(text) - len(pattern) + 1):
            window = text[start : start + len(pattern)]
            distance = self._hamming(pattern, window)
            if distance < best:
                best = distance
                if best == 0:
                    break
        return best

    def is_perfect_match_for(self, probe: "DnaSequence") -> bool:
        return self.mismatches_against(probe) == 0

    @staticmethod
    def _hamming(a: str, b: str) -> int:
        return sum(1 for x, y in zip(a, b) if x != y)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def random(cls, length: int, rng: RngLike = None) -> "DnaSequence":
        if length < 1:
            raise ValueError("length must be positive")
        generator = ensure_rng(rng)
        indices = generator.integers(0, 4, size=length)
        return cls("".join(_BASES[i] for i in indices))

    def with_mismatches(self, count: int, rng: RngLike = None) -> "DnaSequence":
        """Return a copy with exactly ``count`` point substitutions —
        used to build the Fig. 2 mismatch test sites."""
        if not 0 <= count <= len(self):
            raise ValueError(f"cannot place {count} mismatches in a {len(self)}-mer")
        generator = ensure_rng(rng)
        positions = generator.choice(len(self), size=count, replace=False)
        bases = list(self._bases)
        for pos in positions:
            current = bases[pos]
            alternatives = [b for b in _BASES if b != current]
            bases[pos] = alternatives[int(generator.integers(0, 3))]
        return DnaSequence("".join(bases))


@dataclass(frozen=True)
class Probe:
    """An immobilized receptor oligo at a known array position."""

    name: str
    sequence: DnaSequence

    def __post_init__(self) -> None:
        if not 5 <= len(self.sequence) <= 60:
            raise ValueError(
                f"probe length {len(self.sequence)} outside practical 5-60 bases"
            )


@dataclass(frozen=True)
class Target:
    """A sample molecule: recognition region plus nominal full length.

    Real targets are "up to 2-3 orders of magnitude longer" than probes
    (Fig. 2 caption); ``total_length`` carries that without storing
    kilobases of sequence.
    """

    name: str
    recognition: DnaSequence
    total_length: int = 0

    def __post_init__(self) -> None:
        if self.total_length and self.total_length < len(self.recognition):
            raise ValueError("total_length cannot be below the recognition region")

    @property
    def length(self) -> int:
        return self.total_length or len(self.recognition)

    def mismatches_with(self, probe: Probe) -> int:
        return self.recognition.mismatches_against(probe.sequence)


def perfect_target_for(probe: Probe, total_length: int = 0, name: str | None = None) -> Target:
    """The fully complementary target of a probe."""
    return Target(
        name=name or f"{probe.name}-target",
        recognition=probe.sequence.reverse_complement(),
        total_length=total_length,
    )
