"""Probe layout: which receptor species sits at which array position.

"Within predefined positions, single-stranded DNA receptor (probe)
molecules are immobilized on the surface of such chips" (Section 2).
The paper's chip is 16x8 = 128 positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.rng import RngLike, ensure_rng
from .sequences import DnaSequence, Probe


@dataclass(frozen=True)
class SpotAssignment:
    """One array position's content."""

    row: int
    col: int
    probe: Probe | None  # None = bare (negative-control) spot
    probe_density: float  # immobilized molecules per m^2


class ProbeLayout:
    """Maps (row, col) -> probe for an R x C array.

    Parameters
    ----------
    rows, cols:
        Array dimensions (paper: 16 x 8).
    default_density:
        Immobilized probe surface density, molecules/m^2 (typ. 3e16,
        i.e. 3e12 /cm^2).
    """

    def __init__(self, rows: int = 16, cols: int = 8, default_density: float = 3.0e16) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be positive")
        if default_density <= 0:
            raise ValueError("probe density must be positive")
        self.rows = rows
        self.cols = cols
        self.default_density = default_density
        self._spots: dict[tuple[int, int], SpotAssignment] = {}

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------
    def _check_position(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"position ({row}, {col}) outside {self.rows}x{self.cols} array")

    def assign(self, row: int, col: int, probe: Probe | None, density: float | None = None) -> None:
        self._check_position(row, col)
        self._spots[(row, col)] = SpotAssignment(
            row=row, col=col, probe=probe,
            probe_density=self.default_density if density is None else density,
        )

    def spot(self, row: int, col: int) -> SpotAssignment:
        self._check_position(row, col)
        if (row, col) not in self._spots:
            return SpotAssignment(row=row, col=col, probe=None, probe_density=0.0)
        return self._spots[(row, col)]

    def assigned_positions(self) -> list[tuple[int, int]]:
        return sorted(self._spots)

    def all_positions(self) -> list[tuple[int, int]]:
        return [(r, c) for r in range(self.rows) for c in range(self.cols)]

    def probes(self) -> list[Probe]:
        """Unique probes in layout order."""
        seen: dict[Probe, None] = {}
        for pos in self.assigned_positions():
            probe = self._spots[pos].probe
            if probe is not None and probe not in seen:
                seen[probe] = None
        return list(seen)

    def replicate_count(self, probe: Probe) -> int:
        return sum(
            1 for spot in self._spots.values() if spot.probe == probe
        )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def tiled(
        cls,
        probes: list[Probe],
        rows: int = 16,
        cols: int = 8,
        replicates: int = 1,
        control_every: int = 0,
        default_density: float = 3.0e16,
    ) -> "ProbeLayout":
        """Fill the array row-major with each probe repeated
        ``replicates`` times; every ``control_every``-th spot is left bare
        as a negative control (0 disables)."""
        if replicates < 1:
            raise ValueError("replicates must be >= 1")
        layout = cls(rows, cols, default_density)
        expanded: list[Probe | None] = []
        for probe in probes:
            expanded.extend([probe] * replicates)
        positions = layout.all_positions()
        probe_iter = iter(expanded)
        for index, (row, col) in enumerate(positions):
            if control_every and (index + 1) % control_every == 0:
                layout.assign(row, col, None)
                continue
            try:
                probe = next(probe_iter)
            except StopIteration:
                break
            layout.assign(row, col, probe)
        return layout

    @classmethod
    def random_panel(
        cls,
        probe_count: int,
        probe_length: int = 20,
        rows: int = 16,
        cols: int = 8,
        rng: RngLike = None,
        **kwargs,
    ) -> "ProbeLayout":
        """Random probe panel, tiled — quick-start material."""
        generator = ensure_rng(rng)
        probes = [
            Probe(f"probe-{i:03d}", DnaSequence.random(probe_length, generator))
            for i in range(probe_count)
        ]
        return cls.tiled(probes, rows=rows, cols=cols, **kwargs)

    def occupancy_map(self, values: dict[tuple[int, int], float]) -> np.ndarray:
        """Arrange a per-position dict into an array image (NaN where
        missing) for report rendering."""
        image = np.full((self.rows, self.cols), np.nan)
        for (row, col), value in values.items():
            self._check_position(row, col)
            image[row, col] = value
        return image
