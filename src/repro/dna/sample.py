"""Analyte samples: which targets at which concentrations.

Concentrations are in mol/m^3 (1 mol/m^3 = 1 mM); microarray samples are
typically pM-nM, i.e. 1e-9 ... 1e-6 mol/m^3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.rng import RngLike, ensure_rng
from .sequences import DnaSequence, Probe, Target, perfect_target_for


@dataclass
class Sample:
    """A solution applied to the whole chip."""

    contents: dict[Target, float] = field(default_factory=dict)

    def add(self, target: Target, concentration: float) -> None:
        if concentration < 0:
            raise ValueError("concentration must be non-negative")
        if target in self.contents:
            self.contents[target] = self.contents[target] + concentration
        else:
            self.contents[target] = concentration

    def concentration_of(self, target: Target) -> float:
        return self.contents.get(target, 0.0)

    def total_concentration(self) -> float:
        return sum(self.contents.values())

    def __len__(self) -> int:
        return len(self.contents)

    def targets(self) -> list[Target]:
        return list(self.contents)

    def diluted(self, factor: float) -> "Sample":
        """Return a new sample diluted by ``factor`` (> 1 dilutes)."""
        if factor <= 0:
            raise ValueError("dilution factor must be positive")
        return Sample({t: c / factor for t, c in self.contents.items()})

    @classmethod
    def for_probes(
        cls,
        probes: list[Probe],
        concentration: float,
        target_length: int = 2000,
        subset: list[int] | None = None,
    ) -> "Sample":
        """Build a sample containing perfect targets for (a subset of)
        the given probes — the standard validation experiment."""
        if concentration < 0:
            raise ValueError("concentration must be non-negative")
        indices = subset if subset is not None else list(range(len(probes)))
        sample = cls()
        for i in indices:
            if not 0 <= i < len(probes):
                raise IndexError(f"probe index {i} out of range")
            sample.add(perfect_target_for(probes[i], total_length=target_length), concentration)
        return sample

    @classmethod
    def random_background(
        cls,
        count: int,
        concentration: float,
        length: int = 30,
        total_length: int = 2000,
        rng: RngLike = None,
    ) -> "Sample":
        """Unrelated sequences at the given concentration — models the
        non-specific background every real sample carries."""
        generator = ensure_rng(rng)
        sample = cls()
        for i in range(count):
            seq = DnaSequence.random(length, generator)
            sample.add(Target(f"background-{i}", seq, total_length), concentration)
        return sample

    def merged_with(self, other: "Sample") -> "Sample":
        merged = Sample(dict(self.contents))
        for target, conc in other.contents.items():
            merged.add(target, conc)
        return merged
