"""DNA microarray application layer: sequences, kinetics, layouts, assays."""

from .assay import AssayProtocol, AssayResult, MicroarrayAssay, SiteResult
from .hybridization import (
    DEFAULT_KINETICS,
    HybridizationKinetics,
    ProbeSiteState,
)
from .quantification import (
    EXTRAPOLATION_MODES,
    CalibrationCurve,
    CalibrationPoint,
    ConcentrationEstimator,
    QuantificationResult,
)
from .sample import Sample
from .sequences import DnaSequence, Probe, Target, perfect_target_for
from .spotting import ProbeLayout, SpotAssignment

__all__ = [
    "AssayProtocol",
    "AssayResult",
    "CalibrationCurve",
    "CalibrationPoint",
    "ConcentrationEstimator",
    "DEFAULT_KINETICS",
    "EXTRAPOLATION_MODES",
    "QuantificationResult",
    "DnaSequence",
    "HybridizationKinetics",
    "MicroarrayAssay",
    "Probe",
    "ProbeLayout",
    "ProbeSiteState",
    "Sample",
    "SiteResult",
    "SpotAssignment",
    "Target",
    "perfect_target_for",
]
