"""Concentration quantification from chip counts.

"The purpose of DNA microarray chips is the parallel investigation
concerning the amount of specific DNA sequences in a given sample" —
i.e. the end product is a *concentration estimate*, not a raw count.
This module closes the loop: it builds a calibration curve from
standard samples measured on the same chip model, then inverts unknown
counts into concentrations with uncertainty from replicate spots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import RngLike, ensure_rng
from .assay import AssayProtocol, MicroarrayAssay
from .sample import Sample
from .sequences import Probe, perfect_target_for
from .spotting import ProbeLayout


@dataclass(frozen=True)
class CalibrationPoint:
    """One standard: known concentration -> median measured count."""

    concentration: float
    median_count: float


#: What :meth:`CalibrationCurve.concentration_for_count` does with a
#: count outside the calibrated window: pin to the edge standard
#: (``"clamp"``, the historical behaviour, now explicit), refuse
#: (``"raise"``), or extend the fitted log-log line (``"fit"``).
EXTRAPOLATION_MODES = ("clamp", "raise", "fit")


@dataclass
class CalibrationCurve:
    """Monotone count-vs-concentration curve with log-log interpolation.

    Inside the calibrated window the curve interpolates through the
    standards exactly; outside it, ``extrapolation`` decides (see
    :data:`EXTRAPOLATION_MODES`).  The global log-log *fit* behind the
    ``"fit"`` mode comes from
    :func:`repro.inference.doseresponse.loglinear_fit` — the one
    log-linear regression in the library.
    """

    points: list[CalibrationPoint]
    extrapolation: str = "clamp"

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("calibration needs at least two standards")
        if self.extrapolation not in EXTRAPOLATION_MODES:
            raise ValueError(
                f"unknown extrapolation mode {self.extrapolation!r}; "
                f"choose from {EXTRAPOLATION_MODES}"
            )
        concs = [p.concentration for p in self.points]
        if any(b <= a for a, b in zip(concs, concs[1:])):
            raise ValueError("standards must have strictly increasing concentrations")
        counts = [p.median_count for p in self.points]
        if any(b <= a for a, b in zip(counts, counts[1:])):
            raise ValueError(
                "counts must increase with concentration (saturated or noisy curve?)"
            )

    @property
    def range(self) -> tuple[float, float]:
        return (self.points[0].concentration, self.points[-1].concentration)

    @property
    def count_range(self) -> tuple[float, float]:
        return (self.points[0].median_count, self.points[-1].median_count)

    def fit(self):
        """The global log-log regression of the standards:
        ``log10(count) = a + b·log10(concentration)``, with covariance
        (an :class:`~repro.inference.doseresponse.LogLinearFit`)."""
        from ..inference.doseresponse import loglinear_fit

        return loglinear_fit(
            [p.concentration for p in self.points],
            [p.median_count for p in self.points],
            log_y=True,
        )

    def concentration_for_count(self, count: float, extrapolation: str | None = None) -> float:
        """Invert the curve (log-log linear interpolation inside the
        calibrated count window).

        Out-of-range counts follow ``extrapolation`` (defaulting to the
        curve's own mode): ``"clamp"`` returns the edge standard's
        concentration, ``"raise"`` raises ``ValueError``, ``"fit"``
        extends the fitted log-log line.  A non-positive count is 0.0
        in every mode (an empty spot is below any calibration).
        """
        mode = self.extrapolation if extrapolation is None else extrapolation
        if mode not in EXTRAPOLATION_MODES:
            raise ValueError(
                f"unknown extrapolation mode {mode!r}; choose from {EXTRAPOLATION_MODES}"
            )
        if count <= 0:
            return 0.0
        low, high = self.count_range
        if not low <= count <= high:
            if mode == "raise":
                raise ValueError(
                    f"count {count:g} outside the calibrated window "
                    f"[{low:g}, {high:g}]; re-measure a diluted/concentrated "
                    f"sample or use extrapolation='clamp'/'fit'"
                )
            if mode == "fit":
                return float(np.asarray(self.fit().invert(count)).item())
        log_counts = np.log10([p.median_count for p in self.points])
        log_concs = np.log10([p.concentration for p in self.points])
        log_c = np.interp(np.log10(count), log_counts, log_concs)
        return float(10.0**log_c)

    def in_range(self, count: float) -> bool:
        return self.points[0].median_count <= count <= self.points[-1].median_count


@dataclass(frozen=True)
class QuantificationResult:
    """Concentration estimate with replicate statistics."""

    probe_name: str
    estimated_concentration: float
    ci_low: float
    ci_high: float
    replicate_counts: tuple[int, ...]
    in_calibrated_range: bool

    @property
    def relative_uncertainty(self) -> float:
        if self.estimated_concentration <= 0:
            return float("inf")
        return (self.ci_high - self.ci_low) / (2.0 * self.estimated_concentration)


class ConcentrationEstimator:
    """Quantifies target concentrations from chip measurements.

    Parameters
    ----------
    chip:
        A configured, calibrated :class:`~repro.chip.dna_chip.DnaMicroarrayChip`.
    layout:
        The probe layout spotted on it.
    protocol:
        Assay protocol used for both standards and unknowns.
    frame_s:
        Counting frame.
    """

    def __init__(self, chip, layout: ProbeLayout, protocol: AssayProtocol | None = None,
                 frame_s: float = 1.0) -> None:
        self.chip = chip
        self.layout = layout
        self.protocol = protocol or AssayProtocol()
        self.frame_s = frame_s
        self._assay = MicroarrayAssay(layout)
        self._curves: dict[str, CalibrationCurve] = {}

    # ------------------------------------------------------------------
    def _probe_sites(self, probe: Probe) -> list[tuple[int, int]]:
        return [
            (spot.row, spot.col)
            for pos in self.layout.assigned_positions()
            for spot in [self.layout.spot(*pos)]
            if spot.probe == probe
        ]

    def _measure(self, sample: Sample, rng: RngLike) -> np.ndarray:
        result = self._assay.run(sample, self.protocol)
        return self.chip.measure_assay(result, frame_s=self.frame_s, rng=rng)

    # ------------------------------------------------------------------
    def calibrate(
        self,
        probe: Probe,
        standard_concentrations: list[float],
        target_length: int = 2000,
        rng: RngLike = None,
    ) -> CalibrationCurve:
        """Measure standards of known concentration, fit the curve."""
        if not standard_concentrations:
            raise ValueError("need at least one standard concentration")
        generator = ensure_rng(rng)
        sites = self._probe_sites(probe)
        if not sites:
            raise ValueError(f"probe {probe.name!r} is not on the layout")
        target = perfect_target_for(probe, total_length=target_length)
        points = []
        for concentration in sorted(standard_concentrations):
            counts = self._measure(Sample({target: concentration}), generator)
            median = float(np.median([counts[r, c] for r, c in sites]))
            points.append(CalibrationPoint(concentration, median))
        curve = CalibrationCurve(points)
        self._curves[probe.name] = curve
        return curve

    def quantify(self, probe: Probe, sample: Sample, rng: RngLike = None) -> QuantificationResult:
        """Estimate the concentration of ``probe``'s target in ``sample``."""
        if probe.name not in self._curves:
            raise KeyError(f"probe {probe.name!r} has no calibration curve")
        generator = ensure_rng(rng)
        curve = self._curves[probe.name]
        sites = self._probe_sites(probe)
        counts = self._measure(sample, generator)
        replicate_counts = tuple(int(counts[r, c]) for r, c in sites)
        estimates = [curve.concentration_for_count(c) for c in replicate_counts if c > 0]
        if not estimates:
            return QuantificationResult(
                probe_name=probe.name, estimated_concentration=0.0,
                ci_low=0.0, ci_high=0.0, replicate_counts=replicate_counts,
                in_calibrated_range=False,
            )
        median = float(np.median(estimates))
        lo = float(np.percentile(estimates, 16))
        hi = float(np.percentile(estimates, 84))
        median_count = float(np.median(replicate_counts))
        return QuantificationResult(
            probe_name=probe.name,
            estimated_concentration=median,
            ci_low=lo,
            ci_high=hi,
            replicate_counts=replicate_counts,
            in_calibrated_range=curve.in_range(median_count),
        )
