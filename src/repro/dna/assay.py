"""End-to-end DNA microarray assay (the Fig. 2 protocol).

Phases, exactly as the figure:

  a)-c)  immobilization — probes at known positions (``ProbeLayout``);
  d)-e)  hybridization — sample applied to the whole chip; match sites
         bind, mismatch sites bind weakly;
  f)-g)  washing — unbound/weak duplexes stripped;
  then   electrochemical readout — enzyme labels generate redox product,
         redox cycling converts surface concentration into the 1 pA -
         100 nA sensor currents that the in-pixel ADCs digitise.

Competition: when several sample targets can bind the same probe, the
site's capture is shared proportionally to each target's k_on * c.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..electrochem.diffusion import surface_concentration_quasi_static
from ..electrochem.enzyme import LabelledSurface
from ..electrochem.redox_cycling import RedoxCyclingSensor
from .hybridization import DEFAULT_KINETICS, HybridizationKinetics
from .sample import Sample
from .sequences import Probe
from .spotting import ProbeLayout


@dataclass(frozen=True)
class AssayProtocol:
    """Timing and chemistry of one assay run.

    Parameters
    ----------
    hybridization_s:
        Exposure time to the sample (typ. 30-120 min).
    wash_s:
        Washing duration (typ. 30-300 s).
    boundary_layer_m:
        Diffusion boundary layer above the sensors during readout.
    max_cross_mismatches:
        Targets with more mismatches than this against a probe are
        treated as non-binding (saves O(sites x targets) rate math for
        obviously unrelated sequences).
    """

    hybridization_s: float = 3600.0
    wash_s: float = 120.0
    boundary_layer_m: float = 50e-6
    max_cross_mismatches: int = 6

    def __post_init__(self) -> None:
        if self.hybridization_s <= 0 or self.wash_s < 0:
            raise ValueError("invalid protocol times")
        if self.boundary_layer_m <= 0:
            raise ValueError("boundary layer must be positive")


@dataclass(frozen=True)
class SiteResult:
    """Physical outcome at one array position."""

    row: int
    col: int
    probe_name: str  # "" for bare control spots
    best_match_mismatches: int  # mismatches of the closest-binding target (99 = none)
    occupancy_after_hybridization: float
    occupancy_after_wash: float
    bound_density: float  # molecules/m^2 after washing
    surface_concentration: float  # mol/m^3 of redox product at readout
    sensor_current: float  # A

    @property
    def is_match_site(self) -> bool:
        return self.best_match_mismatches == 0


@dataclass
class AssayResult:
    """All site results plus array-level summaries."""

    sites: list[SiteResult]
    rows: int
    cols: int

    def current_map(self) -> np.ndarray:
        image = np.zeros((self.rows, self.cols))
        for site in self.sites:
            image[site.row, site.col] = site.sensor_current
        return image

    def site_at(self, row: int, col: int) -> SiteResult:
        for site in self.sites:
            if site.row == row and site.col == col:
                return site
        raise KeyError(f"no site at ({row}, {col})")

    def match_sites(self) -> list[SiteResult]:
        return [s for s in self.sites if s.is_match_site]

    def mismatch_sites(self) -> list[SiteResult]:
        return [s for s in self.sites if not s.is_match_site and s.probe_name]

    def discrimination_ratio(self) -> float:
        """Median match current over median non-match current."""
        matches = [s.sensor_current for s in self.match_sites()]
        others = [s.sensor_current for s in self.mismatch_sites()]
        if not matches or not others:
            raise ValueError("need both match and mismatch sites for a ratio")
        return float(np.median(matches) / np.median(others))

    def dynamic_range_decades(self) -> float:
        currents = [s.sensor_current for s in self.sites if s.sensor_current > 0]
        if not currents:
            raise ValueError("no positive currents recorded")
        return float(np.log10(max(currents) / min(currents)))


class MicroarrayAssay:
    """Runs the Fig. 2 protocol over a layout and a sample.

    Parameters
    ----------
    layout:
        Probe placement.
    kinetics:
        Hybridization rate model.
    labelled_surface:
        Enzyme-label chemistry converting bound targets to product flux.
    sensor:
        Electrochemical transducer (one per site, identical geometry).
    """

    def __init__(
        self,
        layout: ProbeLayout,
        kinetics: HybridizationKinetics = DEFAULT_KINETICS,
        labelled_surface: LabelledSurface | None = None,
        sensor: RedoxCyclingSensor | None = None,
    ) -> None:
        self.layout = layout
        self.kinetics = kinetics
        self.labelled_surface = labelled_surface or LabelledSurface()
        self.sensor = sensor or RedoxCyclingSensor()

    # ------------------------------------------------------------------
    def run(self, sample: Sample, protocol: AssayProtocol | None = None) -> AssayResult:
        protocol = protocol or AssayProtocol()
        sites = []
        for row, col in self.layout.all_positions():
            spot = self.layout.spot(row, col)
            sites.append(self._run_site(spot, sample, protocol))
        return AssayResult(sites=sites, rows=self.layout.rows, cols=self.layout.cols)

    # ------------------------------------------------------------------
    def _run_site(self, spot, sample: Sample, protocol: AssayProtocol) -> SiteResult:
        if spot.probe is None or spot.probe_density <= 0:
            # Bare control spot: background current only.
            background = self.sensor.current(0.0)
            return SiteResult(
                row=spot.row, col=spot.col, probe_name="",
                best_match_mismatches=99,
                occupancy_after_hybridization=0.0,
                occupancy_after_wash=0.0,
                bound_density=0.0,
                surface_concentration=0.0,
                sensor_current=background,
            )
        probe = spot.probe
        binders = self._binding_targets(probe, sample, protocol)
        theta_hyb, theta_wash, best_mm = self._site_occupancy(probe, binders, protocol)
        bound_density = theta_wash * spot.probe_density
        flux = self.labelled_surface.product_flux(bound_density)
        concentration = surface_concentration_quasi_static(
            flux,
            protocol.boundary_layer_m,
            self.labelled_surface.label.product.diffusion_coefficient,
        )
        current = self.sensor.current(concentration)
        return SiteResult(
            row=spot.row, col=spot.col, probe_name=probe.name,
            best_match_mismatches=best_mm,
            occupancy_after_hybridization=theta_hyb,
            occupancy_after_wash=theta_wash,
            bound_density=bound_density,
            surface_concentration=concentration,
            sensor_current=current,
        )

    def _binding_targets(self, probe: Probe, sample: Sample, protocol: AssayProtocol):
        """(target, concentration, mismatches) triples that can bind."""
        binders = []
        for target, concentration in sample.contents.items():
            if concentration <= 0:
                continue
            mismatches = target.mismatches_with(probe)
            if mismatches <= protocol.max_cross_mismatches:
                binders.append((target, concentration, mismatches))
        return binders

    def _site_occupancy(self, probe: Probe, binders, protocol: AssayProtocol):
        """Competitive Langmuir: share the site by k_on*c weight, each
        component relaxing with its own rate, then wash."""
        if not binders:
            return 0.0, 0.0, 99
        best_mm = min(mm for _, _, mm in binders)
        theta_hyb_total = 0.0
        theta_wash_total = 0.0
        # Occupancy headroom: solve each component as if alone, then
        # re-normalise so the sum cannot exceed the single-site Langmuir
        # bound for the combined loading.
        singles = []
        for target, concentration, mismatches in binders:
            theta = self.kinetics.occupancy_after(
                protocol.hybridization_s,
                concentration,
                mismatches,
                0.0,
                len(probe.sequence),
                target.length,
            )
            singles.append((theta, mismatches))
        total = sum(theta for theta, _ in singles)
        scale = 1.0 if total <= 1.0 else 1.0 / total
        for theta, mismatches in singles:
            theta_scaled = theta * scale
            theta_hyb_total += theta_scaled
            theta_wash_total += self.kinetics.occupancy_after_wash(
                protocol.wash_s, mismatches, theta_scaled
            )
        return min(theta_hyb_total, 1.0), min(theta_wash_total, 1.0), best_mm
