"""repro.engine — the vectorized array-scale simulation backend.

Evaluates both flagship workloads' pixel physics as closed-form NumPy
kernels over ``(n_chips, rows, cols)`` arrays:

* the Fig. 3 sawtooth-ADC physics (ramp time, comparator delay, reset
  dead time, leakage, counting quantisation, per-pixel mismatch),
  packaged as :class:`VectorizedDnaChip` — a drop-in, any-geometry,
  batched replacement for the per-object :class:`DnaMicroarrayChip`
  hot path;
* the Fig. 5/6 neural-recording pipeline (M1/M2 calibration planes,
  batched Hodgkin-Huxley integration, interp-free frame synthesis,
  broadcast chain transfer, array-wide spike detection), packaged as
  :class:`VectorizedNeuroChip` over :class:`NeuroArrayParams` +
  :mod:`repro.engine.neuro_kernels`.

Select it through the experiment front door::

    from repro.experiments import (
        ArrayScaleSpec, DnaAssaySpec, NeuralRecordingSpec, Runner,
    )

    runner = Runner(seed=1)
    runner.run(DnaAssaySpec(), backend="vectorized")          # parity-checked
    runner.run(ArrayScaleSpec(rows=128, cols=128, n_chips=16))
    runner.run(NeuralRecordingSpec(), backend="vectorized")   # parity-checked

Parity contract vs the object backend (documented tolerances, enforced
by ``tests/test_engine_*``): deterministic math is bit-identical;
mismatch draws are bit-identical in ``"paired"`` mode (the neural
planes are plane-drawn and bit-identical by construction); stochastic
counts agree per site to within 1 count of start-phase quantisation
plus the accumulated cycle jitter (``kernels.count_noise_sigma``); the
neural template-AP recording is bit-identical end to end, and the HH
path matches to floating-point accumulation error with exact ground
truth (see :mod:`repro.engine.neuro_kernels`).
"""

from . import kernels, neuro_kernels
from .neuro_params import NeuroArrayParams
from .params import DRAW_MODES, PixelArrayParams
from .vchip import VectorizedDnaChip
from .vneuro import VectorizedNeuroChip

__all__ = [
    "DRAW_MODES",
    "NeuroArrayParams",
    "PixelArrayParams",
    "VectorizedDnaChip",
    "VectorizedNeuroChip",
    "kernels",
    "neuro_kernels",
]
