"""repro.engine — the vectorized array-scale simulation backend.

Evaluates the Fig. 3 sawtooth-ADC physics (ramp time, comparator delay,
reset dead time, leakage, counting quantisation, per-pixel mismatch) as
closed-form NumPy kernels over ``(n_chips, rows, cols)`` arrays, and
packages them as :class:`VectorizedDnaChip` — a drop-in, any-geometry,
batched replacement for the per-object :class:`DnaMicroarrayChip` hot
path.

Select it through the experiment front door::

    from repro.experiments import ArrayScaleSpec, DnaAssaySpec, Runner

    runner = Runner(seed=1)
    runner.run(DnaAssaySpec(), backend="vectorized")   # parity-checked
    runner.run(ArrayScaleSpec(rows=128, cols=128, n_chips=16))

Parity contract vs the object backend (documented tolerances, enforced
by ``tests/test_engine_*``): deterministic math is bit-identical;
mismatch draws are bit-identical in ``"paired"`` mode; stochastic
counts agree per site to within 1 count of start-phase quantisation
plus the accumulated cycle jitter (``kernels.count_noise_sigma``).
"""

from . import kernels
from .params import DRAW_MODES, PixelArrayParams
from .vchip import VectorizedDnaChip

__all__ = [
    "DRAW_MODES",
    "PixelArrayParams",
    "VectorizedDnaChip",
    "kernels",
]
