"""Array-scale DNA microarray chip on the vectorized backend.

:class:`VectorizedDnaChip` reproduces the calibration and readout
semantics of :class:`~repro.chip.dna_chip.DnaMicroarrayChip` — electrode
biasing through sampled DACs, bandgap-derived reference calibration,
assay/current digitisation, host-side current estimates, dead-pixel
bookkeeping and the 6-pin serial counter readout — but evaluates the
per-pixel physics as :mod:`repro.engine.kernels` calls over
``(n_chips, rows, cols)`` parameter arrays instead of per-object event
loops.  It scales from the 16x8 seed geometry to 128x128 and beyond,
and batches Monte-Carlo over whole chip instances in one object.

Parity with the object chip (see ``tests/test_engine_vchip.py``):

* With ``mismatch="paired"`` and the same construction generator, pixel
  parameters, DAC codes and reference currents are bit-identical to a
  ``DnaMicroarrayChip`` built from that generator (for ``n_chips > 1``,
  to the object chips built from ``spawn_children(rng, n_chips)``).
* Deterministic host-side math (current estimates, dead-pixel maps,
  serial readout) is bit-identical.
* Stochastic counting matches in distribution; per site the difference
  is bounded by start-phase quantisation (1 count) plus accumulated
  cycle jitter (``kernels.count_noise_sigma``).
"""

from __future__ import annotations

import numpy as np

from ..chip.dna_chip import ChipSpecs, counter_chunk_bytes, write_dna_register
from ..chip.registers import RegisterFile, dna_chip_registers
from ..chip.sequencer import SiteSequence
from ..chip.serial_interface import (
    CHIP_TO_HOST,
    Command,
    Frame,
    SerialLink,
    pack_counters,
    unpack_counters,
)
from ..core.rng import RngLike, ensure_rng, spawn_children
from ..core.units import FARADAY
from ..devices.bandgap import BandgapReference
from ..devices.current_mirror import ReferenceCurrentFanout
from ..devices.dac import ResistorStringDac
from ..dna.assay import AssayResult
from ..electrochem.redox_cycling import RedoxCyclingSensor
from . import kernels
from .params import DRAW_MODES, PixelArrayParams


class VectorizedDnaChip:
    """A batch of Fig. 4 devices evaluated as array kernels.

    Parameters
    ----------
    specs:
        Array dimensions and process (any geometry, not just 16x8).
    n_chips:
        Batch size for Monte-Carlo over chip instances.  With
        ``n_chips == 1`` every measurement method accepts and returns
        ``(rows, cols)`` matrices exactly like the object chip; larger
        batches add a leading chip axis.
    rng:
        Seeds every per-instance variation, exactly as the object chip:
        with ``n_chips == 1`` the generator is consumed in the object
        constructor's order; batches consume one spawned child per chip.
    mismatch:
        ``"paired"`` (bit-identical draws to the object model) or
        ``"fast"`` (vectorised draws; the array-scale default is chosen
        by callers such as ``ArrayScaleSpec``).
    """

    def __init__(
        self,
        specs: ChipSpecs | None = None,
        n_chips: int = 1,
        rng: RngLike = None,
        mismatch: str = "paired",
    ) -> None:
        if n_chips < 1:
            raise ValueError("need at least one chip in the batch")
        if mismatch not in DRAW_MODES:
            raise ValueError(f"unknown mismatch mode {mismatch!r}; choose from {DRAW_MODES}")
        self.specs = specs or ChipSpecs()
        self.n_chips = n_chips
        self.mismatch = mismatch
        generator = ensure_rng(rng)
        chip_rngs = [generator] if n_chips == 1 else spawn_children(generator, n_chips)

        per_chip_params: list[PixelArrayParams] = []
        self.bandgaps: list[BandgapReference] = []
        self.generator_dacs: list[ResistorStringDac] = []
        self.collector_dacs: list[ResistorStringDac] = []
        self.reference_trees: list[ReferenceCurrentFanout] = []
        # Mirror the object constructor's draw order per chip: pixels
        # first (one child stream per site in paired mode), then the
        # periphery from the same generator.
        for chip_rng in chip_rngs:
            per_chip_params.append(
                PixelArrayParams.draw(
                    self.specs.rows,
                    self.specs.cols,
                    rng=chip_rng,
                    mode=mismatch,
                    counter_bits=self.specs.counter_bits,
                )
            )
            bandgap = BandgapReference.sample(chip_rng)
            self.bandgaps.append(bandgap)
            self.generator_dacs.append(
                ResistorStringDac.sample(chip_rng, bits=8, v_low=0.0, v_high=2.0)
            )
            self.collector_dacs.append(
                ResistorStringDac.sample(chip_rng, bits=8, v_low=-1.0, v_high=1.0)
            )
            self.reference_trees.append(
                ReferenceCurrentFanout.build(
                    master_current=bandgap.reference_current(1.2e6),
                    count=8,
                    rng=chip_rng,
                )
            )
        self.params = (
            per_chip_params[0] if n_chips == 1 else PixelArrayParams.stack(per_chip_params)
        )

        # One shared sensor template: sites are electrochemically
        # identical by design (same IDA geometry and species), exactly
        # as in the object model where every pixel gets an identically
        # configured RedoxCyclingSensor.
        self.sensor = RedoxCyclingSensor()

        self.registers: RegisterFile = dna_chip_registers()
        self.link = SerialLink()
        self.sequence = SiteSequence(
            rows=self.specs.rows,
            cols=self.specs.cols,
            counter_bits=self.specs.counter_bits,
        )
        self.bias_ok_chips = np.ones(n_chips, dtype=bool)
        self.gain_correction = np.ones(self.params.shape)
        self._configured = False
        self._last_counts = np.zeros((n_chips, self.specs.sites), dtype=np.int64)

    # ------------------------------------------------------------------
    # Shapes and indexing
    # ------------------------------------------------------------------
    @property
    def batch_shape(self) -> tuple[int, int, int]:
        return self.params.shape

    def _site_index(self, row: int, col: int) -> int:
        if not (0 <= row < self.specs.rows and 0 <= col < self.specs.cols):
            raise IndexError(f"site ({row}, {col}) outside array")
        return row * self.specs.cols + col

    def _squeeze(self, array: np.ndarray) -> np.ndarray:
        """Drop the chip axis for single-chip batches (object-chip API)."""
        return array[0] if self.n_chips == 1 else array

    def _to_batch(self, matrix: np.ndarray, name: str) -> np.ndarray:
        """Accept (rows, cols) or (n_chips, rows, cols) inputs."""
        matrix = np.asarray(matrix, dtype=float)
        grid = (self.specs.rows, self.specs.cols)
        if matrix.shape == grid:
            return np.broadcast_to(matrix, self.batch_shape)
        if matrix.shape == self.batch_shape:
            return matrix
        raise ValueError(
            f"expected {name} shaped {grid} or {self.batch_shape}, got {matrix.shape}"
        )

    # ------------------------------------------------------------------
    # Configuration (over the serial link, as on silicon)
    # ------------------------------------------------------------------
    def configure_bias(self, v_generator: float, v_collector: float) -> bool:
        """Program the electrode DACs on every chip in the batch and
        validate redox-cycling bias against each chip's *actual* DAC
        outputs (the same :meth:`RedoxCyclingSensor.check_bias`
        predicate the object pixels apply).  Returns True when every
        chip is correctly biased."""
        ok = np.empty(self.n_chips, dtype=bool)
        for index, (gen_dac, col_dac) in enumerate(
            zip(self.generator_dacs, self.collector_dacs)
        ):
            gen_code = gen_dac.code_for_voltage(v_generator)
            col_code = col_dac.code_for_voltage(v_collector)
            if index == 0:
                # Protocol fidelity: the codes cross the serial stack
                # once (the batch models identical host commands).
                self._write_register("generator_dac", gen_code)
                self._write_register("collector_dac", col_code)
            ok[index] = self.sensor.check_bias(gen_dac.output(gen_code), col_dac.output(col_code))
        self.bias_ok_chips = ok
        self._configured = bool(ok.all())
        return self._configured

    def _write_register(self, name: str, value: int) -> None:
        write_dna_register(self.link, self.registers, name, value)

    # ------------------------------------------------------------------
    # Auto-calibration
    # ------------------------------------------------------------------
    def auto_calibrate(self, frame_s: float = 0.05, rng: RngLike = None) -> np.ndarray:
        """Vectorised on-chip calibration: each chip applies its own
        reference-tree branches (divided 100:1) across the array and
        stores per-pixel gain corrections.  Returns the corrections,
        flattened per chip like the object model's ``(sites,)`` array."""
        generator = ensure_rng(rng)
        site_index = np.arange(self.specs.sites)
        i_ref = np.empty((self.n_chips, self.specs.sites))
        for chip, tree in enumerate(self.reference_trees):
            branches = tree.branch_currents() / 100.0
            i_ref[chip] = branches[site_index % len(branches)]
        i_ref = i_ref.reshape(self.batch_shape)
        counts = kernels.count_in_frame(
            i_ref,
            frame_s,
            rng=generator,
            counter_bits=self.specs.counter_bits,
            **self.params.kernel_kwargs(),
        )
        corrections = kernels.calibration_corrections(
            counts,
            i_ref,
            frame_s,
            self.params.dead_time_s,
        )
        self.gain_correction = corrections
        self._write_register("calibration_enable", 1)
        return self._squeeze(corrections.reshape(self.n_chips, self.specs.sites))

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measure_assay(
        self, assay: AssayResult, frame_s: float = 1.0, rng: RngLike = None
    ) -> np.ndarray:
        """Digitise an assay outcome on every chip in the batch: each
        site's surface concentration is re-transduced and converted by
        that chip's own pixel parameters."""
        if assay.rows != self.specs.rows or assay.cols != self.specs.cols:
            raise ValueError(
                f"assay grid {assay.rows}x{assay.cols} does not match the "
                f"{self.specs.rows}x{self.specs.cols} chip"
            )
        concentration = np.zeros((self.specs.rows, self.specs.cols))
        for site in assay.sites:
            concentration[site.row, site.col] = site.surface_concentration
        return self.measure_concentrations(concentration, frame_s=frame_s, rng=rng)

    def measure_concentrations(
        self, surface_concentration: np.ndarray, frame_s: float = 1.0, rng: RngLike = None
    ) -> np.ndarray:
        """Full transduction: surface concentration -> redox current ->
        count, vectorised."""
        concentration = self._to_batch(surface_concentration, "concentrations")
        species = self.sensor.species
        currents = kernels.sensor_currents(
            concentration,
            species.electrons_transferred * FARADAY * species.diffusion_coefficient,
            self.sensor.electrode.geometry_factor(),
            self.sensor.background_current,
            bias_ok=self.bias_ok_chips[:, None, None],
        )
        return self._count(currents, frame_s, rng)

    def measure_currents(
        self, currents: np.ndarray, frame_s: float = 1.0, rng: RngLike = None
    ) -> np.ndarray:
        """Directly digitise sensor currents (test mode)."""
        return self._count(self._to_batch(currents, "currents"), frame_s, rng)

    def _count(self, currents: np.ndarray, frame_s: float, rng: RngLike) -> np.ndarray:
        generator = ensure_rng(rng)
        counts = kernels.count_in_frame(
            currents,
            frame_s,
            rng=generator,
            counter_bits=self.specs.counter_bits,
            **self.params.kernel_kwargs(),
        )
        self._last_counts = counts.reshape(self.n_chips, self.specs.sites)
        return self._squeeze(counts)

    def current_estimates(self, counts: np.ndarray, frame_s: float) -> np.ndarray:
        """Host-side conversion of counts to amperes with stored
        per-pixel calibration (bit-identical formula to the object
        chip).  A ``(rows, cols)`` input against a multi-chip batch is
        evaluated with every chip's own calibration and returns the
        full ``(n_chips, rows, cols)`` stack."""
        counts = np.trunc(np.asarray(counts))  # counts are whole pulses
        grid = (self.specs.rows, self.specs.cols)
        if counts.shape not in (grid, self.batch_shape):
            raise ValueError("count matrix shape mismatch")
        batch = np.broadcast_to(counts, self.batch_shape) if counts.shape == grid else counts
        estimates = kernels.host_current_estimate(
            batch,
            frame_s,
            self.params.cint_host_nominal_f,
            self.gain_correction,
            self.params.swing_nominal_v,
        )
        return self._squeeze(estimates)

    # ------------------------------------------------------------------
    # Serial readout (the 6-pin data path)
    # ------------------------------------------------------------------
    def read_counters_serial(self) -> list:
        """Full digital path for the latest counts.  Single-chip batches
        return the object chip's flat ``list[int]``; larger batches a
        list of per-chip lists (the host polls chips in sequence)."""
        per_chip: list[list[int]] = []
        chunk = counter_chunk_bytes(self.specs.counter_bits)
        for chip in range(self.n_chips):
            request = Frame(Command.READ_COUNTERS, 0x00)
            self.link.transfer(request)
            payload = pack_counters(
                self._last_counts[chip].tolist(), self.specs.counter_bits
            )
            received = bytearray()
            for start in range(0, len(payload), chunk):
                part = payload[start : start + chunk]
                response = self.link.respond(part)
                roundtrip = self.link.transfer(response, direction=CHIP_TO_HOST)
                received.extend(roundtrip.payload)
            per_chip.append(unpack_counters(bytes(received), self.specs.counter_bits))
        return per_chip[0] if self.n_chips == 1 else per_chip

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def inject_dead_pixel(self, row: int, col: int, chip: int = 0) -> None:
        """Make one pixel's leakage exceed the signal floor."""
        if not 0 <= chip < self.n_chips:
            raise IndexError(f"chip {chip} outside batch of {self.n_chips}")
        self._site_index(row, col)
        self.params.leakage_a[chip, row, col] = 10e-12

    def dead_pixel_map(self) -> np.ndarray:
        return self._squeeze(kernels.dead_pixel_mask(self.params.leakage_a))

    # ------------------------------------------------------------------
    # Bridges
    # ------------------------------------------------------------------
    @classmethod
    def from_object_chip(cls, chip) -> "VectorizedDnaChip":
        """Wrap an existing :class:`DnaMicroarrayChip`'s drawn state
        (pixel parameters, periphery, calibration) as a single-chip
        vectorized twin.  Parameter arrays, registers and the serial
        link are copies, so driving the twin never mutates the source
        chip; the read-only periphery devices are shared."""
        import copy

        twin = cls.__new__(cls)
        twin.specs = chip.specs
        twin.n_chips = 1
        twin.mismatch = "paired"
        twin.params = PixelArrayParams.from_pixels(
            chip.pixels, chip.specs.rows, chip.specs.cols
        )
        twin.bandgaps = [chip.bandgap]
        twin.generator_dacs = [chip.generator_dac]
        twin.collector_dacs = [chip.collector_dac]
        twin.reference_trees = [chip.reference_tree]
        # Own sensor copy: check_bias stores state on the instance.
        twin.sensor = copy.deepcopy(chip.pixels[0].sensor)
        twin.registers = copy.deepcopy(chip.registers)
        twin.link = copy.deepcopy(chip.link)
        twin.sequence = chip.sequence
        twin.bias_ok_chips = np.array([all(p.sensor.bias_ok for p in chip.pixels)])
        twin.gain_correction = np.array(
            [p.gain_correction for p in chip.pixels]
        ).reshape(twin.params.shape)
        twin._configured = chip._configured
        twin._last_counts = np.array(chip._last_counts, dtype=np.int64).reshape(
            1, chip.specs.sites
        )
        return twin
