"""Vectorised kernels for the Fig. 5/6 neural-recording physics.

The object-model hot path simulates every neuron's Hodgkin-Huxley
trajectory in a per-neuron Python loop, then samples each covered pixel
with one ``np.interp`` call per (neuron, pixel) pair
(:meth:`~repro.neuro.array.NeuralArrayModel.record`).  These kernels
evaluate the same physics as whole-array NumPy operations:

* :func:`hh_batch` — one RK4 integration over *all* neurons at once
  (state vectors of shape ``(n_neurons,)`` instead of one Python object
  per neuron); per-step cost is flat in the neuron count up to
  thousands of cells.
* :func:`template_tables` — the analytic-AP fast path: the template
  waveform and its derivative are computed once and shared across every
  neuron and spike (the object model rebuilds them per spike).
* :func:`synthesize_frames` — the batched frame-synthesis kernel: all
  action-potential waveforms are scattered onto the pixel frames in one
  interp-free pass (a table gather over precomputed waveform tables
  followed by one ``np.add.at`` accumulation).
* :func:`apply_chain_transfer` — the per-channel readout gain +
  clipping as a single broadcast (bit-identical to the object chip's
  per-channel loop).
* :func:`mad_sigma_matrix` / :func:`detect_spikes_matrix` — array-wide
  threshold spike detection over a matrix of traces.

Parity contract with the object model (enforced by
``tests/test_engine_neuro.py`` / ``tests/test_experiments_neuro_backend_parity.py``):

* The frame-synthesis gather reproduces ``np.interp``'s interval search
  and slope arithmetic, so frames built from *identical* waveform
  tables are bit-identical to the object recording (the template-AP
  path is therefore bit-identical end to end).
* :func:`hh_batch` evaluates the same RK4 expressions in the same
  operation order, but with ``np.exp`` where the scalar model calls
  ``math.exp``; trajectories agree to floating-point accumulation
  error (sub-micro-volt over the paper's recording lengths) and spike
  times agree exactly in practice.
* Detection kernels evaluate the same median/threshold formulas as
  :mod:`repro.neuro.spike_detection` and are bit-identical on equal
  traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..neuro.action_potential import (
    HHParameters,
    StimulusProtocol,
    template_action_potential,
)

HH_REFRACTORY_S = 2e-3  # detect_spike_times' default hold-off


# ---------------------------------------------------------------------------
# Batched Hodgkin-Huxley integration
# ---------------------------------------------------------------------------
@dataclass
class BatchedHH:
    """Batched HH trajectories: the per-neuron quantities the junction
    model consumes, as ``(n_neurons, steps)`` arrays.

    ``membrane_v`` is in volts; the current densities in A/m^2 —
    matching :class:`~repro.neuro.action_potential.HHResult` unit for
    unit.  ``spike_times`` holds one array per neuron.
    """

    membrane_v: np.ndarray
    ionic_a_m2: np.ndarray
    capacitive_a_m2: np.ndarray
    dt_s: float
    spike_times: list

    @property
    def n_neurons(self) -> int:
        return self.membrane_v.shape[0]

    def subset(self, index) -> "BatchedHH":
        """Row view for a sub-population (used by the campaign fast
        path to split a union batch back into per-point batches)."""
        index = np.asarray(index)
        return BatchedHH(
            membrane_v=self.membrane_v[index],
            ionic_a_m2=self.ionic_a_m2[index],
            capacitive_a_m2=self.capacitive_a_m2[index],
            dt_s=self.dt_s,
            spike_times=[self.spike_times[i] for i in index.tolist()],
        )


def stimulus_matrix(stimuli, steps: int, dt_s: float) -> np.ndarray:
    """Injected current density (uA/cm^2) on the integration grid,
    ``(steps, n_neurons)``.

    Evaluates each :class:`StimulusProtocol`'s pulse sums exactly as
    ``current_ua_cm2`` does per step (``start <= t < start + width``),
    pulse order preserved.
    """
    t = np.arange(steps) * dt_s
    out = np.zeros((steps, len(stimuli)))
    for column, stimulus in enumerate(stimuli):
        for start, width, amplitude in stimulus.pulses:
            out[(t >= start) & (t < start + width), column] += amplitude
    return out


def _derivatives(state: np.ndarray, i_stim, p: HHParameters, out: np.ndarray) -> np.ndarray:
    """The batched twin of ``HodgkinHuxleyNeuron._derivatives``.

    Same expressions in the same operation order, arrays over neurons
    (``state``/``out`` are ``(4, n_neurons)``).  The six gating
    exponentials are evaluated in one fused ``np.exp`` over a packed
    block — ``x / -c`` equals ``-(x / c)`` bitwise in IEEE arithmetic,
    so the arguments match the scalar model's ``-(v+a)/c`` exactly.
    Callers hold the ``np.errstate`` guard for the (measure-zero)
    gating singularities patched by the ``np.where`` terms.
    """
    v, n, m, h = state
    x_n = v + 55.0
    x_m = v + 40.0
    x_65 = v + 65.0
    e = np.empty((6, v.shape[0]))
    np.divide(x_n, -10.0, out=e[0])
    np.divide(x_m, -10.0, out=e[1])
    np.divide(x_65, -80.0, out=e[2])
    np.divide(x_65, -18.0, out=e[3])
    np.divide(x_65, -20.0, out=e[4])
    np.divide(v + 35.0, -10.0, out=e[5])
    np.exp(e, out=e)
    alpha_n = np.where(np.abs(x_n) < 1e-7, 0.1, 0.01 * x_n / (1.0 - e[0]))
    alpha_m = np.where(np.abs(x_m) < 1e-7, 1.0, 0.1 * x_m / (1.0 - e[1]))
    beta_n = 0.125 * e[2]
    beta_m = 4.0 * e[3]
    alpha_h = 0.07 * e[4]
    beta_h = 1.0 / (1.0 + e[5])
    i_na = p.g_na * m**3 * h * (v - p.e_na)
    i_k = p.g_k * n**4 * (v - p.e_k)
    i_leak = p.g_leak * (v - p.e_leak)
    out[0] = (i_stim - i_na - i_k - i_leak) / p.c_m
    out[1] = alpha_n * (1.0 - n) - beta_n * n
    out[2] = alpha_m * (1.0 - m) - beta_m * m
    out[3] = alpha_h * (1.0 - h) - beta_h * h
    return out


def refractory_prune(times: np.ndarray, refractory_s: float) -> np.ndarray:
    """Keep the first event of every refractory window (the hold-off
    loop shared by both detectors)."""
    if len(times) == 0:
        return np.asarray(times, dtype=float)
    kept = [times[0]]
    for t in times[1:]:
        if t - kept[-1] >= refractory_s:
            kept.append(t)
    return np.asarray(kept)


def hh_batch(
    stimuli,
    duration_s: float,
    dt_s: float = 10e-6,
    params: HHParameters | None = None,
) -> BatchedHH:
    """Integrate every neuron's HH trajectory in one batched RK4 sweep.

    ``stimuli`` is one :class:`StimulusProtocol` per neuron.  Matches
    :meth:`HodgkinHuxleyNeuron.simulate` expression for expression
    (including the post-step current decomposition, the unit
    conversions and the spike-time detection); the only difference is
    ``np.exp`` in place of ``math.exp``, so trajectories agree to
    floating-point accumulation error rather than bitwise.
    """
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration and dt must be positive")
    p = params or HHParameters()
    count = len(stimuli)
    steps = int(round(duration_s / dt_s))
    dt_ms = dt_s * 1e3
    if count == 0:
        empty = np.zeros((0, steps))
        return BatchedHH(empty, empty.copy(), empty.copy(), dt_s, [])

    # Identical steady-state seed for every neuron (the scalar model's
    # ``steady_state(v_rest)`` values, evaluated once).
    from ..neuro.action_potential import HodgkinHuxleyNeuron

    n0, m0, h0 = HodgkinHuxleyNeuron(p).steady_state(p.v_rest)
    state = np.empty((4, count))
    state[0] = float(p.v_rest)
    state[1] = float(n0)
    state[2] = float(m0)
    state[3] = float(h0)

    stim = stimulus_matrix(stimuli, steps, dt_s)
    v_out = np.empty((steps, count))
    i_ion = np.empty((steps, count))
    half = 0.5 * dt_ms
    sixth = dt_ms / 6.0
    k1 = np.empty((4, count))
    k2 = np.empty((4, count))
    k3 = np.empty((4, count))
    k4 = np.empty((4, count))
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for step in range(steps):
            i_stim = stim[step]
            _derivatives(state, i_stim, p, k1)
            _derivatives(state + half * k1, i_stim, p, k2)
            _derivatives(state + half * k2, i_stim, p, k3)
            _derivatives(state + dt_ms * k3, i_stim, p, k4)
            state = state + sixth * (k1 + 2 * k2 + 2 * k3 + k4)
            v, n, m, h = state
            i_na = p.g_na * m**3 * h * (v - p.e_na)
            i_k = p.g_k * n**4 * (v - p.e_k)
            i_leak = p.g_leak * (v - p.e_leak)
            v_out[step] = v
            i_ion[step] = i_na + i_k + i_leak

    v_volts = v_out.T * 1e-3
    ionic = i_ion.T * 0.01
    capacitive = np.gradient(v_volts, dt_s, axis=1) * (p.c_m * 0.01)

    spike_times = []
    for row in v_volts:
        above = row > 0.0
        crossings = np.nonzero(above[1:] & ~above[:-1])[0] + 1
        spike_times.append(refractory_prune(crossings * dt_s, HH_REFRACTORY_S))
    return BatchedHH(v_volts, ionic, capacitive, dt_s, spike_times)


def junction_tables(hh: BatchedHH, areas, seal_resistances, ion_channel_factors) -> np.ndarray:
    """Junction voltages V_J for a batch of HH trajectories.

    ``(cap + mu * ion) * area * R_seal`` per neuron — the exact
    operation order of
    :meth:`~repro.neuro.junction.CellChipJunction.junction_voltage`,
    broadcast over the neuron axis.  Returns ``(n_neurons, steps)``.
    """
    mu = np.asarray(ion_channel_factors, dtype=float)[:, None]
    area = np.asarray(areas, dtype=float)[:, None]
    seal = np.asarray(seal_resistances, dtype=float)[:, None]
    density = hh.capacitive_a_m2 + hh.ionic_a_m2 * mu
    return density * area * seal


# ---------------------------------------------------------------------------
# Template-AP fast path
# ---------------------------------------------------------------------------
def template_tables(
    stimuli,
    areas,
    seal_resistances,
    duration_s: float,
    dt_s: float = 20e-6,
    c_m_f_per_m2: float = 0.01,
) -> tuple[np.ndarray, list]:
    """Per-neuron junction waveform tables for the analytic-AP path.

    Mirrors the ``use_hh=False`` branch of
    :meth:`NeuralRecordingChip.record_culture` bit for bit — same
    template, same derivative, same per-spike scatter (in spike order)
    — but computes the shared template AP and its derivative once
    instead of once per spike.  Returns ``(tables, ground_truth)``
    where ``tables`` is ``(n_neurons, n_samples)`` and ``ground_truth``
    one spike-time array per neuron.
    """
    n_samples = max(1, int(round(duration_s / dt_s)))
    tables = np.zeros((len(stimuli), n_samples))
    truths: list = []
    if not stimuli:
        return tables, truths
    ap = template_action_potential(
        duration_s=min(6e-3, duration_s), dt_s=dt_s, t_spike_s=1e-3
    )
    dvdt = np.gradient(ap.samples, dt_s)  # == Trace.derivative()
    for index, stimulus in enumerate(stimuli):
        spike_times = np.asarray([pulse[0] for pulse in stimulus.pulses])
        vj_one = dvdt * (c_m_f_per_m2 * areas[index]) * seal_resistances[index]
        row = tables[index]
        for t_spike in spike_times:
            offset = int(t_spike / dt_s)
            end = min(n_samples, offset + len(vj_one))
            if end > offset:
                row[offset:end] += vj_one[: end - offset]
        truths.append(spike_times + 1e-3)
    return tables, truths


# ---------------------------------------------------------------------------
# Batched frame synthesis
# ---------------------------------------------------------------------------
def sample_waveform_tables(
    waveforms: np.ndarray, dt_s: float, wave_index: np.ndarray, times: np.ndarray
) -> np.ndarray:
    """Linear interpolation of uniform-grid waveform tables, vectorised.

    ``waveforms`` is ``(n_waves, n_samples)`` sampled at ``k * dt_s``;
    ``wave_index``/``times`` select which waveform each output row reads
    and at which instants (``times`` is ``(n_rows, n_points)``).
    Reproduces ``np.interp(t, grid, w, left=0.0, right=0.0)`` exactly:
    same interval search, same slope arithmetic, zeros outside the
    table.
    """
    waveforms = np.asarray(waveforms, dtype=float)
    times = np.asarray(times, dtype=float)
    n_samples = waveforms.shape[1]
    out_shape = (times.shape[0], times.shape[1])
    if n_samples == 0:
        return np.zeros(out_shape)
    grid = np.arange(n_samples) * dt_s
    wave = np.repeat(np.asarray(wave_index, dtype=np.intp), times.shape[1])
    t = times.reshape(-1)
    if n_samples == 1:
        values = np.where(t == grid[0], waveforms[wave, 0], 0.0)
        return values.reshape(out_shape)
    inside = (t >= grid[0]) & (t <= grid[-1])
    j = np.searchsorted(grid, t, side="right") - 1
    jc = np.clip(j, 0, n_samples - 2)
    x0 = grid[jc]
    y0 = waveforms[wave, jc]
    slope = (waveforms[wave, jc + 1] - y0) / (grid[jc + 1] - x0)
    values = slope * (t - x0) + y0
    values = np.where(j == n_samples - 1, waveforms[wave, n_samples - 1], values)
    values = np.where(inside, values, 0.0)
    return values.reshape(out_shape)


def synthesize_frames(
    waveforms: np.ndarray,
    dt_s: float,
    pair_rows: np.ndarray,
    pair_cols: np.ndarray,
    pair_waves: np.ndarray,
    n_frames: int,
    frame_rate_hz: float,
    rows: int,
    cols: int,
) -> np.ndarray:
    """Scatter every waveform onto its covered pixels in one pass.

    ``(pair_rows, pair_cols, pair_waves)`` enumerate the
    (pixel, neuron) coverage pairs in the object model's iteration
    order (neurons outer, covered pixels inner).  Each pair samples its
    waveform at the frame instants plus the row's mux offset
    (``row * row_time``), exactly as
    :meth:`NeuralArrayModel.record` does, but the sampling is one table
    gather per distinct (waveform, row) pair and the accumulation one
    ``np.add.at`` — no per-pixel ``np.interp`` calls.  Returns
    ``(n_frames, rows, cols)`` frames, bit-identical to the object
    loop for identical waveform tables.
    """
    if n_frames <= 0:
        raise ValueError("need at least one frame")
    if frame_rate_hz <= 0:
        raise ValueError("frame rate must be positive")
    pair_rows = np.asarray(pair_rows, dtype=np.intp)
    pair_cols = np.asarray(pair_cols, dtype=np.intp)
    pair_waves = np.asarray(pair_waves, dtype=np.intp)
    if not (len(pair_rows) == len(pair_cols) == len(pair_waves)):
        raise ValueError("pair arrays must have equal lengths")
    if len(pair_rows) == 0:
        return np.zeros((n_frames, rows, cols))
    frame_times = np.arange(n_frames) / frame_rate_hz
    row_time = 1.0 / (frame_rate_hz * rows)
    # Sample once per distinct (waveform, row): every column under the
    # same soma row shares its mux offset, so the gather is ~10x
    # smaller than the pair list.
    key = pair_waves * rows + pair_rows
    unique_keys, group = np.unique(key, return_inverse=True)
    group_waves = unique_keys // rows
    group_rows = unique_keys % rows
    sample_times = frame_times[None, :] + (group_rows * row_time)[:, None]
    values = sample_waveform_tables(waveforms, dt_s, group_waves, sample_times)
    # Accumulate in (pixel, frame) layout; pairs arrive in the object
    # model's neuron-major order, so per-pixel summation order matches.
    accumulator = np.zeros((rows * cols, n_frames))
    np.add.at(accumulator, pair_rows * cols + pair_cols, values[group])
    return np.ascontiguousarray(
        accumulator.reshape(rows, cols, n_frames).transpose(2, 0, 1)
    )


def coverage_pairs(culture) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The (pixel row, pixel col, neuron position) coverage triplets in
    the object model's iteration order.  The third array indexes the
    *position* of the neuron in ``culture.neurons`` (== the waveform
    table row), not ``neuron.index``."""
    pair_rows: list[int] = []
    pair_cols: list[int] = []
    pair_waves: list[int] = []
    for position, neuron in enumerate(culture.neurons):
        for row, col in culture.pixels_for_neuron(neuron):
            pair_rows.append(row)
            pair_cols.append(col)
            pair_waves.append(position)
    return (
        np.asarray(pair_rows, dtype=np.intp),
        np.asarray(pair_cols, dtype=np.intp),
        np.asarray(pair_waves, dtype=np.intp),
    )


# ---------------------------------------------------------------------------
# Readout-chain transfer
# ---------------------------------------------------------------------------
def apply_chain_transfer(
    frames: np.ndarray, gains, rails, mux_depth: int
) -> np.ndarray:
    """Static per-channel chain transfer (gain + rail clipping) as one
    broadcast.  ``gains``/``rails`` hold one value per readout channel;
    channel *k* serves columns ``[k * mux_depth, (k+1) * mux_depth)``.
    Bit-identical to the object chip's per-channel block loop."""
    gain_cols = np.repeat(np.asarray(gains, dtype=float), mux_depth)
    rail_cols = np.repeat(np.asarray(rails, dtype=float), mux_depth)
    if len(gain_cols) != frames.shape[2]:
        raise ValueError(
            f"{len(gain_cols)} channel columns do not cover {frames.shape[2]} array columns"
        )
    return np.clip(frames * gain_cols, -rail_cols, rail_cols)


# ---------------------------------------------------------------------------
# Array-wide spike detection
# ---------------------------------------------------------------------------
def mad_sigma_matrix(traces: np.ndarray) -> np.ndarray:
    """Robust noise sigma per trace row: ``median(|x - median|)/0.6745``
    — :func:`~repro.neuro.spike_detection.mad_noise_estimate` over a
    ``(n_traces, n_samples)`` matrix."""
    traces = np.asarray(traces, dtype=float)
    median = np.median(traces, axis=1, keepdims=True)
    return np.median(np.abs(traces - median), axis=1) / 0.6745


def detect_spikes_matrix(
    traces: np.ndarray,
    dt_s: float,
    threshold_sigma: float = 5.0,
    refractory_s: float = 2e-3,
    polarity: str = "both",
    t0: float = 0.0,
) -> list:
    """Threshold detection over a matrix of traces — the array-wide
    twin of :func:`~repro.neuro.spike_detection.detect_spikes`
    (same MAD threshold, same edge rule, same refractory hold-off),
    evaluated with whole-matrix operations.  Returns one spike-time
    array per row."""
    if threshold_sigma <= 0:
        raise ValueError("threshold must be positive")
    if polarity not in ("pos", "neg", "both"):
        raise ValueError(f"unknown polarity {polarity!r}")
    traces = np.asarray(traces, dtype=float)
    if traces.ndim != 2:
        raise ValueError("traces must be (n_traces, n_samples)")
    median = np.median(traces, axis=1, keepdims=True)
    sigma = np.median(np.abs(traces - median), axis=1) / 0.6745
    sigma = np.where(sigma == 0, 1e-12, sigma)
    level = (threshold_sigma * sigma)[:, None]
    centred = traces - median
    if polarity == "pos":
        hot = centred > level
    elif polarity == "neg":
        hot = centred < -level
    else:
        hot = np.abs(centred) > level
    rising = hot[:, 1:] & ~hot[:, :-1]
    out = []
    for row in range(traces.shape[0]):
        edges = np.nonzero(rising[row])[0] + 1
        out.append(refractory_prune(t0 + edges * dt_s, refractory_s))
    return out
