"""Array-scale neural-recording chip on the vectorized backend.

:class:`VectorizedNeuroChip` reproduces the recording semantics of
:class:`~repro.chip.neuro_chip.NeuralRecordingChip` — Pelgrom-mismatched
M1/M2 pixel planes with the Fig. 6 calibration cycle, sixteen parallel
readout channels, the scan-timing arithmetic, registers + serial
configuration — but evaluates the hot path (per-neuron Hodgkin-Huxley
trajectories, junction transforms, frame sampling, chain transfer)
through :mod:`repro.engine.neuro_kernels` batched operations instead of
per-neuron / per-pixel Python loops.

Parity with the object chip (see
``tests/test_experiments_neuro_backend_parity.py``):

* Construction consumes the generator exactly as the object chip does
  (plane draws, then one spawned child per readout channel), so pixel
  planes, channel gains and the input-referred noise floor are
  bit-identical.
* The template-AP path (``use_hh=False``) is bit-identical end to end:
  waveforms, frames, noise realisation and output movie.
* The Hodgkin-Huxley path batches the RK4 integration over neurons
  (``np.exp`` vs ``math.exp``); trajectories agree to floating-point
  accumulation error, ground-truth spike times exactly in practice,
  and frames to the documented tolerance.
"""

from __future__ import annotations

import numpy as np

from ..chip.registers import RegisterFile, neuro_chip_registers
from ..chip.sequencer import ScanTiming
from ..chip.serial_interface import Command, Frame, SerialLink
from ..core.rng import RngLike, ensure_rng, spawn_children
from ..neuro.action_potential import StimulusProtocol
from ..neuro.array import RecordedMovie
from ..neuro.culture import ArrayGeometry, Culture, NEURO_GEOMETRY
from ..neuro.readout_chain import ReadoutChannel, TOTAL_GAIN
from ..neuro.sensor_pixel import NeuralPixelDesign
from . import neuro_kernels
from .neuro_params import NeuroArrayParams


class VectorizedNeuroChip:
    """Behavioural model of the 128x128 device on the engine backend.

    Drop-in for :class:`NeuralRecordingChip` in the experiment layer:
    same constructor signature, same ``calibrate`` /
    ``record_culture`` / ``input_referred_noise_v`` /
    ``timing_report`` API, same
    :class:`~repro.chip.neuro_chip.RecordingResult` output.
    """

    def __init__(
        self,
        geometry: ArrayGeometry | None = None,
        design: NeuralPixelDesign | None = None,
        scan: ScanTiming | None = None,
        rng: RngLike = None,
    ) -> None:
        generator = ensure_rng(rng)
        self.geometry = geometry or NEURO_GEOMETRY
        self.scan = scan or ScanTiming(
            rows=self.geometry.rows,
            cols=self.geometry.cols,
            channels=16 if self.geometry.cols % 16 == 0 else 1,
            frame_rate_hz=2000.0,
        )
        # Same consumption order as the object chip: array planes first,
        # then one spawned child per channel.
        self.params = NeuroArrayParams.draw(
            self.geometry.rows, self.geometry.cols, design=design, rng=generator
        )
        channel_rngs = spawn_children(generator, self.scan.channels)
        self.channels = [ReadoutChannel.sample(r) for r in channel_rngs]
        self.registers: RegisterFile = neuro_chip_registers()
        self.link = SerialLink()
        self.calibrated = False

    @property
    def design(self) -> NeuralPixelDesign:
        return self.params.design

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def calibrate(self, include_imperfections: bool = True) -> None:
        """Pixel calibration plus the gain-stage offset calibration —
        the object chip's sequence on the batched parameter planes."""
        self.params.calibrate(include_imperfections=include_imperfections)
        for channel in self.channels:
            channel.calibrate()
        frame = Frame(Command.CALIBRATE, 0x00)
        self.link.transfer(frame)
        self.registers.hw_write("status", 0x01)
        self.calibrated = True

    def calibration_sweep_time_s(self) -> float:
        settle_per_column = 5e-6
        return self.geometry.cols * settle_per_column

    # ------------------------------------------------------------------
    # Noise
    # ------------------------------------------------------------------
    def input_referred_noise_v(self) -> float:
        chain_noise = self.channels[0].chain.input_referred_noise_rms()
        return chain_noise / self.design.coupling_factor

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def draw_spike_trains(
        self, culture: Culture, duration_s: float, firing_rate_hz: float, generator
    ) -> list:
        """One Poisson stimulus per neuron, consuming the record stream
        exactly as the object chip does (one spawned child per neuron,
        at least one even for an empty culture)."""
        neuron_rngs = spawn_children(generator, max(1, len(culture.neurons)))
        return [
            StimulusProtocol.spike_train(firing_rate_hz, duration_s, rng=neuron_rng)
            for _, neuron_rng in zip(culture.neurons, neuron_rngs)
        ]

    def activity_tables(
        self, culture: Culture, stimuli, duration_s: float, use_hh: bool
    ) -> tuple[np.ndarray, float, dict]:
        """Junction-voltage waveform tables + ground truth for a set of
        stimulated neurons: ``(tables, table_dt_s, ground_truth)``."""
        dt_s = 20e-6
        junctions = [neuron.junction for neuron in culture.neurons]
        areas = [j.junction_area for j in junctions]
        seals = [j.seal_resistance for j in junctions]
        if use_hh:
            hh = neuro_kernels.hh_batch(stimuli, duration_s, dt_s=dt_s)
            return self._hh_tables(culture, hh)
        tables, truths = neuro_kernels.template_tables(
            stimuli, areas, seals, duration_s, dt_s=dt_s
        )
        ground_truth = {
            neuron.index: truths[i] for i, neuron in enumerate(culture.neurons)
        }
        return tables, dt_s, ground_truth

    def _hh_tables(
        self, culture: Culture, hh: neuro_kernels.BatchedHH
    ) -> tuple[np.ndarray, float, dict]:
        """Junction tables + ground truth from a (possibly shared)
        batched HH integration whose rows follow ``culture.neurons``."""
        junctions = [neuron.junction for neuron in culture.neurons]
        tables = neuro_kernels.junction_tables(
            hh,
            [j.junction_area for j in junctions],
            [j.seal_resistance for j in junctions],
            [j.ion_channel_factor for j in junctions],
        )
        ground_truth = {
            neuron.index: hh.spike_times[i] for i, neuron in enumerate(culture.neurons)
        }
        return tables, hh.dt_s, ground_truth

    def movie_from_tables(
        self,
        culture: Culture,
        tables: np.ndarray,
        table_dt_s: float,
        n_frames: int,
        generator,
    ) -> RecordedMovie:
        """Sample the waveform tables onto electrode-referred frames and
        add the chain's input-referred noise — the batched twin of
        :meth:`NeuralArrayModel.record` (same noise draw)."""
        if n_frames <= 0:
            raise ValueError("need at least one frame")
        pair_rows, pair_cols, pair_waves = neuro_kernels.coverage_pairs(culture)
        frames = neuro_kernels.synthesize_frames(
            tables,
            table_dt_s,
            pair_rows,
            pair_cols,
            pair_waves,
            n_frames,
            self.scan.frame_rate_hz,
            self.geometry.rows,
            self.geometry.cols,
        )
        noise_rms_v = self.input_referred_noise_v()
        if noise_rms_v > 0:
            frames += ensure_rng(generator).normal(0.0, noise_rms_v, size=frames.shape)
        return RecordedMovie(frames=frames, frame_rate_hz=self.scan.frame_rate_hz)

    def output_movie(self, electrode_movie: RecordedMovie) -> RecordedMovie:
        """The off-chip view after the full x5600 chain, as one
        broadcast (bit-identical to the object chip's channel loop)."""
        coupling = self.design.coupling_factor
        gains = [channel.chain.actual_gain * coupling for channel in self.channels]
        rails = [channel.chain.stages[-1].rail_high for channel in self.channels]
        return RecordedMovie(
            frames=neuro_kernels.apply_chain_transfer(
                electrode_movie.frames, gains, rails, self.scan.mux_depth
            ),
            frame_rate_hz=self.scan.frame_rate_hz,
        )

    def record_culture(
        self,
        culture: Culture,
        duration_s: float = 0.05,
        firing_rate_hz: float = 20.0,
        rng: RngLike = None,
        use_hh: bool = True,
    ):
        """Simulate spontaneous activity and record it — the batched
        twin of :meth:`NeuralRecordingChip.record_culture`."""
        from ..chip.neuro_chip import RecordingResult

        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if not self.calibrated:
            raise RuntimeError("calibrate() the chip before recording")
        generator = ensure_rng(rng)
        stimuli = self.draw_spike_trains(culture, duration_s, firing_rate_hz, generator)
        if use_hh:
            hh = neuro_kernels.hh_batch(stimuli, duration_s, dt_s=20e-6)
            tables, table_dt_s, ground_truth = self._hh_tables(culture, hh)
        else:
            tables, table_dt_s, ground_truth = self.activity_tables(
                culture, stimuli, duration_s, use_hh=False
            )
        n_frames = int(duration_s * self.scan.frame_rate_hz)
        electrode_movie = self.movie_from_tables(
            culture, tables, table_dt_s, n_frames, generator
        )
        output_movie = self.output_movie(electrode_movie)
        return RecordingResult(
            electrode_movie=electrode_movie,
            output_movie=output_movie,
            ground_truth=ground_truth,
            culture=culture,
        )

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def timing_report(self) -> dict[str, float]:
        return {
            "frame_rate_hz": self.scan.frame_rate_hz,
            "row_time_s": self.scan.row_time_s,
            "slot_time_s": self.scan.slot_time_s,
            "channel_pixel_rate_hz": self.scan.channel_pixel_rate_hz,
            "aggregate_pixel_rate_hz": self.scan.aggregate_pixel_rate_hz,
            "readout_amp_settles": float(self.scan.settling_ok(4e6)),
            "driver_settles": float(self.scan.settling_ok(32e6)),
            "total_gain": TOTAL_GAIN,
        }
