"""Closed-form array kernels for the Fig. 3 sawtooth-ADC physics.

Every function here is the vectorised twin of a scalar method on
:class:`~repro.pixel.sawtooth_adc.SawtoothAdc` /
:class:`~repro.pixel.pixel.DnaSensorPixel`, evaluated over arbitrary
ndarray shapes (typically ``(n_chips, rows, cols)``) with NumPy
broadcasting instead of one Python object per pixel.

Parity contract with the object model (enforced by
``tests/test_engine_kernels.py`` / ``tests/test_engine_parity_edges.py``):

* **Deterministic quantities** — ramp time, cycle period, frequency,
  inverse transfer, host-side current estimates, calibration
  corrections — are the *same formulas in the same operation order* and
  match the object model bit for bit (including the dead-time-compressed
  top decade at 100 nA, the quantisation-dominated bottom decade at
  1 pA, and the never-fires regime where leakage >= signal).
* **Noiseless counting** (``noise_rms_v == 0``) matches
  :meth:`SawtoothAdc.count_in_frame` exactly for matching start phases.
  With noise an explicit ``start_phase`` only removes the phase draw —
  counts can still differ by the jitter realisation (below).
* **Noisy counting** uses the same Gaussian accumulation the object
  model applies above ~2000 expected counts, but applies it for *all*
  expected counts and draws its random variates as whole-array vectors
  (one uniform array for start phases, one normal array for jitter)
  instead of per-pixel interleaved scalars.  Counts therefore agree
  with the object model only in distribution: per site the difference
  is bounded by 1 count of start-phase quantisation plus the cycle
  jitter (sigma from :func:`count_noise_sigma`, typically << 1 count).

The kernels never allocate per-pixel Python objects, so a 128x128 array
(or a batch of them) costs a handful of vector operations.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import RngLike, ensure_rng
from ..core.units import fF
from ..pixel.pixel import DEAD_PIXEL_LEAKAGE_A  # single source, shared with is_dead()


def net_current(i_sensor, leakage_a):
    """Charging current after subtracting node leakage."""
    return np.asarray(i_sensor, dtype=float) - leakage_a


def dead_time(comparator_delay_s, tau_delay_s):
    """Per-cycle fixed time: comparator delay + reset pulse."""
    return np.asarray(comparator_delay_s, dtype=float) + tau_delay_s


def ramp_time(i_sensor, cint_f, swing_v, leakage_a=0.0):
    """tau1: time to slew Cint across the swing; ``inf`` where the pixel
    never fires (current at or below the leakage floor).

    The object model raises ``ValueError`` there; callers of the kernel
    map the infinite ramp to a zero count instead.
    """
    net = net_current(i_sensor, leakage_a)
    fires = net > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        ramp = np.where(
            fires,
            np.asarray(cint_f, dtype=float) * swing_v / np.where(fires, net, 1.0),
            np.inf,
        )
    return ramp


def cycle_period(i_sensor, cint_f, swing_v, leakage_a, comparator_delay_s, tau_delay_s):
    """tau2 of Fig. 3: one full sawtooth period (``inf`` if never firing)."""
    return ramp_time(i_sensor, cint_f, swing_v, leakage_a) + dead_time(
        comparator_delay_s, tau_delay_s
    )


def frequency(i_sensor, cint_f, swing_v, leakage_a, comparator_delay_s, tau_delay_s):
    """Reset-pulse frequency; 0 where the pixel cannot fire."""
    period = cycle_period(i_sensor, cint_f, swing_v, leakage_a, comparator_delay_s, tau_delay_s)
    with np.errstate(divide="ignore"):
        return np.where(np.isfinite(period), 1.0 / period, 0.0)


def ideal_frequency(i_sensor, cint_f, swing_v):
    """The textbook I/(Cint*swing) line (no dead time, no leakage)."""
    i = np.asarray(i_sensor, dtype=float)
    return np.maximum(0.0, i) / (np.asarray(cint_f, dtype=float) * swing_v)


def max_frequency(comparator_delay_s, tau_delay_s):
    """Dead-time-limited ceiling 1/(tau_cmp + tau_delay)."""
    return 1.0 / dead_time(comparator_delay_s, tau_delay_s)


def current_from_frequency(
    frequency_hz, cint_f, swing_v, leakage_a, comparator_delay_s, tau_delay_s
):
    """Controller-side inverse transfer (dead-time corrected), vectorised.

    I = C*dV / (1/f - dead) + leakage.  Zero where f <= 0; raises where a
    frequency exceeds the dead-time ceiling (same as the object model).
    """
    f = np.asarray(frequency_hz, dtype=float)
    dead = dead_time(comparator_delay_s, tau_delay_s)
    positive = f > 0
    with np.errstate(divide="ignore"):
        period = np.where(positive, 1.0 / np.where(positive, f, 1.0), np.inf)
    ramp = period - dead
    if np.any(positive & (ramp <= 0)):
        bad = np.max(np.where(positive & (ramp <= 0), f, 0.0))
        raise ValueError(f"frequency {bad} Hz exceeds the dead-time limit")
    with np.errstate(divide="ignore"):
        current = np.asarray(cint_f, dtype=float) * swing_v / ramp + leakage_a
    return np.where(positive, current, 0.0)


def expected_count(i_sensor, frame_s, cint_f, swing_v, leakage_a, comparator_delay_s, tau_delay_s):
    """Mean (un-quantised) count in a frame; 0 where never firing."""
    period = cycle_period(i_sensor, cint_f, swing_v, leakage_a, comparator_delay_s, tau_delay_s)
    with np.errstate(divide="ignore"):
        return np.where(np.isfinite(period), frame_s / period, 0.0)


def count_noise_sigma(
    i_sensor,
    frame_s,
    cint_f,
    swing_v,
    leakage_a,
    comparator_delay_s,
    tau_delay_s,
    noise_rms_v,
):
    """Standard deviation of the frame count from comparator noise.

    Each cycle's ramp varies by ``sigma_T = ramp * (sigma_V / swing)``;
    the frame accumulates ``sqrt(N)`` of them.  Used both by
    :func:`count_in_frame` and by parity tests to budget tolerances.
    """
    ramp = ramp_time(i_sensor, cint_f, swing_v, leakage_a)
    fires = np.isfinite(ramp)
    period = ramp + dead_time(comparator_delay_s, tau_delay_s)
    with np.errstate(divide="ignore", invalid="ignore"):
        expected = np.where(fires, frame_s / period, 0.0)
        sigma_cycle = np.where(fires, ramp, 0.0) * (noise_rms_v / np.asarray(swing_v, dtype=float))
        sigma = np.sqrt(expected) * np.where(fires, sigma_cycle / period, 0.0)
    return np.where(fires, sigma, 0.0)


def saturate_counts(counts, counter_bits):
    """Clip counts at the n-bit counter's full scale (saturating mode,
    as :class:`~repro.pixel.counter.PixelCounter` does).

    Accepts the same [1, 64] width range as PixelCounter; at >= 63 bits
    the full scale is at or above the int64 ceiling, so non-negative
    kernel counts can never overflow and no clipping is needed.
    """
    if not 1 <= counter_bits <= 64:
        raise ValueError("counter width must lie in [1, 64]")
    if counter_bits >= 63:
        return counts
    full_scale = (1 << counter_bits) - 1
    return np.minimum(counts, full_scale)


def count_in_frame(
    i_sensor,
    frame_s: float,
    *,
    cint_f,
    swing_v,
    leakage_a=0.0,
    comparator_delay_s=0.0,
    tau_delay_s=100e-9,
    noise_rms_v=0.0,
    rng: RngLike = None,
    start_phase=None,
    jitter_z=None,
    counter_bits: int | None = None,
) -> np.ndarray:
    """Number of reset pulses per pixel within a counting frame.

    The vectorised A/D conversion: count = floor(expected + phase +
    jitter), clipped at zero and (optionally) at the counter full scale;
    pixels whose current sits at or below the leakage floor read 0.

    Stream discipline (differs from the per-object model, see module
    docstring): when ``start_phase`` is ``None`` one uniform array is
    drawn for all pixels, then — if ``noise_rms_v > 0`` — one standard
    normal array for the accumulated cycle jitter.  ``jitter_z``
    supplies that standard-normal array explicitly (the batched
    campaign fast path replays each point's own stream draws); with
    both ``start_phase`` and ``jitter_z`` given the conversion is fully
    deterministic and ``rng`` is never consulted.
    """
    if frame_s <= 0:
        raise ValueError("frame must be positive")
    i = np.asarray(i_sensor, dtype=float)
    shape = np.broadcast_shapes(
        i.shape,
        np.shape(cint_f),
        np.shape(swing_v),
        np.shape(leakage_a),
        np.shape(noise_rms_v),
        () if start_phase is None else np.shape(start_phase),
    )
    ramp = np.broadcast_to(ramp_time(i, cint_f, swing_v, leakage_a), shape)
    fires = np.isfinite(ramp)
    period = ramp + dead_time(comparator_delay_s, tau_delay_s)
    with np.errstate(invalid="ignore"):
        expected = np.where(fires, frame_s / period, 0.0)

    generator: np.random.Generator | None = None
    if start_phase is None:
        generator = ensure_rng(rng)
        phase = generator.uniform(0.0, 1.0, size=shape)
    else:
        phase = np.broadcast_to(np.asarray(start_phase, dtype=float), shape)
        if np.any((phase < 0.0) | (phase > 1.0)):
            raise ValueError("start_phase must lie in [0, 1]")

    value = expected + phase
    if np.any(np.asarray(noise_rms_v, dtype=float) > 0):
        # The same envelope parity tests budget their tolerances with.
        sigma = count_noise_sigma(
            i, frame_s, cint_f, swing_v, leakage_a, comparator_delay_s, tau_delay_s, noise_rms_v
        )
        if jitter_z is None:
            if generator is None:
                generator = ensure_rng(rng)
            jitter_z = generator.normal(0.0, 1.0, size=shape)
        else:
            jitter_z = np.broadcast_to(np.asarray(jitter_z, dtype=float), shape)
        value = value + jitter_z * sigma

    counts = np.floor(value).astype(np.int64)
    counts = np.where(fires, np.maximum(counts, 0), np.int64(0))
    if counter_bits is not None:
        counts = saturate_counts(counts, counter_bits)
    return counts


def measured_frequency(counts, frame_s):
    """count / frame — the quantised frequency estimate."""
    if frame_s <= 0:
        raise ValueError("frame must be positive")
    return np.asarray(counts, dtype=float) / frame_s


def host_current_estimate(
    counts,
    frame_s: float,
    cint_nominal_f,
    gain_correction=1.0,
    swing_nominal_v: float = 1.0,
) -> np.ndarray:
    """Host-side conversion of counts back to amperes.

    Mirrors :meth:`DnaSensorPixel.current_estimate` operation for
    operation (``frequency * nominal_cint * nominal_swing * gain``) so
    object-model numbers are reproduced bit for bit.
    """
    if frame_s <= 0:
        raise ValueError("frame must be positive")
    counts = np.asarray(counts)
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    return counts / frame_s * cint_nominal_f * swing_nominal_v * gain_correction


def calibration_corrections(
    counts,
    i_reference,
    frame_s: float,
    dead_time_s: float,
    cint_nominal_f: float = 100 * fF,
    swing_nominal_v: float = 1.0,
) -> np.ndarray:
    """Gain corrections from a calibration conversion, vectorised.

    expected = 1/(Cnom*swing/i_ref + dead); correction = expected /
    (count/frame) — the formula of :meth:`DnaSensorPixel.calibrate`.
    Raises when any pixel produced no counts (cannot calibrate), as the
    object model does.
    """
    counts = np.asarray(counts)
    i_ref = np.asarray(i_reference, dtype=float)
    if np.any(i_ref <= 0):
        raise ValueError("reference current must be positive")
    zeros = int(np.count_nonzero(counts == 0))
    if zeros:
        raise ValueError(
            f"reference current produced no counts at {zeros} site(s); cannot calibrate"
        )
    measured = counts / frame_s
    nominal_period = (cint_nominal_f * swing_nominal_v) / i_ref + dead_time_s
    expected = 1.0 / nominal_period
    return expected / measured


def sensor_currents(
    surface_concentration,
    diffusion_coefficient_term: float,
    geometry_factor: float,
    background_current_a: float,
    bias_ok=True,
) -> np.ndarray:
    """Redox-cycling transduction, vectorised over sites.

    ``diffusion_coefficient_term`` is ``electrons * FARADAY * D`` so the
    multiplication order matches
    :meth:`RedoxCyclingSensor.current` exactly (bit parity); mis-biased
    chips read background only.
    """
    conc = np.asarray(surface_concentration, dtype=float)
    if np.any(conc < 0):
        raise ValueError("concentration must be non-negative")
    diffusive = diffusion_coefficient_term * conc * geometry_factor
    current = background_current_a + diffusive
    return np.where(bias_ok, current, background_current_a)


def dead_pixel_mask(leakage_a, floor_a: float = DEAD_PIXEL_LEAKAGE_A) -> np.ndarray:
    """Pixels whose leakage exceeds the smallest measurable current."""
    return np.asarray(leakage_a, dtype=float) >= floor_a
