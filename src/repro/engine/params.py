"""Struct-of-arrays pixel parameters for the vectorized backend.

One :class:`PixelArrayParams` holds every per-pixel quantity the
sawtooth-ADC kernels need, as ``(n_chips, rows, cols)`` ndarrays —
the array-scale replacement for a list of
:class:`~repro.pixel.pixel.DnaSensorPixel` objects.

Two draw modes:

* ``"paired"`` — replicates the object chip's RNG consumption exactly:
  spawn one child stream per site (``core.rng.spawn_children``), then
  draw each site's :class:`PixelVariation` from its child.  A
  :class:`~repro.chip.dna_chip.DnaMicroarrayChip` built from the same
  generator gets *bit-identical* pixel parameters — the foundation of
  the backend parity tests.
* ``"fast"`` — draws whole-array vectors straight from the generator
  (three draws total instead of three per site).  Statistically
  identical spread, different realisation; the default for
  array-scale Monte Carlo where no object twin exists.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.rng import RngLike, ensure_rng, spawn_children
from ..core.units import fF, ns
from ..pixel.pixel import PixelVariation

DRAW_MODES = ("paired", "fast")

#: Process-mismatch sigmas shared by every draw path.  The wafer layer
#: (:mod:`repro.wafer`) decomposes exactly these totals into radial /
#: reticle / white components, so they are named here rather than
#: hidden in the ``draw`` signature.
DEFAULT_SIGMA_OFFSET_V = 0.008
DEFAULT_SIGMA_CINT_REL = 0.015
DEFAULT_LEAKAGE_MEAN_A = 2.0e-15


@dataclass
class PixelArrayParams:
    """Per-pixel sawtooth-ADC parameters over a ``(n_chips, rows, cols)`` grid.

    Scalars hold design values shared by every pixel; arrays hold the
    drawn per-instance deviations.
    """

    cint_f: np.ndarray  # actual integration capacitance per pixel
    cint_relative_error: np.ndarray
    comparator_offset_v: np.ndarray
    leakage_a: np.ndarray
    cint_nominal_f: float = 100 * fF
    swing_nominal_v: float = 1.0
    v_reset: float = 0.0
    tau_delay_s: float = 100 * ns
    comparator_delay_s: float = 50 * ns
    noise_rms_v: float = 0.002
    counter_bits: int = 24

    def __post_init__(self) -> None:
        arrays = {
            "cint_f": self.cint_f,
            "cint_relative_error": self.cint_relative_error,
            "comparator_offset_v": self.comparator_offset_v,
            "leakage_a": self.leakage_a,
        }
        shapes = {name: np.shape(a) for name, a in arrays.items()}
        if len(set(shapes.values())) != 1:
            raise ValueError(f"parameter arrays disagree on shape: {shapes}")
        shape = next(iter(shapes.values()))
        if len(shape) != 3:
            raise ValueError(f"parameter arrays must be (n_chips, rows, cols), got {shape}")
        for name, a in arrays.items():
            setattr(self, name, np.asarray(a, dtype=float))
        if np.any(self.cint_f <= 0):
            raise ValueError("capacitance must be positive")
        if np.any(self.leakage_a < 0):
            raise ValueError("leakage must be non-negative")
        if np.any(self.swing_v <= 0):
            raise ValueError("comparator threshold must sit above the reset level")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int, int]:
        return self.cint_f.shape

    @property
    def n_chips(self) -> int:
        return self.shape[0]

    @property
    def rows(self) -> int:
        return self.shape[1]

    @property
    def cols(self) -> int:
        return self.shape[2]

    @property
    def sites(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------
    # Derived per-pixel quantities
    # ------------------------------------------------------------------
    @property
    def effective_threshold_v(self) -> np.ndarray:
        """Rising trip level including per-pixel comparator offset."""
        return self.swing_nominal_v + self.comparator_offset_v

    @property
    def swing_v(self) -> np.ndarray:
        """Integration swing from reset level to effective threshold."""
        return self.effective_threshold_v - self.v_reset

    @property
    def cint_host_nominal_f(self) -> np.ndarray:
        """The nominal capacitance the host software assumes per pixel:
        ``actual / (1 + relative_error)`` — the exact expression
        :meth:`DnaSensorPixel.current_estimate` evaluates, kept so host
        estimates match the object model bit for bit."""
        return self.cint_f / (1.0 + self.cint_relative_error)

    @property
    def dead_time_s(self) -> float:
        return self.comparator_delay_s + self.tau_delay_s

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def draw(
        cls,
        rows: int,
        cols: int,
        rng: RngLike = None,
        mode: str = "fast",
        sigma_offset_v: float = 0.008,
        sigma_cint_rel: float = 0.015,
        leakage_mean_a: float = 2.0e-15,
        **design: float,
    ) -> "PixelArrayParams":
        """Draw one chip's worth of pixel mismatch (``n_chips == 1``).

        ``design`` passes through scalar fields (``cint_nominal_f``,
        ``counter_bits``, ...).  See the module docstring for the two
        modes' RNG semantics.
        """
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be positive")
        if mode not in DRAW_MODES:
            raise ValueError(f"unknown draw mode {mode!r}; choose from {DRAW_MODES}")
        generator = ensure_rng(rng)
        sites = rows * cols
        if mode == "paired":
            offsets = np.empty(sites)
            cint_rel = np.empty(sites)
            leakage = np.empty(sites)
            for index, child in enumerate(spawn_children(generator, sites)):
                variation = PixelVariation.draw(
                    child,
                    sigma_offset_v=sigma_offset_v,
                    sigma_cint_rel=sigma_cint_rel,
                    leakage_mean_a=leakage_mean_a,
                )
                offsets[index] = variation.comparator_offset_v
                cint_rel[index] = variation.cint_relative_error
                leakage[index] = variation.leakage_a
        else:
            offsets = generator.normal(0.0, sigma_offset_v, size=sites)
            cint_rel = generator.normal(0.0, sigma_cint_rel, size=sites)
            leakage = np.abs(generator.normal(leakage_mean_a, 0.5 * leakage_mean_a, size=sites))
        shape = (1, rows, cols)
        cint_nominal = design.get("cint_nominal_f", 100 * fF)
        return cls(
            cint_f=(cint_nominal * (1.0 + cint_rel)).reshape(shape),
            cint_relative_error=cint_rel.reshape(shape),
            comparator_offset_v=offsets.reshape(shape),
            leakage_a=leakage.reshape(shape),
            **design,
        )

    @classmethod
    def from_pixels(cls, pixels, rows: int, cols: int) -> "PixelArrayParams":
        """Gather the parameter arrays out of built
        :class:`DnaSensorPixel` objects (one chip) — the exact bridge
        from an object-model chip to the kernels."""
        if len(pixels) != rows * cols:
            raise ValueError(f"{len(pixels)} pixels do not fill a {rows}x{cols} grid")
        template = pixels[0]
        shape = (1, rows, cols)
        return cls(
            cint_f=np.array([p.adc.cint.capacitance_f for p in pixels]).reshape(shape),
            cint_relative_error=np.array(
                [p.variation.cint_relative_error for p in pixels]
            ).reshape(shape),
            comparator_offset_v=np.array(
                [p.adc.comparator.offset_v for p in pixels]
            ).reshape(shape),
            leakage_a=np.array([p.adc.leakage_a for p in pixels]).reshape(shape),
            cint_nominal_f=template.adc.cint.capacitance_f
            / (1.0 + template.variation.cint_relative_error),
            swing_nominal_v=template.adc.comparator.threshold_v,
            v_reset=template.adc.v_reset,
            tau_delay_s=template.adc.tau_delay_s,
            comparator_delay_s=template.adc.comparator.delay_s,
            noise_rms_v=template.adc.comparator.noise_rms_v,
            counter_bits=template.counter.bits,
        )

    @classmethod
    def stack(cls, chips: list["PixelArrayParams"]) -> "PixelArrayParams":
        """Concatenate per-chip draws along the batch axis."""
        if not chips:
            raise ValueError("need at least one chip to stack")
        first = chips[0]
        return replace(
            first,
            cint_f=np.concatenate([c.cint_f for c in chips], axis=0),
            cint_relative_error=np.concatenate([c.cint_relative_error for c in chips], axis=0),
            comparator_offset_v=np.concatenate([c.comparator_offset_v for c in chips], axis=0),
            leakage_a=np.concatenate([c.leakage_a for c in chips], axis=0),
        )

    def kernel_kwargs(self) -> dict:
        """The keyword bundle the counting kernels take."""
        return {
            "cint_f": self.cint_f,
            "swing_v": self.swing_v,
            "leakage_a": self.leakage_a,
            "comparator_delay_s": self.comparator_delay_s,
            "tau_delay_s": self.tau_delay_s,
            "noise_rms_v": self.noise_rms_v,
        }
