"""Struct-of-arrays pixel parameters for the neural-recording backend.

One :class:`NeuroArrayParams` holds every per-pixel quantity of the
Fig. 6 calibrated sensor pixel — threshold and beta planes of M1, the
M2 calibration-current plane, kT/C and charge-injection draw planes —
as ``(n_chips, rows, cols)`` ndarrays, plus the vectorised calibration
/ droop / readout arithmetic of
:class:`~repro.neuro.array.NeuralArrayModel` batched over whole chip
instances.

Draw parity: the object-model array already draws its mismatch as
whole planes, so a single-chip :meth:`draw` consumes the construction
generator *identically* to ``NeuralArrayModel(geometry, design, rng)``
and yields bit-identical planes — there is no separate "paired" mode
to opt into.  Multi-chip batches consume one spawned child per chip
(``core.rng.spawn_children``), mirroring how a list of object chips
would be built.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core.noise import kt_over_c_noise
from ..core.rng import RngLike, ensure_rng, spawn_children
from ..devices.mosfet import Mosfet
from ..devices.switches import MosSwitch
from ..neuro.sensor_pixel import (
    NeuralPixelDesign,
    ekv_ids_array,
    ekv_vgs_for_current_array,
)


@dataclass
class NeuroArrayParams:
    """Per-pixel neural-sensor parameters over ``(n_chips, rows, cols)``.

    Arrays hold the drawn per-instance deviations; ``design`` the
    shared scalar design values (coupling factor, storage capacitance,
    switch geometry, ...).
    """

    vth: np.ndarray
    beta: np.ndarray
    i_m2: np.ndarray
    ktc_draws: np.ndarray
    injection_draws: np.ndarray
    design: NeuralPixelDesign = field(default_factory=NeuralPixelDesign)
    stored_vgs: np.ndarray | None = None

    def __post_init__(self) -> None:
        arrays = {
            "vth": self.vth,
            "beta": self.beta,
            "i_m2": self.i_m2,
            "ktc_draws": self.ktc_draws,
            "injection_draws": self.injection_draws,
        }
        shapes = {name: np.shape(a) for name, a in arrays.items()}
        if len(set(shapes.values())) != 1:
            raise ValueError(f"parameter arrays disagree on shape: {shapes}")
        shape = next(iter(shapes.values()))
        if len(shape) != 3:
            raise ValueError(f"parameter arrays must be (n_chips, rows, cols), got {shape}")
        for name, a in arrays.items():
            setattr(self, name, np.asarray(a, dtype=float))
        if np.any(self.beta <= 0):
            raise ValueError("beta must be positive")
        if np.any(self.i_m2 <= 0):
            raise ValueError("calibration currents must be positive")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int, int]:
        return self.vth.shape

    @property
    def n_chips(self) -> int:
        return self.shape[0]

    @property
    def rows(self) -> int:
        return self.shape[1]

    @property
    def cols(self) -> int:
        return self.shape[2]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def draw(
        cls,
        rows: int,
        cols: int,
        design: NeuralPixelDesign | None = None,
        rng: RngLike = None,
        n_chips: int = 1,
    ) -> "NeuroArrayParams":
        """Draw the mismatch planes for ``n_chips`` chip instances.

        A single chip consumes ``rng`` exactly as the
        ``NeuralArrayModel`` constructor does (six whole-plane draws in
        the same order), so the planes are bit-identical to the object
        model's.  Batches spawn one child generator per chip.
        """
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be positive")
        if n_chips < 1:
            raise ValueError("need at least one chip in the batch")
        design = design or NeuralPixelDesign()
        generator = ensure_rng(rng)
        chip_rngs = [generator] if n_chips == 1 else spawn_children(generator, n_chips)
        process = design.process
        sigma_vth = process.sigma_vth(design.m1_width, design.m1_length)
        sigma_beta = process.sigma_beta(design.m1_width, design.m1_length)
        beta_nominal = process.mu_n_cox * design.m1_width / design.m1_length
        m2_sigma = process.sigma_beta(2 * design.m1_width, design.m1_length)
        m2_vth_sigma = process.sigma_vth(2 * design.m1_width, design.m1_length)
        vth = np.empty((n_chips, rows, cols))
        beta = np.empty((n_chips, rows, cols))
        i_m2 = np.empty((n_chips, rows, cols))
        ktc = np.empty((n_chips, rows, cols))
        injection = np.empty((n_chips, rows, cols))
        for chip, chip_rng in enumerate(chip_rngs):
            vth[chip] = process.vth_n + chip_rng.normal(0.0, sigma_vth, size=(rows, cols))
            beta[chip] = beta_nominal * (
                1.0 + chip_rng.normal(0.0, sigma_beta, size=(rows, cols))
            )
            i_m2[chip] = design.calibration_current * (
                1.0 + chip_rng.normal(0.0, m2_sigma, size=(rows, cols))
            ) * (1.0 - 3.0 * chip_rng.normal(0.0, m2_vth_sigma, size=(rows, cols)))
            ktc[chip] = chip_rng.normal(0.0, 1.0, size=(rows, cols))
            injection[chip] = chip_rng.normal(0.0, 1.0, size=(rows, cols))
        return cls(
            vth=vth,
            beta=beta,
            i_m2=i_m2,
            ktc_draws=ktc,
            injection_draws=injection,
            design=design,
        )

    @classmethod
    def from_array_model(cls, model) -> "NeuroArrayParams":
        """Wrap an existing :class:`NeuralArrayModel`'s drawn planes as
        a single-chip parameter batch (copies, so driving the batch
        never mutates the source model)."""
        shape = (1, model.geometry.rows, model.geometry.cols)
        params = cls(
            vth=model.vth.copy().reshape(shape),
            beta=model.beta.copy().reshape(shape),
            i_m2=model.i_m2.copy().reshape(shape),
            ktc_draws=model._ktc_draws.copy().reshape(shape),
            injection_draws=model._injection_draws.copy().reshape(shape),
            design=model.design,
        )
        if model.stored_vgs is not None:
            params.stored_vgs = model.stored_vgs.copy().reshape(shape)
        return params

    @classmethod
    def stack(cls, batches: list["NeuroArrayParams"]) -> "NeuroArrayParams":
        """Concatenate per-chip draws along the batch axis."""
        if not batches:
            raise ValueError("need at least one parameter batch to stack")
        first = batches[0]
        stored = (
            None
            if any(b.stored_vgs is None for b in batches)
            else np.concatenate([b.stored_vgs for b in batches], axis=0)
        )
        return replace(
            first,
            vth=np.concatenate([b.vth for b in batches], axis=0),
            beta=np.concatenate([b.beta for b in batches], axis=0),
            i_m2=np.concatenate([b.i_m2 for b in batches], axis=0),
            ktc_draws=np.concatenate([b.ktc_draws for b in batches], axis=0),
            injection_draws=np.concatenate([b.injection_draws for b in batches], axis=0),
            stored_vgs=stored,
        )

    # ------------------------------------------------------------------
    # Calibration (batched twin of NeuralArrayModel)
    # ------------------------------------------------------------------
    def _switch(self) -> MosSwitch:
        return MosSwitch(self.design.s1_width, self.design.s1_length, self.design.process)

    def nominal_gate_voltage(self) -> float:
        """The single gate voltage an uncalibrated design would broadcast."""
        nominal = Mosfet(
            self.design.m1_width, self.design.m1_length, "n", self.design.process
        )
        return nominal.vgs_for_current(self.design.calibration_current)

    def calibrate(self, include_imperfections: bool = True) -> np.ndarray:
        """Array-parallel calibration over every chip in the batch.

        Same formulas and operation order as
        :meth:`NeuralArrayModel.calibrate` (the injection step uses each
        chip's own typical stored voltage), evaluated per chip on the
        batch axis.  Returns the stored plane stack."""
        stored = ekv_vgs_for_current_array(
            self.i_m2, self.vth, self.beta, self.design.process
        )
        if include_imperfections:
            switch = self._switch()
            node_c = self.design.storage_capacitance
            gross = np.array(
                [
                    switch.injection_step(float(np.mean(stored[chip])), node_c)
                    + switch.clock_feedthrough(node_c)
                    for chip in range(self.n_chips)
                ]
            )[:, None, None]
            stored = stored + gross * (1.0 - self.design.dummy_compensation)
            stored = stored + np.abs(gross) * self.design.injection_residual_sigma * self.injection_draws
            stored = stored + kt_over_c_noise(node_c) * self.ktc_draws
        self.stored_vgs = stored
        return stored

    def droop(self, hold_time_s: float) -> None:
        if self.stored_vgs is None:
            raise RuntimeError("array has not been calibrated")
        if hold_time_s < 0:
            raise ValueError("hold time must be non-negative")
        rate = self._switch().droop_rate(self.design.storage_capacitance)
        self.stored_vgs = self.stored_vgs - rate * hold_time_s

    # ------------------------------------------------------------------
    # Currents (batched twin of NeuralArrayModel)
    # ------------------------------------------------------------------
    def pixel_currents(self, sensor_voltages: np.ndarray | float = 0.0) -> np.ndarray:
        if self.stored_vgs is None:
            raise RuntimeError("array has not been calibrated")
        vgs = self.stored_vgs + self.design.coupling_factor * np.asarray(sensor_voltages)
        return ekv_ids_array(vgs, self.vth, self.beta, self.design.process)

    def uncalibrated_currents(self) -> np.ndarray:
        v_nominal = self.nominal_gate_voltage()
        return ekv_ids_array(
            np.full_like(self.vth, v_nominal), self.vth, self.beta, self.design.process
        )

    def offset_currents(self) -> np.ndarray:
        return self.pixel_currents(0.0) - self.i_m2

    def uncalibrated_offset_currents(self) -> np.ndarray:
        return self.uncalibrated_currents() - self.i_m2

    def transconductance_plane(self, delta_v: float = 1e-5) -> np.ndarray:
        if self.stored_vgs is None:
            raise RuntimeError("array has not been calibrated")
        up = self.pixel_currents(delta_v)
        down = self.pixel_currents(-delta_v)
        return (up - down) / (2.0 * delta_v)

    def input_referred_offsets(self) -> np.ndarray:
        gm = self.transconductance_plane()
        return self.offset_currents() / gm
