"""Deterministic fault injection against the chip's digital seams.

A :class:`FaultInjector` is built once per run from the spec's fault
list, a **named SeedTree stream** (the ``"faults"`` stream the DNA
workload provisions — never an RNG constructed here; see lint rule
D108), and the run's trace recorder.  It attaches to the duck-typed
``injector`` seam on :class:`~repro.chip.serial_interface.SerialLink`
and is consulted by the resilient readout controller; the chip package
never imports this module.

Determinism contract: every decision is a draw from the single stream
in a fixed order (registers → stuck sites → per-chunk stall → per-
transfer flips, retries re-drawing in sequence), and all control flow
depends only on prior draws.  Same ``(spec, seed)`` ⇒ byte-identical
fault schedule under any executor, worker count or cache round trip.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..chip.serial_interface import CHIP_TO_HOST, HOST_TO_CHIP
from .specs import FaultSpec, as_fault

#: Canonical spec direction -> serial wire tag.
_WIRES = {"chip_to_host": CHIP_TO_HOST, "host_to_chip": HOST_TO_CHIP}


class FaultInjector:
    """Draws fault occurrences from one stream; emits ``fault.inject``
    trace events through the recorder it was given (or stays silent
    when tracing is off)."""

    def __init__(
        self,
        faults: Any,
        rng: np.random.Generator,
        recorder: Any = None,
    ) -> None:
        if not isinstance(rng, np.random.Generator):
            raise TypeError(
                "FaultInjector requires a numpy Generator from a named "
                f"SeedTree stream, got {type(rng).__name__}"
            )
        self.specs: tuple[FaultSpec, ...] = tuple(as_fault(f) for f in faults)
        self.rng = rng
        self.recorder = recorder
        self._serial = tuple(s for s in self.specs if s.kind == "serial_bitflip")
        self._stalls = tuple(s for s in self.specs if s.kind == "sequencer_stall")
        self._registers = tuple(s for s in self.specs if s.kind == "register_corrupt")
        self._stuck_specs = tuple(s for s in self.specs if s.kind == "stuck_pixel")
        self._stuck: Optional[tuple[tuple[int, int], ...]] = None

    # ------------------------------------------------------------------
    def _emit(self, fault: str, channel: str, **details: Any) -> None:
        if self.recorder is not None:
            self.recorder.fault_inject(fault, channel, **details)

    # ------------------------------------------------------------------
    # Serial wire corruption (consulted by SerialLink.transfer)
    # ------------------------------------------------------------------
    def frame_flips(self, n_bits: int, direction: str) -> tuple[int, ...]:
        """Bit positions to invert in the next frame crossing ``direction``
        (a wire tag), or ``()``.  One occurrence draw per matching spec
        per transfer — retried frames re-draw, so a retry can succeed."""
        flips: set[int] = set()
        for spec in self._serial:
            if spec.rate <= 0.0:
                continue
            wire = _WIRES.get(spec.direction)
            if wire is not None and wire != direction:
                continue
            if self.rng.random() >= spec.rate:
                continue
            positions = sorted(
                {int(p) for p in self.rng.integers(0, n_bits, size=spec.n_flips)}
            )
            flips.update(positions)
            self._emit(
                "serial_bitflip",
                "serial",
                direction=direction,
                positions=positions,
                n_bits=n_bits,
            )
        return tuple(sorted(flips))

    # ------------------------------------------------------------------
    # Sequencer stalls (consulted per response chunk)
    # ------------------------------------------------------------------
    def stall_s(self, frame_index: int) -> float:
        """Extra simulated dead time before response chunk ``frame_index``."""
        total = 0.0
        for spec in self._stalls:
            if spec.rate <= 0.0:
                continue
            if self.rng.random() < spec.rate:
                total += spec.stall_s
                self._emit(
                    "sequencer_stall", "seq", frame=frame_index, stall_s=spec.stall_s
                )
        return total

    # ------------------------------------------------------------------
    # Register upsets (consulted once per readout)
    # ------------------------------------------------------------------
    def corrupt_registers(self, registers: Any) -> list[str]:
        """Flip stored bits in the register file; returns corrupted names.

        Iterates ``registers.names()`` (sorted) per spec, so the draw
        order is fixed.  Read-only registers can be hit too — physics
        does not honour access bits; only recovery does.
        """
        corrupted: list[str] = []
        for spec in self._registers:
            if spec.rate <= 0.0:
                continue
            for name in registers.names():
                if self.rng.random() >= spec.rate:
                    continue
                width = registers.bits(name)
                positions = sorted(
                    {int(b) for b in self.rng.integers(0, width, size=spec.n_bits)}
                )
                mask = 0
                for bit in positions:
                    mask |= 1 << bit
                value = registers.corrupt(name, mask)
                corrupted.append(name)
                self._emit(
                    "register_corrupt", f"reg.{name}", bits=positions, value=value
                )
        return corrupted

    # ------------------------------------------------------------------
    # Stuck pixels (drawn once, stable across repeated readouts)
    # ------------------------------------------------------------------
    def stuck_sites(self, n_sites: int, full_scale: int) -> tuple[tuple[int, int], ...]:
        """``(site_index, latched_count)`` pairs, drawn on first call and
        cached — a stuck pixel stays stuck for the injector's lifetime."""
        if self._stuck is None:
            stuck: dict[int, int] = {}
            for spec in self._stuck_specs:
                if spec.rate <= 0.0:
                    continue
                mask = self.rng.random(n_sites) < spec.rate
                value = 0 if spec.mode == "zero" else full_scale
                sites = [int(i) for i in np.nonzero(mask)[0]]
                for site in sites:
                    stuck[site] = value
                if sites:
                    self._emit("stuck_pixel", "array", sites=sites, value=value)
            self._stuck = tuple(sorted(stuck.items()))
        return self._stuck
