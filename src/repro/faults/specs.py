"""Frozen, serializable fault specifications.

The fault taxonomy models the digital-readout failure modes the paper's
6-pin serial architecture is exposed to in the field:

=================  =========================================================
kind               what it corrupts
=================  =========================================================
serial_bitflip     bits on the DIN/DOUT wires (per-frame occurrence)
sequencer_stall    extra dead time before a response chunk shifts out
register_corrupt   stored configuration-register bits (per readout)
stuck_pixel        a site's counter latched at zero or full scale
=================  =========================================================

Each spec is a frozen dataclass carrying only JSON-serializable scalars,
so a fault list rides inside an :class:`~repro.experiments.specs
.ExperimentSpec` unchanged: it hashes into ``content_hash()``, round
trips through ``to_dict``/``from_dict`` (the process-executor boundary),
and sweeps as an ordinary campaign axis (``faults.rate``).

*When* a fault fires is decided by :class:`~repro.faults.injector
.FaultInjector` drawing from a named SeedTree stream — the occurrence
pattern is a pure function of ``(spec, seed)``, never of wall clock,
thread timing or executor choice.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Mapping, Type, Union


#: kind -> spec class, filled by :func:`register_fault`.
FAULT_TYPES: dict[str, Type["FaultSpec"]] = {}


def register_fault(cls: Type["FaultSpec"]) -> Type["FaultSpec"]:
    """Class decorator: add a FaultSpec subclass to the registry."""
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls.__name__} must be a dataclass")
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must define a non-empty kind")
    if cls.kind in FAULT_TYPES:
        raise ValueError(f"duplicate fault kind {cls.kind!r}")
    FAULT_TYPES[cls.kind] = cls
    return cls


def fault_kinds() -> list[str]:
    """Registered fault kinds, sorted."""
    return sorted(FAULT_TYPES)


@dataclass(frozen=True)
class FaultSpec:
    """Base class: a rate plus kind-specific knobs, all serializable."""

    kind: ClassVar[str] = ""

    rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(
                f"{type(self).__name__}.rate must lie in [0, 1], got {self.rate}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Canonical plain-dict form (the shape stored on specs)."""
        data: dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            data[field.name] = getattr(self, field.name)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        fields = {f.name for f in dataclasses.fields(cls)}
        payload = {k: v for k, v in data.items() if k != "kind"}
        unknown = set(payload) - fields
        if unknown:
            raise ValueError(
                f"unknown field(s) {sorted(unknown)} for fault kind {cls.kind!r}"
            )
        return cls(**payload)


@register_fault
@dataclass(frozen=True)
class SerialBitflipFault(FaultSpec):
    """Bit corruption on the serial wires.

    With probability ``rate`` per frame crossing a matching wire,
    ``n_flips`` bit positions (drawn uniformly over the frame's bit
    stream) are inverted.  The frame checksum catches any flip set that
    changes the byte sum mod 256; sets that preserve it decode cleanly
    and become *silent* corruption.
    """

    kind: ClassVar[str] = "serial_bitflip"

    n_flips: int = 1
    direction: str = "chip_to_host"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_flips < 1:
            raise ValueError(f"n_flips must be >= 1, got {self.n_flips}")
        if self.direction not in ("chip_to_host", "host_to_chip", "both"):
            raise ValueError(
                f"direction must be chip_to_host/host_to_chip/both, "
                f"got {self.direction!r}"
            )


@register_fault
@dataclass(frozen=True)
class SequencerStallFault(FaultSpec):
    """A scan-sequencer hiccup: with probability ``rate`` per response
    chunk, ``stall_s`` of dead simulated time elapses before the chunk
    shifts out.  Purely temporal — visible in the trace clock, never in
    the decoded bytes."""

    kind: ClassVar[str] = "sequencer_stall"

    stall_s: float = 1e-4

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.stall_s <= 0.0:
            raise ValueError(f"stall_s must be positive, got {self.stall_s}")


@register_fault
@dataclass(frozen=True)
class RegisterCorruptFault(FaultSpec):
    """Configuration-register upset: with probability ``rate`` per
    register per readout, ``n_bits`` stored bits flip.  The resilient
    controller's read-back verify detects the mismatch against the host
    shadow and rewrites host-writable registers."""

    kind: ClassVar[str] = "register_corrupt"

    n_bits: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {self.n_bits}")


@register_fault
@dataclass(frozen=True)
class StuckPixelFault(FaultSpec):
    """A site's counter latched at a rail: each site is stuck with
    probability ``rate``, reading all zeros (``mode="zero"``) or full
    scale (``mode="full"``).  Checksums cannot catch it — the corruption
    happens before packing — so stuck sites are the canonical *silent*
    failure the ``fault_tolerance`` analysis quantifies."""

    kind: ClassVar[str] = "stuck_pixel"

    mode: str = "zero"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in ("zero", "full"):
            raise ValueError(f"mode must be zero/full, got {self.mode!r}")


FaultLike = Union[FaultSpec, Mapping[str, Any]]


def fault_from_dict(data: Mapping[str, Any]) -> FaultSpec:
    """Instantiate the registered spec class for ``data['kind']``."""
    try:
        kind = data["kind"]
    except KeyError:
        raise ValueError(f"fault entry {dict(data)!r} has no 'kind'")
    if kind not in FAULT_TYPES:
        raise ValueError(
            f"unknown fault kind {kind!r}; registered: {fault_kinds()}"
        )
    return FAULT_TYPES[kind].from_dict(data)


def as_fault(entry: FaultLike) -> FaultSpec:
    """Coerce a FaultSpec or mapping to a validated FaultSpec."""
    if isinstance(entry, FaultSpec):
        return entry
    if isinstance(entry, Mapping):
        return fault_from_dict(entry)
    raise TypeError(
        f"fault entries must be FaultSpec or mapping, got {type(entry).__name__}"
    )


def normalize_faults(entries: Any) -> tuple[dict[str, Any], ...]:
    """Validate and canonicalize a fault list to a tuple of plain dicts.

    This is the storage form on experiment specs: plain dicts survive
    JSON and the process-executor ``to_dict``/``from_dict`` round trip
    byte-identically, and the entry *order* is part of the spec — the
    injector draws per entry in list order, so order is hashed.
    """
    if entries is None:
        return ()
    if isinstance(entries, (str, bytes, Mapping)):
        raise TypeError("faults must be a sequence of fault entries")
    return tuple(as_fault(entry).to_dict() for entry in entries)
