"""Deterministic fault injection for the digital readout chain.

``repro.faults`` turns protocol-level failure modes — serial bit flips,
sequencer stalls, register upsets, stuck pixels — into frozen,
serializable spec entries that ride on experiment specs and sweep as
ordinary campaign axes (``--grid faults.rate=...``).  Occurrence
patterns are a pure function of ``(spec, seed)`` via SeedTree-keyed
streams, so the service cache, batched executor and resume machinery
work unchanged.  The chip package never imports this one: injection
reaches the hardware model through the same duck-typed seams the trace
recorder uses.
"""

from .injector import FaultInjector
from .specs import (
    FAULT_TYPES,
    FaultSpec,
    RegisterCorruptFault,
    SequencerStallFault,
    SerialBitflipFault,
    StuckPixelFault,
    as_fault,
    fault_from_dict,
    fault_kinds,
    normalize_faults,
    register_fault,
)

__all__ = [
    "FAULT_TYPES",
    "FaultInjector",
    "FaultSpec",
    "RegisterCorruptFault",
    "SequencerStallFault",
    "SerialBitflipFault",
    "StuckPixelFault",
    "as_fault",
    "fault_from_dict",
    "fault_kinds",
    "normalize_faults",
    "register_fault",
]
