"""Wafer-scale geometry with spatially correlated process variation.

The source paper's chips are single dies; real CMOS biosensor
fabrication is wafer-level — dies in a reticle grid on a circular
wafer, process parameters drifting radially and jumping per exposure.
This package scales the stack to that regime:

* :mod:`.geometry` — die placement on the wafer (edge exclusion,
  reticle indexing, pixel positions in the wafer frame);
* :mod:`.spec` — :class:`WaferSpec`, a frozen registry-integrated
  experiment (``kind="wafer"``) whose flat fields double as campaign
  sweep axes (``--grid reticle_sigma=0,0.2,0.4``);
* :mod:`.field` — the correlated mismatch field, drawn once per wafer
  from the seed tree and decomposed radial + reticle + white with a
  configurable variance split;
* :mod:`.evaluate` — tiled, bounded-memory evaluation with per-die
  bit-parity against standalone runs in the white-only limit;
* :mod:`.workload` — Runner/registry wiring (imports register the
  ``"wafer"`` workload).

Use::

    from repro.experiments import Runner
    from repro.wafer import WaferSpec

    result = Runner(seed=7).run(WaferSpec(radial_gradient=0.3, reticle_sigma=0.2))
    print(result.metrics["n_dies"], result.metrics["zero_site_fraction"])
"""

from __future__ import annotations

from .evaluate import (
    WAFER_TILE_SITES,
    iter_die_outputs,
    wafer_die_seed,
    wafer_field_for,
    wafer_records_and_metrics,
)
from .field import WaferField, sample_field
from .geometry import Die, WaferLayout, build_layout
from .spec import OVERRIDABLE_DIE_FIELDS, WaferSpec

from . import workload as _workload  # noqa: F401  (registers the workload)

__all__ = [
    "WAFER_TILE_SITES",
    "Die",
    "OVERRIDABLE_DIE_FIELDS",
    "WaferField",
    "WaferLayout",
    "WaferSpec",
    "build_layout",
    "iter_die_outputs",
    "sample_field",
    "wafer_die_seed",
    "wafer_field_for",
    "wafer_records_and_metrics",
]
