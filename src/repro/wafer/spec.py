"""`WaferSpec` — a frozen, registry-integrated wafer-scale experiment.

A wafer run is "every placed die runs the same array-scale measurement,
with process mismatch spatially correlated across the wafer".  The spec
is deliberately *flat*: geometry, the per-die measurement template and
the variance split are all top-level fields, so every one of them works
as a campaign axis (``repro sweep --grid reticle_sigma=0,0.2,0.4``)
without any nested-spec plumbing — :class:`~repro.campaigns.CampaignSpec`
validates axis names against the base spec's dataclass fields.

Variance split
--------------
``radial_gradient`` and ``reticle_sigma`` are *variance fractions* in
``[0, 1]`` (their sum at most 1).  The total per-pixel mismatch variance
is exactly the engine's default (:data:`repro.engine.params
.DEFAULT_SIGMA_OFFSET_V` / ``DEFAULT_SIGMA_CINT_REL``); the fractions
carve it into a deterministic radial bowl, a per-reticle offset, and the
remaining white i.i.d. component.  Both fractions zero means *white
only* — and the evaluation path then leaves each die's draws completely
untouched, which is what makes the bit-parity invariant against
standalone :class:`~repro.experiments.ArrayScaleSpec` runs structural
rather than numerical (see :mod:`repro.wafer.evaluate`).

Per-die overrides
-----------------
``die_overrides`` is a tuple of ``(grid_x, grid_y, field, value)``
entries adjusting *measurement* fields of individual dies (currents,
pattern, frame, calibration) — e.g. a process-control die measured with
a longer frame.  Mismatch geometry (``rows``/``cols``) is wafer-wide:
every die shares one mask set.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import lru_cache
from typing import Any

from ..experiments.specs import ArrayScaleSpec, ExperimentSpec, register_experiment
from .geometry import Die, WaferLayout, build_layout

__all__ = ["WaferSpec", "OVERRIDABLE_DIE_FIELDS"]

#: Die-template fields a ``die_overrides`` entry may adjust.  These are
#: measurement knobs only — geometry and mismatch mode stay wafer-wide
#: so the correlated field slices identically shaped planes everywhere.
OVERRIDABLE_DIE_FIELDS = (
    "i_low_a",
    "i_high_a",
    "pattern",
    "frame_s",
    "calibrate",
    "calibration_frame_s",
)


@lru_cache(maxsize=64)
def _layout_cached(
    wafer_diameter_mm: float,
    edge_exclusion_mm: float,
    die_width_mm: float,
    die_height_mm: float,
    reticle_rows: int,
    reticle_cols: int,
) -> WaferLayout:
    return build_layout(
        wafer_diameter_mm,
        edge_exclusion_mm,
        die_width_mm,
        die_height_mm,
        reticle_rows,
        reticle_cols,
    )


@register_experiment("wafer")
@dataclass(frozen=True)
class WaferSpec(ExperimentSpec):
    """One wafer of array-scale dies with correlated process variation.

    Defaults describe a 100 mm wafer of 10x10 mm dies carrying 16x16
    arrays — small enough for tests and examples; benchmarks scale
    ``rows``/``cols`` to 128x128 (million-pixel wafers).
    """

    # Wafer geometry
    wafer_diameter_mm: float = 100.0
    edge_exclusion_mm: float = 3.0
    die_width_mm: float = 10.0
    die_height_mm: float = 10.0
    reticle_rows: int = 2
    reticle_cols: int = 2
    # Per-die measurement template (ArrayScaleSpec facet)
    rows: int = 16
    cols: int = 16
    i_low_a: float = 1e-12
    i_high_a: float = 100e-9
    pattern: str = "logspan"
    frame_s: float = 0.1
    calibrate: bool = False
    calibration_frame_s: float = 0.05
    # Correlated-variance split (fractions of the total mismatch variance)
    radial_gradient: float = 0.0
    reticle_sigma: float = 0.0
    # Per-die measurement overrides: ((grid_x, grid_y, field, value), ...)
    die_overrides: tuple = ()
    backend: str = "vectorized"

    def __post_init__(self) -> None:
        if not 0.0 <= self.radial_gradient <= 1.0:
            raise ValueError("radial_gradient must lie in [0, 1]")
        if not 0.0 <= self.reticle_sigma <= 1.0:
            raise ValueError("reticle_sigma must lie in [0, 1]")
        if self.radial_gradient + self.reticle_sigma > 1.0 + 1e-12:
            raise ValueError(
                "correlated variance fractions exceed the total: "
                f"radial_gradient + reticle_sigma = "
                f"{self.radial_gradient + self.reticle_sigma:.3f} > 1"
            )
        if self.backend != "vectorized":
            raise ValueError("wafer runs are vectorized-only; backend must be 'vectorized'")
        # Geometry errors surface at construction, not first run.
        layout = self.layout()
        # Normalise die_overrides (JSON round trips lists) and validate
        # each entry against the layout and the die template.
        entries = []
        for entry in self.die_overrides:
            entry = tuple(entry)
            if len(entry) != 4:
                raise ValueError(
                    f"die_overrides entries are (grid_x, grid_y, field, value); got {entry!r}"
                )
            gx, gy, field, value = entry
            gx, gy = int(gx), int(gy)
            if field not in OVERRIDABLE_DIE_FIELDS:
                raise ValueError(
                    f"die override field {field!r} not in {OVERRIDABLE_DIE_FIELDS}"
                )
            try:
                layout.die_at(gx, gy)
            except KeyError as exc:
                raise ValueError(str(exc)) from None
            entries.append((gx, gy, field, value))
        object.__setattr__(self, "die_overrides", tuple(entries))
        # Template (and every overridden die spec) must be constructible:
        # ArrayScaleSpec's own validation covers the field values.
        template = self.die_template()
        # Sorted so a bad override always fails on the same die — set
        # iteration order would make the first error message vary run to
        # run.
        for gx, gy in sorted({(gx, gy) for gx, gy, _, _ in self.die_overrides}):
            template.replace(**self.overrides_for(gx, gy))

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def layout(self) -> WaferLayout:
        """The resolved die placement (cached per geometry)."""
        return _layout_cached(
            float(self.wafer_diameter_mm),
            float(self.edge_exclusion_mm),
            float(self.die_width_mm),
            float(self.die_height_mm),
            int(self.reticle_rows),
            int(self.reticle_cols),
        )

    @property
    def sites_per_die(self) -> int:
        return self.rows * self.cols

    @property
    def white_fraction(self) -> float:
        return 1.0 - self.radial_gradient - self.reticle_sigma

    @property
    def white_only(self) -> bool:
        """True when no correlated component is configured — the regime
        in which every die is bit-identical to its standalone run."""
        return self.radial_gradient == 0.0 and self.reticle_sigma == 0.0

    # ------------------------------------------------------------------
    # Die specs
    # ------------------------------------------------------------------
    def die_template(self) -> ArrayScaleSpec:
        """The per-die measurement as a standalone spec.  This is the
        exact spec a paired standalone run uses in the parity tests."""
        return ArrayScaleSpec(
            rows=self.rows,
            cols=self.cols,
            n_chips=1,
            i_low_a=self.i_low_a,
            i_high_a=self.i_high_a,
            pattern=self.pattern,
            frame_s=self.frame_s,
            calibrate=self.calibrate,
            calibration_frame_s=self.calibration_frame_s,
            backend="vectorized",
            mismatch="fast",
        )

    def overrides_for(self, grid_x: int, grid_y: int) -> dict[str, Any]:
        """The merged override mapping for one die (later entries win)."""
        merged: dict[str, Any] = {}
        for gx, gy, field, value in self.die_overrides:
            if gx == grid_x and gy == grid_y:
                merged[field] = value
        return merged

    def die_spec(self, die: Die) -> ArrayScaleSpec:
        """The standalone spec for one placed die, overrides applied."""
        overrides = self.overrides_for(die.grid_x, die.grid_y)
        template = self.die_template()
        return template.replace(**overrides) if overrides else template

    # ------------------------------------------------------------------
    # Stream facet
    # ------------------------------------------------------------------
    def field_key(self) -> str:
        """The correlated-field facet of the spec.

        Frozen format — this key seeds the wafer field stream, so its
        byte recipe can never change without changing every correlated
        draw.  Measurement knobs (currents, frames, overrides) do not
        participate: the same wafer re-measured differently sees the
        same process variation.
        """
        return json.dumps(
            {
                "kind": "wafer_field",
                "wafer_diameter_mm": self.wafer_diameter_mm,
                "edge_exclusion_mm": self.edge_exclusion_mm,
                "die_width_mm": self.die_width_mm,
                "die_height_mm": self.die_height_mm,
                "reticle_rows": self.reticle_rows,
                "reticle_cols": self.reticle_cols,
                "rows": self.rows,
                "cols": self.cols,
                "radial_gradient": self.radial_gradient,
                "reticle_sigma": self.reticle_sigma,
            },
            sort_keys=True,
        )
