"""The wafer workload: Runner wiring for :class:`WaferSpec`.

One random stream, ``"field"`` — the once-per-wafer correlated-field
draw, keyed by the spec's field facet.  The per-die white streams do
*not* come from the wafer Runner's seed tree: each die derives its own
root through :func:`~repro.wafer.evaluate.wafer_die_seed` and draws the
array-scale workload's streams from it, which is precisely what makes a
white-only die bit-identical to a standalone run at that derived seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..experiments.results import ResultSet
from ..experiments.workloads import register_workload
from .evaluate import wafer_records_and_metrics
from .field import sample_field
from .spec import WaferSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.runner import Runner


def _wafer_streams(spec: WaferSpec) -> dict[str, tuple]:
    return {"field": ("wafer", "field", spec.field_key())}


def _execute_wafer(runner: "Runner", spec: WaferSpec, rngs: dict, inputs: dict) -> ResultSet:
    field = inputs.get("field")
    if field is None:
        field = sample_field(spec, rngs["field"])
    records, metrics = wafer_records_and_metrics(spec, runner.seed, field=field)
    return runner._result(
        spec,
        record_name="die",
        records=records,
        metrics=metrics,
        artifacts={"field": field, "layout": spec.layout()},
    )


register_workload("wafer", _wafer_streams, _execute_wafer, backends=("vectorized",))
