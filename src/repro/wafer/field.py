"""The correlated process-variation field, sampled once per wafer.

Process mismatch on real wafers is not i.i.d. per pixel: parameters
drift radially (thermal/spin gradients) and jump per reticle (exposure
dose/focus), with only the residue white.  This module decomposes the
engine's default mismatch variance into exactly those three components:

``sigma_total^2 = radial_gradient * sigma^2  (deterministic radial bowl)
                + reticle_sigma   * sigma^2  (per-exposure offset)
                + white_fraction  * sigma^2  (i.i.d. per pixel)``

applied independently to the comparator offset (sigma =
:data:`~repro.engine.params.DEFAULT_SIGMA_OFFSET_V`) and the relative
capacitance error (:data:`~repro.engine.params.DEFAULT_SIGMA_CINT_REL`).
Leakage is left white: dead pixels are point defects, not gradients.

The radial profile is ``(r / usable_radius)^2`` *standardised to zero
mean and unit variance over every placed die's pixels* — so the radial
component's empirical (population) variance over the wafer equals its
configured share exactly, not just in expectation.  Its overall sign is
a per-wafer coin flip (bowls can run either way run to run).  Reticle
offsets are one standard normal per reticle position.

Draw order from the wafer field stream is frozen (it defines the bytes
of every correlated field ever sampled):

1. radial sign for the comparator offset  (``rng.random()``)
2. radial sign for the capacitance error  (``rng.random()``)
3. reticle offset matrix for the comparator offset (``rng.normal``)
4. reticle offset matrix for the capacitance error (``rng.normal``)

All four draws happen regardless of the configured split, so the field
realisation for a given seed does not shift when fractions change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import RngLike, ensure_rng
from ..engine.params import DEFAULT_SIGMA_CINT_REL, DEFAULT_SIGMA_OFFSET_V
from .geometry import Die, WaferLayout
from .spec import WaferSpec

__all__ = ["WaferField", "sample_field"]


@dataclass(frozen=True)
class WaferField:
    """One wafer's correlated mismatch field, sliceable per die."""

    layout: WaferLayout
    rows: int
    cols: int
    #: sqrt of the white variance fraction; per-die white draws are
    #: scaled by this before the correlated planes are added.
    white_scale: float
    #: signed radial amplitudes (already include sigma * sqrt(fraction))
    radial_amp_offset_v: float
    radial_amp_cint_rel: float
    #: per-reticle offsets, (n_reticle_y, n_reticle_x), already scaled
    reticle_offset_v: np.ndarray
    reticle_cint_rel: np.ndarray
    #: standardisation constants of the raw radial profile (r/R)^2 over
    #: every placed die's pixels
    profile_mean: float
    profile_std: float

    @property
    def white_only(self) -> bool:
        """True when both correlated amplitudes vanish — the evaluation
        path then skips the transform entirely (bit-parity regime)."""
        return (
            self.radial_amp_offset_v == 0.0
            and self.radial_amp_cint_rel == 0.0
            and not self.reticle_offset_v.any()
            and not self.reticle_cint_rel.any()
        )

    def radial_profile(self, die: Die) -> np.ndarray:
        """The standardised radial profile over one die's pixels,
        ``(rows, cols)``, zero mean / unit variance wafer-wide."""
        x, y = self.layout.pixel_positions(die, self.rows, self.cols)
        usable = self.layout.usable_radius_mm
        raw = (x * x + y * y) / (usable * usable)
        return (raw - self.profile_mean) / self.profile_std

    def die_planes(self, die: Die) -> tuple[np.ndarray, np.ndarray]:
        """The correlated additive planes for one die: ``(offset_v,
        cint_rel)`` each ``(rows, cols)`` — radial bowl plus that die's
        reticle offset."""
        profile = self.radial_profile(die)
        offset = (
            self.radial_amp_offset_v * profile
            + self.reticle_offset_v[die.reticle_y, die.reticle_x]
        )
        cint = (
            self.radial_amp_cint_rel * profile
            + self.reticle_cint_rel[die.reticle_y, die.reticle_x]
        )
        return offset, cint


def _profile_moments(layout: WaferLayout, rows: int, cols: int) -> tuple[float, float]:
    """Population mean/std of the raw radial profile ``(r/R)^2`` over
    every placed die's pixels, accumulated die by die (never the whole
    wafer's pixels at once)."""
    usable = layout.usable_radius_mm
    total = 0
    acc = 0.0
    acc_sq = 0.0
    for die in layout.dies:
        x, y = layout.pixel_positions(die, rows, cols)
        raw = (x * x + y * y) / (usable * usable)
        total += raw.size
        acc += float(raw.sum())
        acc_sq += float(np.square(raw).sum())
    mean = acc / total
    var = max(0.0, acc_sq / total - mean * mean)
    std = float(np.sqrt(var))
    return mean, (std if std > 0.0 else 1.0)


def sample_field(spec: WaferSpec, rng: RngLike = None) -> WaferField:
    """Draw one wafer's correlated field from the wafer field stream.

    The stream is ``SeedTree(root).generator("wafer", "field",
    spec.field_key())`` — one draw per wafer, shared by every die, which
    is what makes neighbouring dies correlated rather than independent.
    """
    generator = ensure_rng(rng)
    layout = spec.layout()
    n_ry, n_rx = layout.n_reticle_y, layout.n_reticle_x
    # Frozen draw order — see the module docstring.
    sign_offset = 1.0 if generator.random() < 0.5 else -1.0
    sign_cint = 1.0 if generator.random() < 0.5 else -1.0
    reticle_offset_raw = generator.normal(0.0, 1.0, size=(n_ry, n_rx))
    reticle_cint_raw = generator.normal(0.0, 1.0, size=(n_ry, n_rx))

    mean, std = _profile_moments(layout, spec.rows, spec.cols)
    radial_scale = float(np.sqrt(spec.radial_gradient))
    reticle_scale = float(np.sqrt(spec.reticle_sigma))
    return WaferField(
        layout=layout,
        rows=spec.rows,
        cols=spec.cols,
        white_scale=float(np.sqrt(max(0.0, spec.white_fraction))),
        radial_amp_offset_v=sign_offset * DEFAULT_SIGMA_OFFSET_V * radial_scale,
        radial_amp_cint_rel=sign_cint * DEFAULT_SIGMA_CINT_REL * radial_scale,
        reticle_offset_v=reticle_offset_raw * DEFAULT_SIGMA_OFFSET_V * reticle_scale,
        reticle_cint_rel=reticle_cint_raw * DEFAULT_SIGMA_CINT_REL * reticle_scale,
        profile_mean=mean,
        profile_std=std,
    )
