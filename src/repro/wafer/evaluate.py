"""Tiled wafer evaluation — bounded memory, per-die bit-parity.

A full wafer of 128x128 dies is millions of pixels; materialising every
die's parameter planes at once would cost gigabytes.  This module
streams dies through the engine in tiles of at most
:data:`WAFER_TILE_SITES` sites (~10 full-precision planes per site live
at a time), the same bounded-chunk discipline as the batched campaign
executor — and with the same determinism contract:

* **Per-die streams.**  Every die draws from its own
  ``SeedTree(wafer_die_seed(root, grid_x, grid_y))`` using the
  *array-scale workload's* exact stream paths for that die's spec.  Die
  identity is the grid coordinate, so results never depend on tile
  size, evaluation order, or which other dies the edge exclusion admits.
* **White-only parity.**  With no correlated component configured, the
  per-die draws are left completely untouched (the field transform is
  skipped, not multiplied by 1.0), so each die's records and metrics
  are bit-identical to ``Runner(wafer_die_seed(...)).run(die_spec)`` —
  the invariant ``tests/test_wafer_parity.py`` enforces.
* **Correlated mode.**  Each die's white draws are scaled by
  ``sqrt(white_fraction)`` and the wafer field's radial + reticle
  planes are added before any counting, mirroring how the physical
  parameters would actually be shifted; tiling remains bit-invariant
  because the field is a pure function of (wafer stream, die position).

Draw replay follows ``campaigns.batched._compile_array_scale``: the
counting kernel's per-die ``uniform`` (start phase) then ``normal``
(cycle jitter) draws are taken from each die's own stream and passed to
one stacked kernel call per tile.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator, Optional

import numpy as np

from ..chip.dna_chip import ChipSpecs
from ..core.rng import SeedTree, stable_entropy
from ..devices.bandgap import BandgapReference
from ..devices.current_mirror import ReferenceCurrentFanout
from ..devices.dac import ResistorStringDac
from ..engine import PixelArrayParams, kernels
from ..experiments.specs import ArrayScaleSpec
from ..experiments.workloads import (
    array_scale_records_and_metrics,
    _array_scale_streams,
)
from .field import WaferField, sample_field
from .geometry import Die
from .spec import WaferSpec

__all__ = [
    "WAFER_TILE_SITES",
    "wafer_die_seed",
    "wafer_field_for",
    "iter_die_outputs",
    "wafer_records_and_metrics",
]

#: Sites per evaluation tile.  One tile holds ~10 full-precision planes
#: per site (params + draws + counts), so 2^18 sites ≈ 20 MB resident —
#: the wafer-level analogue of ``ARRAY_SCALE_CHUNK_SITES``.
WAFER_TILE_SITES = 1 << 18


def wafer_die_seed(root: int, grid_x: int, grid_y: int) -> int:
    """The Runner root seed for the die at grid ``(grid_x, grid_y)`` of
    a wafer rooted at ``root``.

    Keyed by grid coordinate — not list position — through the same
    process-stable digest as ``campaigns.replicate_seed``, so widening
    the edge exclusion adds or removes dies without reseeding the rest.
    """
    words = stable_entropy("wafer", "die", int(root), int(grid_x), int(grid_y))
    return int(words[0] | (words[1] << 32))


def wafer_field_for(spec: WaferSpec, seed: int) -> WaferField:
    """The correlated field a Runner rooted at ``seed`` would sample —
    the standalone twin of the Runner's ``"field"`` stream."""
    rng = SeedTree(seed).generator("wafer", "field", spec.field_key())
    return sample_field(spec, rng)


def _apply_field(
    params: PixelArrayParams, field: WaferField, tile: list[Die]
) -> PixelArrayParams:
    """Scale the stacked white draws to their variance share and add the
    correlated planes; capacitances are re-derived from the adjusted
    relative error (leakage stays white — defects are point events)."""
    n = len(tile)
    offset_planes = np.empty((n, field.rows, field.cols))
    cint_planes = np.empty((n, field.rows, field.cols))
    for index, die in enumerate(tile):
        offset_planes[index], cint_planes[index] = field.die_planes(die)
    offset = params.comparator_offset_v * field.white_scale + offset_planes
    cint_rel = params.cint_relative_error * field.white_scale + cint_planes
    return dataclasses.replace(
        params,
        comparator_offset_v=offset,
        cint_relative_error=cint_rel,
        cint_f=params.cint_nominal_f * (1.0 + cint_rel),
    )


def _tiles(dies: list[Die], dies_per_tile: int) -> Iterator[list[Die]]:
    for start in range(0, len(dies), dies_per_tile):
        yield dies[start : start + dies_per_tile]


def _evaluate_group(
    seed: int,
    die_spec: ArrayScaleSpec,
    dies: list[Die],
    field: WaferField,
    tile_sites: int,
    outputs: dict[int, tuple],
) -> None:
    """Evaluate one same-spec die group tile by tile, filling
    ``outputs[die.index]`` with ``(die, die_spec, records, metrics)``."""
    chip_specs = ChipSpecs(rows=die_spec.rows, cols=die_spec.cols)
    spawn_keys = {
        name: stable_entropy(*path)
        for name, path in _array_scale_streams(die_spec).items()
    }
    currents = die_spec.site_currents()
    dies_per_tile = max(1, tile_sites // max(1, chip_specs.sites))
    for tile in _tiles(dies, dies_per_tile):
        params_list: list[PixelArrayParams] = []
        trees_list: list = []
        rng_sets: list[dict] = []
        for die in tile:
            die_seed = wafer_die_seed(seed, die.grid_x, die.grid_y)
            rngs = {
                name: np.random.default_rng(
                    np.random.SeedSequence(entropy=die_seed, spawn_key=key)
                )
                for name, key in spawn_keys.items()
            }
            rng_sets.append(rngs)
            chip_rng = rngs["chip"]
            params_list.append(
                PixelArrayParams.draw(
                    die_spec.rows,
                    die_spec.cols,
                    rng=chip_rng,
                    mode="fast",
                    counter_bits=chip_specs.counter_bits,
                )
            )
            if die_spec.calibrate:
                # The periphery consumes the chip stream after the pixel
                # draws (constructor order); only the reference trees
                # feed calibration, but the DACs keep the position exact.
                bandgap = BandgapReference.sample(chip_rng)
                ResistorStringDac.sample(chip_rng, bits=8, v_low=0.0, v_high=2.0)
                ResistorStringDac.sample(chip_rng, bits=8, v_low=-1.0, v_high=1.0)
                trees_list.append(
                    ReferenceCurrentFanout.build(
                        master_current=bandgap.reference_current(1.2e6),
                        count=8,
                        rng=chip_rng,
                    )
                )
        params = PixelArrayParams.stack(params_list)
        if not field.white_only:
            params = _apply_field(params, field, tile)
        shape = params.shape

        def _stacked_draws(stream: str) -> tuple[np.ndarray, np.ndarray]:
            """Each die's (uniform phase, standard-normal jitter) draws
            in the kernel's own order, stacked along the die axis."""
            phase = np.empty(shape)
            z = np.empty(shape)
            block = (1, die_spec.rows, die_spec.cols)
            for index, rngs in enumerate(rng_sets):
                generator = rngs[stream]
                phase[index : index + 1] = generator.uniform(0.0, 1.0, size=block)
                z[index : index + 1] = generator.normal(0.0, 1.0, size=block)
            return phase, z

        if die_spec.calibrate:
            site_index = np.arange(chip_specs.sites)
            i_ref = np.empty((len(tile), chip_specs.sites))
            for position, tree in enumerate(trees_list):
                branches = tree.branch_currents() / 100.0
                i_ref[position] = branches[site_index % len(branches)]
            i_ref = i_ref.reshape(shape)
            phase, z = _stacked_draws("calibration")
            counts_cal = kernels.count_in_frame(
                i_ref,
                die_spec.calibration_frame_s,
                start_phase=phase,
                jitter_z=z,
                counter_bits=chip_specs.counter_bits,
                **params.kernel_kwargs(),
            )
            # Raises exactly where per-die auto_calibrate would.
            kernels.calibration_corrections(
                counts_cal, i_ref, die_spec.calibration_frame_s, params.dead_time_s
            )
        phase, z = _stacked_draws("measure")
        counts = kernels.count_in_frame(
            np.broadcast_to(currents, shape),
            die_spec.frame_s,
            start_phase=phase,
            jitter_z=z,
            counter_bits=chip_specs.counter_bits,
            **params.kernel_kwargs(),
        )
        dead = (
            kernels.dead_pixel_mask(params.leakage_a)
            .reshape(len(tile), -1)
            .sum(axis=1)
        )
        for index, die in enumerate(tile):
            records, metrics = array_scale_records_and_metrics(
                die_spec,
                "vectorized",
                counts[index : index + 1],
                dead[index : index + 1],
                chip_specs.counter_bits,
                params.cint_nominal_f,
                params.swing_nominal_v,
                currents,
            )
            outputs[die.index] = (die, die_spec, records, metrics)


def iter_die_outputs(
    spec: WaferSpec,
    seed: int,
    *,
    field: Optional[WaferField] = None,
    tile_sites: int = WAFER_TILE_SITES,
) -> Iterator[tuple[Die, ArrayScaleSpec, dict, dict]]:
    """Evaluate every placed die, yielding ``(die, die_spec, records,
    metrics)`` in die order — records/metrics are exactly what the
    array-scale workload produces for that die, which is what the
    parity tests compare field by field.

    Dies sharing a spec (the common case; overrides split them) are
    tiled together; resident memory is bounded by ``tile_sites``.
    """
    if tile_sites < 1:
        raise ValueError("tile_sites must be positive")
    if field is None:
        field = wafer_field_for(spec, seed)
    layout = spec.layout()
    groups: dict[str, tuple[ArrayScaleSpec, list[Die]]] = {}
    for die in layout.dies:
        die_spec = spec.die_spec(die)
        key = die_spec.content_hash()
        groups.setdefault(key, (die_spec, []))[1].append(die)
    outputs: dict[int, tuple] = {}
    for die_spec, dies in groups.values():
        _evaluate_group(seed, die_spec, dies, field, tile_sites, outputs)
    for die in layout.dies:
        yield outputs[die.index]


def wafer_records_and_metrics(
    spec: WaferSpec,
    seed: int,
    *,
    field: Optional[WaferField] = None,
    tile_sites: int = WAFER_TILE_SITES,
) -> tuple[dict, dict]:
    """Fold a full tiled wafer evaluation into per-die records plus
    wafer-level metrics — the workload's result payload.

    Only per-die scalars survive each tile, so peak memory is set by
    ``tile_sites``, not the wafer size.  ``tile_sites`` never appears in
    the output: results are bit-identical for any tiling.
    """
    layout = spec.layout()
    columns: dict[str, list] = {
        name: []
        for name in (
            "die",
            "grid_x",
            "grid_y",
            "reticle_x",
            "reticle_y",
            "center_x_mm",
            "center_y_mm",
            "mean_count",
            "median_count",
            "min_count",
            "max_count",
            "zero_sites",
            "saturated_sites",
            "dead_pixels",
            "zero_fraction",
            "dead_fraction",
        )
    }
    total_counts = 0
    for die, die_spec, records, _metrics in iter_die_outputs(
        spec, seed, field=field, tile_sites=tile_sites
    ):
        sites = die_spec.rows * die_spec.cols
        columns["die"].append(die.index)
        columns["grid_x"].append(die.grid_x)
        columns["grid_y"].append(die.grid_y)
        columns["reticle_x"].append(die.reticle_x)
        columns["reticle_y"].append(die.reticle_y)
        columns["center_x_mm"].append(die.center_x_mm)
        columns["center_y_mm"].append(die.center_y_mm)
        for name in (
            "mean_count",
            "median_count",
            "min_count",
            "max_count",
            "zero_sites",
            "saturated_sites",
            "dead_pixels",
        ):
            columns[name].append(records[name][0])
        columns["zero_fraction"].append(records["zero_sites"][0] / sites)
        columns["dead_fraction"].append(records["dead_pixels"][0] / sites)
        total_counts += int(_metrics["total_counts"])
    records_out: dict[str, np.ndarray] = {}
    for name, values in columns.items():
        if name in ("center_x_mm", "center_y_mm", "mean_count", "median_count",
                    "zero_fraction", "dead_fraction"):
            records_out[name] = np.asarray(values, dtype=float)
        else:
            records_out[name] = np.asarray(values, dtype=int)
    sites_total = spec.sites_per_die * layout.n_dies
    metrics: dict[str, Any] = {
        "backend": "vectorized",
        "rows": spec.rows,
        "cols": spec.cols,
        "n_dies": layout.n_dies,
        "n_reticles": layout.n_reticles,
        "n_grid_x": layout.n_grid_x,
        "n_grid_y": layout.n_grid_y,
        "sites_per_die": spec.sites_per_die,
        "sites_total": int(sites_total),
        "wafer_diameter_mm": spec.wafer_diameter_mm,
        "usable_radius_mm": layout.usable_radius_mm,
        "radial_gradient": spec.radial_gradient,
        "reticle_sigma": spec.reticle_sigma,
        "white_fraction": spec.white_fraction,
        "total_counts": int(total_counts),
        "mean_count": float(total_counts / sites_total),
        "zero_site_fraction": float(
            int(records_out["zero_sites"].sum()) / sites_total
        ),
        "dead_pixel_fraction": float(
            int(records_out["dead_pixels"].sum()) / sites_total
        ),
    }
    return records_out, metrics
