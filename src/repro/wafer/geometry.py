"""Wafer geometry: die placement on a circular wafer with edge exclusion.

A wafer is a circle of ``wafer_diameter_mm`` holding a rectangular grid
of dies (each ``die_width_mm`` x ``die_height_mm``), printed reticle by
reticle — a reticle stamps a ``reticle_rows`` x ``reticle_cols`` block
of dies in one exposure, so process errors that are systematic per
exposure (focus, dose) are shared by every die in a reticle.

Placement rule: the grid is centred on the wafer, and a die is included
iff **all four of its corners** lie inside the usable radius
``wafer_radius - edge_exclusion`` — the standard "full die only" rule.
Die identity is the grid coordinate ``(grid_x, grid_y)``, *not* the
position in the included list: derived seeds key off grid coordinates,
so shrinking the edge exclusion adds dies without renumbering (or
reseeding) existing ones.

Coordinates are millimetres with the origin at the wafer centre,
``x`` rightward and ``y`` upward; grid indices run in image order
(``grid_x`` 0 at the left, ``grid_y`` 0 at the *top* row), matching how
wafer maps are rendered.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Die", "WaferLayout", "build_layout"]


@dataclass(frozen=True)
class Die:
    """One placed die: grid identity, reticle membership, position."""

    index: int  # position in WaferLayout.dies (row-major over the grid)
    grid_x: int
    grid_y: int
    reticle_x: int
    reticle_y: int
    center_x_mm: float
    center_y_mm: float

    @property
    def radius_mm(self) -> float:
        return math.hypot(self.center_x_mm, self.center_y_mm)


@dataclass(frozen=True)
class WaferLayout:
    """The resolved die placement for one wafer geometry."""

    wafer_diameter_mm: float
    edge_exclusion_mm: float
    die_width_mm: float
    die_height_mm: float
    reticle_rows: int
    reticle_cols: int
    n_grid_x: int  # full grid extent (including excluded positions)
    n_grid_y: int
    dies: tuple[Die, ...]  # included dies only, row-major (grid_y, grid_x)

    @property
    def usable_radius_mm(self) -> float:
        return self.wafer_diameter_mm / 2.0 - self.edge_exclusion_mm

    @property
    def n_dies(self) -> int:
        return len(self.dies)

    @property
    def n_reticle_x(self) -> int:
        return -(-self.n_grid_x // self.reticle_cols)

    @property
    def n_reticle_y(self) -> int:
        return -(-self.n_grid_y // self.reticle_rows)

    @property
    def n_reticles(self) -> int:
        """Number of distinct reticle exposures that own at least one die."""
        return len({(d.reticle_x, d.reticle_y) for d in self.dies})

    def die_at(self, grid_x: int, grid_y: int) -> Die:
        for die in self.dies:
            if die.grid_x == grid_x and die.grid_y == grid_y:
                return die
        raise KeyError(f"no die at grid ({grid_x}, {grid_y})")

    def pixel_positions(self, die: Die, rows: int, cols: int) -> tuple[np.ndarray, np.ndarray]:
        """Pixel-centre coordinates (mm, wafer frame) for a ``rows x cols``
        array filling the die; returns ``(x, y)`` each of shape
        ``(rows, cols)``.  Row 0 is the top of the die (largest ``y``),
        matching image-order array indexing."""
        pitch_x = self.die_width_mm / cols
        pitch_y = self.die_height_mm / rows
        x0 = die.center_x_mm - self.die_width_mm / 2.0 + pitch_x / 2.0
        y0 = die.center_y_mm + self.die_height_mm / 2.0 - pitch_y / 2.0
        x = x0 + pitch_x * np.arange(cols, dtype=float)
        y = y0 - pitch_y * np.arange(rows, dtype=float)
        return np.broadcast_to(x[None, :], (rows, cols)), np.broadcast_to(
            y[:, None], (rows, cols)
        )


def build_layout(
    wafer_diameter_mm: float,
    edge_exclusion_mm: float,
    die_width_mm: float,
    die_height_mm: float,
    reticle_rows: int,
    reticle_cols: int,
) -> WaferLayout:
    """Place dies on the wafer and return the resolved layout.

    The grid spans every column/row whose dies could possibly intersect
    the wafer; inclusion then applies the four-corner rule against the
    usable radius.  Raises if the geometry admits no die at all.
    """
    if wafer_diameter_mm <= 0:
        raise ValueError("wafer diameter must be positive")
    if edge_exclusion_mm < 0:
        raise ValueError("edge exclusion must be non-negative")
    if die_width_mm <= 0 or die_height_mm <= 0:
        raise ValueError("die dimensions must be positive")
    if reticle_rows < 1 or reticle_cols < 1:
        raise ValueError("reticle grid must be at least 1x1")
    usable = wafer_diameter_mm / 2.0 - edge_exclusion_mm
    if usable <= 0:
        raise ValueError("edge exclusion leaves no usable wafer area")
    n_grid_x = max(1, int(math.floor(2.0 * usable / die_width_mm)))
    n_grid_y = max(1, int(math.floor(2.0 * usable / die_height_mm)))
    half_span_x = n_grid_x * die_width_mm / 2.0
    half_span_y = n_grid_y * die_height_mm / 2.0
    dies: list[Die] = []
    index = 0
    for gy in range(n_grid_y):
        cy = half_span_y - (gy + 0.5) * die_height_mm  # grid_y 0 = top row
        for gx in range(n_grid_x):
            cx = -half_span_x + (gx + 0.5) * die_width_mm
            corner = math.hypot(
                abs(cx) + die_width_mm / 2.0, abs(cy) + die_height_mm / 2.0
            )
            if corner > usable:
                continue
            dies.append(
                Die(
                    index=index,
                    grid_x=gx,
                    grid_y=gy,
                    reticle_x=gx // reticle_cols,
                    reticle_y=gy // reticle_rows,
                    center_x_mm=cx,
                    center_y_mm=cy,
                )
            )
            index += 1
    if not dies:
        raise ValueError(
            "no die fits inside the usable radius "
            f"({usable:.1f} mm) with a {die_width_mm}x{die_height_mm} mm die"
        )
    return WaferLayout(
        wafer_diameter_mm=float(wafer_diameter_mm),
        edge_exclusion_mm=float(edge_exclusion_mm),
        die_width_mm=float(die_width_mm),
        die_height_mm=float(die_height_mm),
        reticle_rows=int(reticle_rows),
        reticle_cols=int(reticle_cols),
        n_grid_x=n_grid_x,
        n_grid_y=n_grid_y,
        dies=tuple(dies),
    )
