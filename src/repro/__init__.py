"""repro — behavioural reproduction of "CMOS-Based Biosensor Arrays"
(R. Thewes et al., DATE 2005).

The library models both platforms the paper presents:

* **DNA microarray chips** (Section 2): electrochemical redox-cycling
  sensors whose 1 pA - 100 nA currents are digitised in-pixel by a
  current-to-frequency sawtooth ADC (Fig. 3), integrated as a 16x8-site
  chip with bandgap/DAC periphery and a 6-pin serial interface (Fig. 4).
* **Neural-recording arrays** (Section 3): 128x128 pixels at 7.8 um
  pitch sampling cleft voltages of 100 uV - 5 mV at 2 kframe/s, with
  per-pixel current calibration and a x5600 readout chain (Figs. 5-6).
* **Drug-screening funnel** (Fig. 1): the staged-economics simulation
  motivating highly parallel CMOS biosensing.

Quick start — declare an experiment, hand it to the Runner::

    from repro.experiments import DnaAssaySpec, Runner

    runner = Runner(seed=1)
    result = runner.run(DnaAssaySpec(target_subset=(0, 1), concentration=1e-6))
    print(result.metrics["discrimination_ratio"])

The imperative layer underneath (chips, assays, cultures, funnels)
remains fully public for custom flows.  See ``examples/`` for full
scenarios and ``benchmarks/`` for the figure-by-figure reproduction
harness.
"""

__version__ = "1.10.0"

from . import (
    analysis,
    campaigns,
    chip,
    core,
    devices,
    dna,
    electrochem,
    engine,
    experiments,
    inference,
    neuro,
    pixel,
    screening,
    service,
    trace,
    wafer,
)
from .campaigns import CampaignResult, CampaignSpec, run_campaign
from .engine import VectorizedDnaChip
from .chip import (
    ChipSpecs,
    DnaMicroarrayChip,
    NEURO_SCAN,
    NeuralRecordingChip,
    RecordingResult,
    ScanTiming,
)
from .core import Trace, units
from .dna import (
    AssayProtocol,
    AssayResult,
    DnaSequence,
    HybridizationKinetics,
    MicroarrayAssay,
    Probe,
    ProbeLayout,
    Sample,
    Target,
    perfect_target_for,
)
from .electrochem import InterdigitatedElectrode, RedoxCyclingSensor
from .experiments import (
    AdcTransferSpec,
    ArrayScaleSpec,
    DnaAssaySpec,
    ExperimentSpec,
    NeuralRecordingSpec,
    ResultSet,
    Runner,
    ScreeningSpec,
)
from .inference import AnalysisReport, analyze
from .service import JobManager, ResultCache, ServiceClient
from .neuro import (
    CellChipJunction,
    Culture,
    HodgkinHuxleyNeuron,
    NeuralArrayModel,
    NeuralSensorPixel,
    StimulusProtocol,
    detect_spikes,
    score_detection,
)
from .pixel import DnaSensorPixel, SawtoothAdc
from .screening import CompoundLibrary, ScreeningFunnel, compare_cmos_vs_conventional
from .wafer import WaferSpec

__all__ = [
    "AdcTransferSpec",
    "AnalysisReport",
    "ArrayScaleSpec",
    "AssayProtocol",
    "AssayResult",
    "CampaignResult",
    "CampaignSpec",
    "CellChipJunction",
    "ChipSpecs",
    "CompoundLibrary",
    "Culture",
    "DnaAssaySpec",
    "DnaMicroarrayChip",
    "DnaSensorPixel",
    "DnaSequence",
    "ExperimentSpec",
    "HodgkinHuxleyNeuron",
    "HybridizationKinetics",
    "InterdigitatedElectrode",
    "JobManager",
    "MicroarrayAssay",
    "NEURO_SCAN",
    "NeuralArrayModel",
    "NeuralRecordingChip",
    "NeuralRecordingSpec",
    "NeuralSensorPixel",
    "Probe",
    "ProbeLayout",
    "RecordingResult",
    "RedoxCyclingSensor",
    "ResultCache",
    "ResultSet",
    "Runner",
    "Sample",
    "ServiceClient",
    "SawtoothAdc",
    "ScanTiming",
    "ScreeningFunnel",
    "ScreeningSpec",
    "StimulusProtocol",
    "Target",
    "Trace",
    "VectorizedDnaChip",
    "WaferSpec",
    "analysis",
    "analyze",
    "campaigns",
    "chip",
    "compare_cmos_vs_conventional",
    "core",
    "detect_spikes",
    "devices",
    "dna",
    "electrochem",
    "engine",
    "experiments",
    "inference",
    "neuro",
    "perfect_target_for",
    "pixel",
    "run_campaign",
    "score_detection",
    "screening",
    "service",
    "trace",
    "units",
    "wafer",
]
