"""Shared infrastructure: units, traces, noise, mismatch, sweeps, tables."""

from .fitting import (
    LinearFit,
    linear_fit,
    loglog_slope,
    proportionality_error,
    snr_db,
    usable_dynamic_range,
)
from .mismatch import MismatchSample, MismatchSampler, spread_report
from .montecarlo import MonteCarloResult, run_monte_carlo
from .noise import (
    NoiseBudget,
    flicker_noise_trace,
    integrate_white_noise,
    kt_over_c_noise,
    shot_noise_density,
    shot_noise_trace,
    single_pole_enbw,
    thermal_current_noise_density,
    thermal_voltage_noise_density,
    white_noise_trace,
)
from .process import C5_PROCESS, NEURO_PROCESS, ProcessSpec, default_process
from .rng import ensure_rng, spawn_child, spawn_children
from .signals import Trace, concatenate, time_axis
from .sweep import SweepResult, lin_space, log_space, run_sweep
from .tables import render_kv, render_table
from . import units

__all__ = [
    "C5_PROCESS",
    "LinearFit",
    "MismatchSample",
    "MismatchSampler",
    "MonteCarloResult",
    "NEURO_PROCESS",
    "NoiseBudget",
    "ProcessSpec",
    "SweepResult",
    "Trace",
    "concatenate",
    "default_process",
    "ensure_rng",
    "flicker_noise_trace",
    "integrate_white_noise",
    "kt_over_c_noise",
    "lin_space",
    "linear_fit",
    "log_space",
    "loglog_slope",
    "proportionality_error",
    "render_kv",
    "render_table",
    "run_monte_carlo",
    "run_sweep",
    "shot_noise_density",
    "shot_noise_trace",
    "single_pole_enbw",
    "snr_db",
    "spawn_child",
    "spawn_children",
    "spread_report",
    "thermal_current_noise_density",
    "thermal_voltage_noise_density",
    "time_axis",
    "units",
    "usable_dynamic_range",
    "white_noise_trace",
]
