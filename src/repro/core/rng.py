"""Deterministic random-number management.

Every stochastic model in the library accepts either a seed (int), a
``numpy.random.Generator`` or ``None`` (fresh entropy).  Routing all
conversions through :func:`ensure_rng` keeps Monte-Carlo experiments
reproducible and lets tests pin seeds without monkeypatching globals.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    ``None`` creates a generator from OS entropy, an ``int`` seeds a new
    PCG64 generator, and an existing generator is passed through
    unchanged (so state is shared with the caller).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn_child(rng: RngLike, index: int) -> np.random.Generator:
    """Derive an independent child generator for sub-component ``index``.

    Used by array models so that pixel *k* gets its own stream: drawing
    extra samples for one pixel does not perturb its neighbours, which
    keeps Monte-Carlo comparisons (e.g. calibration on/off) paired.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    parent = ensure_rng(rng)
    seed = int(parent.integers(0, 2**63 - 1)) ^ (0x9E3779B97F4A7C15 * (index + 1) % 2**63)
    return np.random.default_rng(seed)


def spawn_children(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def stable_entropy(*parts: object) -> tuple[int, ...]:
    """Hash arbitrary path components into four uint32 words.

    The mapping is stable across processes and Python versions (it feeds
    ``repr`` through SHA-256 rather than ``hash()``, which is salted), so
    it can key :class:`numpy.random.SeedSequence` spawn trees whose layout
    must be reproducible run-to-run.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    raw = digest.digest()
    return tuple(int.from_bytes(raw[i : i + 4], "little") for i in range(0, 16, 4))


class SeedTree:
    """A deterministic tree of named random streams.

    One root seed fans out into independent :class:`numpy.random.Generator`
    streams addressed by a path of strings/ints, e.g.
    ``tree.generator("chip", key)``.  Streams depend only on
    ``(root, path)`` — never on the order or number of previous requests —
    so callers can draw sub-streams lazily, in parallel, or repeatedly and
    always get the same bits.  This replaces hand-numbered seeds
    (``rng=1`` for the chip, ``rng=2`` for calibration, ...) with a single
    root plus self-describing stream names.
    """

    def __init__(self, root: int = 0) -> None:
        self.root = int(root)

    def __repr__(self) -> str:
        return f"SeedTree(root={self.root})"

    def sequence(self, *path: object) -> np.random.SeedSequence:
        """SeedSequence for the stream addressed by ``path``."""
        if not path:
            raise ValueError("a stream path needs at least one component")
        return np.random.SeedSequence(entropy=self.root, spawn_key=stable_entropy(*path))

    def generator(self, *path: object) -> np.random.Generator:
        """Fresh Generator for the stream addressed by ``path``."""
        return np.random.default_rng(self.sequence(*path))
