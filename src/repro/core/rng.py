"""Deterministic random-number management.

Every stochastic model in the library accepts either a seed (int), a
``numpy.random.Generator`` or ``None`` (fresh entropy).  Routing all
conversions through :func:`ensure_rng` keeps Monte-Carlo experiments
reproducible and lets tests pin seeds without monkeypatching globals.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    ``None`` creates a generator from OS entropy, an ``int`` seeds a new
    PCG64 generator, and an existing generator is passed through
    unchanged (so state is shared with the caller).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn_child(rng: RngLike, index: int) -> np.random.Generator:
    """Derive an independent child generator for sub-component ``index``.

    Used by array models so that pixel *k* gets its own stream: drawing
    extra samples for one pixel does not perturb its neighbours, which
    keeps Monte-Carlo comparisons (e.g. calibration on/off) paired.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    parent = ensure_rng(rng)
    seed = int(parent.integers(0, 2**63 - 1)) ^ (0x9E3779B97F4A7C15 * (index + 1) % 2**63)
    return np.random.default_rng(seed)


def spawn_children(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]
