"""Noise synthesis for behavioural circuit models.

The paper's circuits fight three noise mechanisms that set the floor of
the 1 pA sensor-current measurement and the 100 uV neural signals:

* thermal (white) noise of channels and resistances,
* flicker (1/f) noise of the MOS sensor transistors,
* shot noise of the (pA-level) electrochemical sensor currents.

Each generator returns either a scalar RMS value (for budget-style
calculations) or a sampled waveform aligned with a :class:`~repro.core.signals.Trace`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .rng import RngLike, ensure_rng
from .signals import Trace
from .units import BOLTZMANN, ELEMENTARY_CHARGE, ROOM_TEMPERATURE


def thermal_current_noise_density(conductance_s: float, temperature_k: float = ROOM_TEMPERATURE) -> float:
    """One-sided current noise PSD 4kTg in A^2/Hz."""
    if conductance_s < 0:
        raise ValueError(f"conductance must be non-negative, got {conductance_s}")
    return 4.0 * BOLTZMANN * temperature_k * conductance_s

def thermal_voltage_noise_density(resistance_ohm: float, temperature_k: float = ROOM_TEMPERATURE) -> float:
    """One-sided voltage noise PSD 4kTR in V^2/Hz."""
    if resistance_ohm < 0:
        raise ValueError(f"resistance must be non-negative, got {resistance_ohm}")
    return 4.0 * BOLTZMANN * temperature_k * resistance_ohm


def shot_noise_density(current_a: float) -> float:
    """One-sided shot-noise PSD 2qI in A^2/Hz (uses |I|)."""
    return 2.0 * ELEMENTARY_CHARGE * abs(current_a)


def kt_over_c_noise(capacitance_f: float, temperature_k: float = ROOM_TEMPERATURE) -> float:
    """RMS voltage of kT/C sampling noise, relevant to the stored
    calibration voltage on the pixel gate capacitance."""
    if capacitance_f <= 0:
        raise ValueError(f"capacitance must be positive, got {capacitance_f}")
    return math.sqrt(BOLTZMANN * temperature_k / capacitance_f)


def integrate_white_noise(density: float, bandwidth_hz: float) -> float:
    """RMS value of a white process of one-sided PSD ``density`` observed
    through an ideal brick-wall bandwidth."""
    if density < 0 or bandwidth_hz < 0:
        raise ValueError("density and bandwidth must be non-negative")
    return math.sqrt(density * bandwidth_hz)


def single_pole_enbw(f3db_hz: float) -> float:
    """Equivalent noise bandwidth of a single-pole low-pass: (pi/2) f3dB."""
    if f3db_hz <= 0:
        raise ValueError(f"f3db must be positive, got {f3db_hz}")
    return 0.5 * math.pi * f3db_hz


def white_noise_trace(
    density: float,
    duration: float,
    dt: float,
    rng: RngLike = None,
    label: str = "white noise",
) -> Trace:
    """Sample a white process of one-sided PSD ``density`` (units^2/Hz).

    The per-sample variance of a white process sampled at fs is
    density * fs / 2 (the full Nyquist band).
    """
    if density < 0:
        raise ValueError(f"density must be non-negative, got {density}")
    generator = ensure_rng(rng)
    count = int(round(duration / dt))
    sigma = math.sqrt(density / (2.0 * dt))
    return Trace(generator.normal(0.0, sigma, size=count) if sigma > 0 else np.zeros(count),
                 dt=dt, label=label)


def flicker_noise_trace(
    corner_density: float,
    corner_hz: float,
    duration: float,
    dt: float,
    rng: RngLike = None,
    label: str = "1/f noise",
) -> Trace:
    """Sample 1/f noise with PSD ``corner_density * corner_hz / f``.

    ``corner_density`` is the white-equivalent PSD at ``corner_hz`` (so at
    the flicker corner the 1/f PSD equals the thermal PSD, the standard
    way flicker is specified for MOS front ends).  Synthesised by shaping
    white Gaussian noise in the frequency domain.
    """
    if corner_density < 0 or corner_hz <= 0:
        raise ValueError("corner_density must be >= 0 and corner_hz > 0")
    generator = ensure_rng(rng)
    count = int(round(duration / dt))
    if count < 2:
        return Trace(np.zeros(max(count, 1)), dt=dt, label=label)
    white = generator.normal(0.0, 1.0, size=count)
    spectrum = np.fft.rfft(white)
    freqs = np.fft.rfftfreq(count, d=dt)
    shaping = np.zeros_like(freqs)
    nonzero = freqs > 0
    shaping[nonzero] = np.sqrt(corner_density * corner_hz / freqs[nonzero])
    shaped = np.fft.irfft(spectrum * shaping, n=count)
    # Normalise: the shaping already carries PSD units; convert the unit
    # white input (variance 1 distributed over fs/2) to density 2*dt.
    shaped /= math.sqrt(2.0 * dt)
    return Trace(shaped, dt=dt, label=label)


def shot_noise_trace(
    current_a: float,
    duration: float,
    dt: float,
    rng: RngLike = None,
    label: str = "shot noise",
) -> Trace:
    """Sampled shot noise around a DC current (zero-mean fluctuation part)."""
    return white_noise_trace(shot_noise_density(current_a), duration, dt, rng=rng, label=label)


@dataclass
class NoiseBudget:
    """Accumulates independent RMS contributions in quadrature.

    Used by benchmark reports to tabulate, e.g., the input-referred noise
    of the Fig. 6 signal path stage by stage.
    """

    contributions: dict[str, float] | None = None

    def __post_init__(self) -> None:
        if self.contributions is None:
            self.contributions = {}

    def add(self, name: str, rms: float) -> None:
        if rms < 0:
            raise ValueError(f"rms must be non-negative, got {rms}")
        if name in self.contributions:
            raise KeyError(f"duplicate noise contribution {name!r}")
        self.contributions[name] = rms

    def total_rms(self) -> float:
        return math.sqrt(sum(value**2 for value in self.contributions.values()))

    def dominant(self) -> str:
        if not self.contributions:
            raise ValueError("empty noise budget")
        return max(self.contributions, key=lambda name: self.contributions[name])

    def as_rows(self) -> list[tuple[str, float]]:
        """Rows sorted by decreasing contribution, for table rendering."""
        return sorted(self.contributions.items(), key=lambda item: -item[1])
