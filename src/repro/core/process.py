"""CMOS process description.

The paper's DNA chip is fabricated in a 0.5 um / 5 V process with a 15 nm
gate oxide (Fig. 4 caption); the neurochip uses a comparable node.  All
behavioural device models draw their nominal parameters and matching
coefficients from a :class:`ProcessSpec`, so experiments can swap process
corners or scale the technology.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .units import um, nm

# Vacuum permittivity times relative permittivity of SiO2.
EPSILON_OX = 8.8541878128e-12 * 3.9  # F/m


@dataclass(frozen=True)
class ProcessSpec:
    """Nominal parameters of a CMOS technology used by the device models.

    Matching parameters follow the Pelgrom model: the standard deviation
    of a parameter difference between two identically drawn devices of
    area W*L is ``A / sqrt(W * L)`` with W, L in meters and A in the units
    quoted below.
    """

    name: str
    l_min: float  # minimum channel length, m
    t_ox: float  # gate oxide thickness, m
    vdd: float  # nominal supply, V
    vth_n: float  # NMOS nominal threshold, V
    vth_p: float  # PMOS nominal threshold (positive magnitude), V
    mu_n_cox: float  # NMOS process transconductance, A/V^2
    mu_p_cox: float  # PMOS process transconductance, A/V^2
    a_vth: float  # Pelgrom area coefficient for Vth, V*m
    a_beta: float  # Pelgrom area coefficient for relative beta, fraction*m
    lambda_chl: float  # channel-length modulation at l_min, 1/V
    subthreshold_slope_n: float  # n-factor (ideality) of weak inversion
    junction_leak_density: float  # A/m^2 of junction leakage at 300 K
    flicker_kf: float  # flicker coefficient, V^2*F (Kf/(Cox^2 W L f) form)

    @property
    def c_ox(self) -> float:
        """Gate capacitance per unit area, F/m^2."""
        return EPSILON_OX / self.t_ox

    def sigma_vth(self, width: float, length: float) -> float:
        """Pelgrom sigma of Vth mismatch for a device of W x L (meters)."""
        if width <= 0 or length <= 0:
            raise ValueError("device dimensions must be positive")
        return self.a_vth / (width * length) ** 0.5

    def sigma_beta(self, width: float, length: float) -> float:
        """Pelgrom sigma of relative beta (current-factor) mismatch."""
        if width <= 0 or length <= 0:
            raise ValueError("device dimensions must be positive")
        return self.a_beta / (width * length) ** 0.5

    def gate_capacitance(self, width: float, length: float) -> float:
        """Total gate-oxide capacitance of a W x L device, in farads."""
        if width <= 0 or length <= 0:
            raise ValueError("device dimensions must be positive")
        return self.c_ox * width * length

    def scaled(self, factor: float, name: str | None = None) -> "ProcessSpec":
        """Crude constant-field scaling helper for exploration benches."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            l_min=self.l_min * factor,
            t_ox=self.t_ox * factor,
            vdd=self.vdd * factor,
        )


# The paper's DNA-chip process: Lmin = 0.5 um, tox = 15 nm, VDD = 5 V
# (Fig. 4 caption).  Matching coefficients are typical published values
# for that generation (A_vth ~ 10 mV*um at 15 nm tox).
C5_PROCESS = ProcessSpec(
    name="C5-0.5um-5V",
    l_min=0.5 * um,
    t_ox=15 * nm,
    vdd=5.0,
    vth_n=0.75,
    vth_p=0.85,
    mu_n_cox=110e-6,
    mu_p_cox=38e-6,
    a_vth=10.0e-3 * um,  # 10 mV*um
    a_beta=0.02 * um,  # 2 %*um
    lambda_chl=0.06,
    subthreshold_slope_n=1.45,
    junction_leak_density=1.0e-7,  # 0.1 fA/um^2 — sets the pixel leakage floor
    flicker_kf=5.0e-27,  # puts the 1/f corner of a 2 um^2 device in the MHz range
)

# The neurochip of [19] is also a 0.5 um-class process but with thinner
# sensing dielectric; the electrical backbone is the same node.
NEURO_PROCESS = C5_PROCESS


def default_process() -> ProcessSpec:
    """The process every model uses unless told otherwise."""
    return C5_PROCESS
