"""Monte-Carlo experiment runner.

Mismatch-driven claims (pixel calibration, comparator offsets, DAC INL)
are statistical; this runner executes a trial function over seeded
repetitions and aggregates named scalar outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from .rng import RngLike, ensure_rng, spawn_children


@dataclass
class MonteCarloResult:
    """Per-output sample arrays plus summary statistics."""

    trials: int
    samples: dict[str, np.ndarray]

    def mean(self, name: str) -> float:
        return float(np.mean(self._get(name)))

    def std(self, name: str) -> float:
        return float(np.std(self._get(name)))

    def percentile(self, name: str, q: float) -> float:
        return float(np.percentile(self._get(name), q))

    def worst(self, name: str) -> float:
        return float(np.max(np.abs(self._get(name))))

    def _get(self, name: str) -> np.ndarray:
        if name not in self.samples:
            raise KeyError(f"no output {name!r}; have {sorted(self.samples)}")
        return self.samples[name]

    def summary(self) -> dict[str, dict[str, float]]:
        return {
            name: {
                "mean": float(np.mean(values)),
                "std": float(np.std(values)),
                "min": float(np.min(values)),
                "max": float(np.max(values)),
            }
            for name, values in self.samples.items()
        }


def run_monte_carlo(
    trial: Callable[[np.random.Generator], Mapping[str, float]],
    trials: int,
    rng: RngLike = None,
) -> MonteCarloResult:
    """Run ``trial`` ``trials`` times with independent child generators.

    Each trial returns a dict of scalar outputs; outputs must keep the
    same keys across trials.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    children = spawn_children(ensure_rng(rng), trials)
    collected: dict[str, list[float]] = {}
    for child in children:
        outputs = trial(child)
        if not outputs:
            raise ValueError("trial returned no outputs")
        if not collected:
            collected = {name: [] for name in outputs}
        if set(outputs) != set(collected):
            raise ValueError("trial changed its output keys between repetitions")
        for name, value in outputs.items():
            collected[name].append(float(value))
    return MonteCarloResult(
        trials=trials,
        samples={name: np.asarray(values) for name, values in collected.items()},
    )
