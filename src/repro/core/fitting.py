"""Curve-fitting and linearity metrics for transfer characteristics.

The central quantitative claim of the DNA chip (Fig. 3) is that the
reset-pulse frequency is "approximately proportional to the sensor
current" over 1 pA ... 100 nA.  These helpers quantify "approximately":
log-log slope, gain error, worst-case relative deviation, and the usable
dynamic range given an error bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """Least-squares y = gain * x + offset with quality metrics."""

    gain: float
    offset: float
    r_squared: float
    max_abs_residual: float


def linear_fit(x: np.ndarray, y: np.ndarray) -> LinearFit:
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if len(x) < 2:
        raise ValueError("need at least two points")
    coeffs = np.polyfit(x, y, 1)
    predicted = np.polyval(coeffs, x)
    residuals = y - predicted
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(
        gain=float(coeffs[0]),
        offset=float(coeffs[1]),
        r_squared=r_squared,
        max_abs_residual=float(np.max(np.abs(residuals))),
    )


def loglog_slope(x: np.ndarray, y: np.ndarray) -> float:
    """Slope of log10(y) vs log10(x); 1.0 means y is proportional to x."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("loglog_slope requires strictly positive data")
    return linear_fit(np.log10(x), np.log10(y)).gain


def proportionality_error(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Relative deviation of y from the best single-coefficient fit y=k*x.

    Returns per-point (y - k*x)/(k*x) where k is the *median ratio*
    y/x — a robust relative fit.  A least-squares k would be dominated
    by the largest points, so dead-time compression of the top decade
    would masquerade as error across the whole range; the median-ratio
    fit keeps the error localised where the physics puts it.  This is
    the "gain-normalised" error used for the Fig. 3 transfer plot.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if np.any(x == 0):
        raise ValueError("x must not contain zeros")
    k = float(np.median(y / x))
    if k == 0:
        raise ValueError("degenerate proportionality fit (k = 0)")
    return (y - k * x) / (k * x)


def usable_dynamic_range(
    x: np.ndarray,
    y: np.ndarray,
    max_rel_error: float = 0.05,
) -> tuple[float, float, float]:
    """Largest contiguous x-range where |proportionality error| stays
    within ``max_rel_error``.

    Returns (x_low, x_high, decades).  Used to report the chip's usable
    current range against the paper's 1 pA-100 nA claim.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    order = np.argsort(x)
    x = x[order]
    y = y[order]
    errors = np.abs(proportionality_error(x, y))
    good = errors <= max_rel_error
    if not np.any(good):
        return (float("nan"), float("nan"), 0.0)
    best_lo = best_hi = None
    run_start = None
    best_len = 0.0
    for i, flag in enumerate(good):
        if flag and run_start is None:
            run_start = i
        if (not flag or i == len(good) - 1) and run_start is not None:
            end = i if flag else i - 1
            if x[run_start] > 0 and x[end] > 0:
                length = np.log10(x[end] / x[run_start])
                if length >= best_len:
                    best_len = length
                    best_lo, best_hi = x[run_start], x[end]
            run_start = None
    if best_lo is None:
        return (float("nan"), float("nan"), 0.0)
    return (float(best_lo), float(best_hi), float(best_len))


def snr_db(signal_rms: float, noise_rms: float) -> float:
    """Signal-to-noise ratio in dB from RMS amplitudes."""
    if signal_rms < 0 or noise_rms <= 0:
        raise ValueError("signal_rms must be >= 0 and noise_rms > 0")
    if signal_rms == 0:
        return float("-inf")
    return 20.0 * float(np.log10(signal_rms / noise_rms))
