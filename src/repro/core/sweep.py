"""Parameter-sweep helpers for benchmark harnesses.

Every figure reproduction is a sweep: sensor current over five decades
(Fig. 3), seal resistance (Fig. 5), pixel pitch (in-text claim T2), stage
count (Fig. 1).  :class:`Sweep` couples a named parameter grid to a
callable and collects results into column arrays ready for table
rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np


def log_space(low: float, high: float, points_per_decade: int = 4) -> np.ndarray:
    """Logarithmic grid from low to high inclusive."""
    if low <= 0 or high <= low:
        raise ValueError("need 0 < low < high")
    decades = np.log10(high / low)
    count = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(low), np.log10(high), count)


def lin_space(low: float, high: float, count: int) -> np.ndarray:
    if count < 2:
        raise ValueError("count must be >= 2")
    if high <= low:
        raise ValueError("need low < high")
    return np.linspace(low, high, count)


@dataclass
class SweepResult:
    """Columnar sweep results.

    ``params`` holds the swept values, ``columns`` maps output names to
    arrays aligned with ``params``.
    """

    param_name: str
    params: np.ndarray
    columns: dict[str, np.ndarray]

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise KeyError(f"no column {name!r}; have {sorted(self.columns)}")
        return self.columns[name]

    def rows(self) -> Iterable[tuple]:
        names = sorted(self.columns)
        for i, value in enumerate(self.params):
            yield (value, *[self.columns[name][i] for name in names])

    def header(self) -> list[str]:
        return [self.param_name, *sorted(self.columns)]


def run_sweep(
    param_name: str,
    values: Sequence[float] | np.ndarray,
    func: Callable[[float], Mapping[str, float]],
) -> SweepResult:
    """Evaluate ``func`` at every value; each call returns a dict of
    scalar outputs which become the result columns."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ValueError("sweep needs at least one value")
    columns: dict[str, list[float]] = {}
    for value in values:
        outputs = func(float(value))
        if not outputs:
            raise ValueError("sweep function returned no outputs")
        if not columns:
            columns = {name: [] for name in outputs}
        if set(outputs) != set(columns):
            raise ValueError("sweep function changed its output keys mid-sweep")
        for name, out in outputs.items():
            columns[name].append(float(out))
    return SweepResult(
        param_name=param_name,
        params=values,
        columns={name: np.asarray(vals) for name, vals in columns.items()},
    )
