"""Uniformly sampled waveforms (traces) and basic DSP helpers.

A :class:`Trace` is the lingua franca between the biophysics models
(action potentials, junction voltages), the circuit models (amplifier
chains, ADC waveforms) and the analysis layer (spike detection, SNR).
It wraps a numpy array with an explicit sample interval and provides the
small set of operations the reproduction needs: arithmetic, slicing by
time, resampling, RMS/peak metrics and single-pole filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np


@dataclass
class Trace:
    """A uniformly sampled real-valued waveform.

    Parameters
    ----------
    samples:
        1-D array of sample values.
    dt:
        Sample interval in seconds (must be positive).
    t0:
        Time of the first sample in seconds.
    label:
        Free-form description used by reports.
    """

    samples: np.ndarray
    dt: float
    t0: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=float)
        if self.samples.ndim != 1:
            raise ValueError(f"Trace requires a 1-D array, got shape {self.samples.shape}")
        if not np.isfinite(self.dt) or self.dt <= 0:
            raise ValueError(f"dt must be a positive finite float, got {self.dt}")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_function(
        cls,
        func: Callable[[np.ndarray], np.ndarray],
        duration: float,
        dt: float,
        t0: float = 0.0,
        label: str = "",
    ) -> "Trace":
        """Sample ``func(t)`` on a uniform grid covering ``duration`` seconds."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        times = np.arange(t0, t0 + duration, dt)
        return cls(np.asarray(func(times), dtype=float), dt=dt, t0=t0, label=label)

    @classmethod
    def zeros(cls, duration: float, dt: float, t0: float = 0.0, label: str = "") -> "Trace":
        count = max(1, int(round(duration / dt)))
        return cls(np.zeros(count), dt=dt, t0=t0, label=label)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def duration(self) -> float:
        return self.n * self.dt

    @property
    def times(self) -> np.ndarray:
        return self.t0 + np.arange(self.n) * self.dt

    @property
    def sample_rate(self) -> float:
        return 1.0 / self.dt

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # Arithmetic (returns new traces; dt/t0 must agree for binary ops)
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "Trace") -> None:
        if abs(other.dt - self.dt) > 1e-15 * max(self.dt, other.dt):
            raise ValueError(f"dt mismatch: {self.dt} vs {other.dt}")
        if len(other) != len(self):
            raise ValueError(f"length mismatch: {len(self)} vs {len(other)}")

    def __add__(self, other: "Trace | float") -> "Trace":
        if isinstance(other, Trace):
            self._check_compatible(other)
            return Trace(self.samples + other.samples, self.dt, self.t0, self.label)
        return Trace(self.samples + float(other), self.dt, self.t0, self.label)

    def __sub__(self, other: "Trace | float") -> "Trace":
        if isinstance(other, Trace):
            self._check_compatible(other)
            return Trace(self.samples - other.samples, self.dt, self.t0, self.label)
        return Trace(self.samples - float(other), self.dt, self.t0, self.label)

    def __mul__(self, scale: float) -> "Trace":
        return Trace(self.samples * float(scale), self.dt, self.t0, self.label)

    __rmul__ = __mul__

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def rms(self) -> float:
        """Root-mean-square value of the samples."""
        return float(np.sqrt(np.mean(np.square(self.samples))))

    def peak_to_peak(self) -> float:
        return float(np.max(self.samples) - np.min(self.samples))

    def peak_abs(self) -> float:
        return float(np.max(np.abs(self.samples)))

    def mean(self) -> float:
        return float(np.mean(self.samples))

    def std(self) -> float:
        return float(np.std(self.samples))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def slice_time(self, t_start: float, t_stop: float) -> "Trace":
        """Return the sub-trace with t_start <= t < t_stop."""
        if t_stop <= t_start:
            raise ValueError(f"empty time window [{t_start}, {t_stop})")
        i0 = max(0, int(np.ceil((t_start - self.t0) / self.dt - 1e-9)))
        i1 = min(self.n, int(np.ceil((t_stop - self.t0) / self.dt - 1e-9)))
        if i1 <= i0:
            raise ValueError(f"window [{t_start}, {t_stop}) contains no samples")
        return Trace(self.samples[i0:i1].copy(), self.dt, self.t0 + i0 * self.dt, self.label)

    def resample(self, new_dt: float) -> "Trace":
        """Linear-interpolation resampling onto a new uniform grid."""
        if new_dt <= 0:
            raise ValueError(f"new_dt must be positive, got {new_dt}")
        if abs(new_dt - self.dt) < 1e-18:
            return Trace(self.samples.copy(), self.dt, self.t0, self.label)
        new_times = np.arange(self.t0, self.t0 + self.duration - 0.5 * self.dt, new_dt)
        if len(new_times) == 0:
            new_times = np.array([self.t0])
        new_samples = np.interp(new_times, self.times, self.samples)
        return Trace(new_samples, new_dt, self.t0, self.label)

    def decimate(self, factor: int) -> "Trace":
        """Keep every ``factor``-th sample (no anti-alias filter)."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return Trace(self.samples[::factor].copy(), self.dt * factor, self.t0, self.label)

    def clipped(self, low: float, high: float) -> "Trace":
        """Return a copy with samples clipped to [low, high] (rail limiting)."""
        if high < low:
            raise ValueError(f"invalid clip range [{low}, {high}]")
        return Trace(np.clip(self.samples, low, high), self.dt, self.t0, self.label)

    def lowpass(self, cutoff_hz: float) -> "Trace":
        """Single-pole IIR low-pass, the behavioural bandwidth model.

        Used for amplifier bandwidth limiting (the paper's 4 MHz readout
        amplifier and 32 MHz output driver); matches a one-pole RC
        response with f_3dB = ``cutoff_hz``.
        """
        if cutoff_hz <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff_hz}")
        alpha = 1.0 - np.exp(-2.0 * np.pi * cutoff_hz * self.dt)
        out = np.empty_like(self.samples)
        state = self.samples[0]
        for i, x in enumerate(self.samples):
            state += alpha * (x - state)
            out[i] = state
        return Trace(out, self.dt, self.t0, self.label)

    def lowpass_fast(self, cutoff_hz: float) -> "Trace":
        """Vectorised equivalent of :meth:`lowpass` via scipy lfilter."""
        from scipy.signal import lfilter

        if cutoff_hz <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff_hz}")
        alpha = 1.0 - np.exp(-2.0 * np.pi * cutoff_hz * self.dt)
        out = lfilter([alpha], [1.0, alpha - 1.0], self.samples, zi=[(1 - alpha) * self.samples[0]])[0]
        return Trace(np.asarray(out), self.dt, self.t0, self.label)

    def highpass(self, cutoff_hz: float) -> "Trace":
        """Single-pole high-pass (AC coupling, e.g. the pixel electrode cap)."""
        low = self.lowpass_fast(cutoff_hz)
        return Trace(self.samples - low.samples, self.dt, self.t0, self.label)

    def derivative(self) -> "Trace":
        """Central-difference time derivative (same length, edges one-sided)."""
        out = np.gradient(self.samples, self.dt)
        return Trace(out, self.dt, self.t0, self.label)

    def delayed(self, delay_s: float) -> "Trace":
        """Shift the waveform right by ``delay_s`` (zero-padded, same grid)."""
        if delay_s < 0:
            raise ValueError("delayed() only supports non-negative delays")
        shift = int(round(delay_s / self.dt))
        if shift == 0:
            return Trace(self.samples.copy(), self.dt, self.t0, self.label)
        out = np.zeros_like(self.samples)
        if shift < self.n:
            out[shift:] = self.samples[: self.n - shift]
        return Trace(out, self.dt, self.t0, self.label)


def concatenate(traces: Sequence[Trace]) -> Trace:
    """Concatenate traces that share a sample interval; times re-based at
    the first trace's ``t0``."""
    if not traces:
        raise ValueError("need at least one trace")
    dt = traces[0].dt
    for trace in traces[1:]:
        if abs(trace.dt - dt) > 1e-15 * dt:
            raise ValueError("all traces must share dt")
    samples = np.concatenate([trace.samples for trace in traces])
    return Trace(samples, dt, traces[0].t0, traces[0].label)


def time_axis(duration: float, dt: float, t0: float = 0.0) -> np.ndarray:
    """Uniform time grid covering [t0, t0+duration)."""
    if duration <= 0 or dt <= 0:
        raise ValueError("duration and dt must be positive")
    return t0 + np.arange(int(round(duration / dt))) * dt
