"""Plain-text table rendering for benchmark reports.

Benchmarks print the same rows/series the paper's figures show; this
module keeps that output aligned and consistent without pulling in any
plotting dependency.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .units import si_format


def format_cell(value: Any, unit: str = "", digits: int = 4) -> str:
    """Render one cell: floats get SI prefixes when a unit is given."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if unit:
            return si_format(value, unit, digits=digits)
        return f"{value:.{digits}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
    units: Sequence[str] | None = None,
) -> str:
    """Monospace table with a title line and column alignment.

    ``units``, if given, must align with ``headers``; numeric cells in a
    column are SI-formatted with that unit.
    """
    headers = list(headers)
    if units is not None and len(units) != len(headers):
        raise ValueError("units must align with headers")
    rendered_rows: list[list[str]] = []
    for row in rows:
        row = list(row)
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        cells = []
        for i, value in enumerate(row):
            unit = units[i] if units else ""
            cells.append(format_cell(value, unit))
        rendered_rows.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for cells in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)))
    return "\n".join(lines)


def render_kv(title: str, pairs: Iterable[tuple[str, Any]], units: dict[str, str] | None = None) -> str:
    """Key/value block used for scalar experiment summaries."""
    units = units or {}
    lines = [title] if title else []
    items = list(pairs)
    if not items:
        return title
    width = max(len(str(key)) for key, _ in items)
    for key, value in items:
        lines.append(f"  {str(key).ljust(width)} : {format_cell(value, units.get(key, ''))}")
    return "\n".join(lines)
