"""Monte-Carlo device mismatch (Pelgrom) sampling.

The neural pixel of Fig. 6 exists because MOS parameter variations dwarf
the 100 uV...5 mV signals; the DNA chip needs auto-calibration for the
same reason.  This module converts a :class:`~repro.core.process.ProcessSpec`
into per-device parameter draws so array models can instantiate thousands
of slightly different transistors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .process import ProcessSpec
from .rng import RngLike, ensure_rng


@dataclass(frozen=True)
class MismatchSample:
    """One device's deviation from nominal."""

    delta_vth: float  # V
    delta_beta_rel: float  # fractional current-factor error


class MismatchSampler:
    """Draws Pelgrom-distributed mismatch for devices of a given geometry.

    Parameters
    ----------
    process:
        Technology supplying the area coefficients.
    width, length:
        Drawn device dimensions in meters.
    correlation:
        Optional correlation between delta-Vth and delta-beta draws
        (physically they are nearly independent; kept for sensitivity
        studies).
    """

    def __init__(
        self,
        process: ProcessSpec,
        width: float,
        length: float,
        correlation: float = 0.0,
    ) -> None:
        if not -1.0 <= correlation <= 1.0:
            raise ValueError(f"correlation must lie in [-1, 1], got {correlation}")
        self.process = process
        self.width = width
        self.length = length
        self.correlation = correlation
        self.sigma_vth = process.sigma_vth(width, length)
        self.sigma_beta = process.sigma_beta(width, length)

    def draw(self, rng: RngLike = None) -> MismatchSample:
        """Draw one device."""
        return self.draw_many(1, rng=rng)[0]

    def draw_many(self, count: int, rng: RngLike = None) -> list[MismatchSample]:
        """Draw ``count`` independent devices."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        generator = ensure_rng(rng)
        z1 = generator.normal(0.0, 1.0, size=count)
        z2 = generator.normal(0.0, 1.0, size=count)
        rho = self.correlation
        z2 = rho * z1 + np.sqrt(max(0.0, 1.0 - rho * rho)) * z2
        return [
            MismatchSample(delta_vth=float(self.sigma_vth * a), delta_beta_rel=float(self.sigma_beta * b))
            for a, b in zip(z1, z2)
        ]

    def draw_arrays(self, count: int, rng: RngLike = None) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised draw: returns (delta_vth, delta_beta_rel) arrays."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        generator = ensure_rng(rng)
        z1 = generator.normal(0.0, 1.0, size=count)
        z2 = generator.normal(0.0, 1.0, size=count)
        rho = self.correlation
        z2 = rho * z1 + np.sqrt(max(0.0, 1.0 - rho * rho)) * z2
        return self.sigma_vth * z1, self.sigma_beta * z2


def spread_report(values: np.ndarray) -> dict[str, float]:
    """Mean / sigma / relative-sigma summary used by calibration benches."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarise an empty array")
    mean = float(np.mean(values))
    sigma = float(np.std(values))
    return {
        "mean": mean,
        "sigma": sigma,
        "relative_sigma": sigma / abs(mean) if mean != 0 else float("inf"),
        "min": float(np.min(values)),
        "max": float(np.max(values)),
    }
