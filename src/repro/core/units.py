"""SI unit helpers used throughout the library.

All internal quantities are plain floats in base SI units (amperes, volts,
seconds, farads, meters, moles per cubic meter unless stated otherwise).
This module provides named constants for the common prefixed magnitudes so
model code reads like the paper ("currents between 1 pA and 100 nA"), plus
formatting helpers for benchmark reports.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Prefix multipliers
# ---------------------------------------------------------------------------
TERA = 1e12
GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18

# Convenience aliases for the magnitudes the paper quotes.
pA = PICO
nA = NANO
uA = MICRO
mA = MILLI
mV = MILLI
uV = MICRO
fF = FEMTO
pF = PICO
nF = NANO
um = MICRO
nm = NANO
mm = MILLI
us = MICRO
ns = NANO
ms = MILLI
kHz = KILO
MHz = MEGA

# Molar concentrations.  Internal concentrations are mol/m^3, and
# 1 mol/m^3 = 1 mmol/L, so 1 nanomolar = 1e-6 mol/m^3.  Writing
# ``10 * nM`` instead of ``1e-5`` keeps example code and comments from
# drifting apart.
mM = 1.0  # mol/m^3 per millimolar
uM = 1e-3  # mol/m^3 per micromolar
nM = 1e-6  # mol/m^3 per nanomolar
pM = 1e-9  # mol/m^3 per picomolar

# ---------------------------------------------------------------------------
# Physical constants (CODATA, truncated to the precision behavioural models
# need)
# ---------------------------------------------------------------------------
BOLTZMANN = 1.380649e-23  # J/K
ELEMENTARY_CHARGE = 1.602176634e-19  # C
FARADAY = 96485.33212  # C/mol
GAS_CONSTANT = 8.314462618  # J/(mol K)
AVOGADRO = 6.02214076e23  # 1/mol
ROOM_TEMPERATURE = 300.0  # K, default simulation temperature
BODY_TEMPERATURE = 310.15  # K, used for cell-based models

_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE) -> float:
    """Return kT/q in volts (~25.85 mV at 300 K)."""
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    return BOLTZMANN * temperature_k / ELEMENTARY_CHARGE


def si_format(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an engineering SI prefix, e.g. ``2.35 nA``.

    Zero, NaN and infinities are rendered without a prefix.  Negative
    values keep their sign.
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:.{digits}g} {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in _PREFIXES:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = _PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()


def si_parse(text: str) -> float:
    """Parse an SI-prefixed string such as ``"100 nA"`` or ``"1.5pF"``.

    The unit letters after the prefix are ignored; only the numeric value
    and the prefix are interpreted.  Raises ``ValueError`` on malformed
    input.
    """
    stripped = text.strip()
    if not stripped:
        raise ValueError("empty SI literal")
    index = 0
    while index < len(stripped) and (stripped[index].isdigit() or stripped[index] in "+-.eE"):
        # Guard against the exponent 'e' swallowing a trailing unit such
        # as "5e" with no digits after it; float() below re-validates.
        index += 1
    number_part = stripped[:index]
    rest = stripped[index:].strip()
    try:
        base = float(number_part)
    except ValueError as exc:
        raise ValueError(f"cannot parse SI literal {text!r}") from exc
    if not rest:
        return base
    prefix_map = {
        "T": 1e12, "G": 1e9, "M": 1e6, "k": 1e3,
        "m": 1e-3, "u": 1e-6, "µ": 1e-6, "n": 1e-9,
        "p": 1e-12, "f": 1e-15, "a": 1e-18,
    }
    first = rest[0]
    if first in prefix_map and len(rest) > 1:
        return base * prefix_map[first]
    if first in prefix_map and len(rest) == 1 and first not in ("m",):
        # A bare prefix like "1.5p" (no unit letter).
        return base * prefix_map[first]
    if first == "m" and len(rest) == 1:
        # Ambiguous: "5 m" means metres, not milli.  Treat as unit.
        return base
    return base


def db(ratio: float) -> float:
    """Power ratio in decibels."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def db20(ratio: float) -> float:
    """Amplitude ratio in decibels."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 20.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Inverse of :func:`db`."""
    return 10.0 ** (decibels / 10.0)


def decades(low: float, high: float) -> float:
    """Number of decades spanned by the interval [low, high]."""
    if low <= 0 or high <= 0:
        raise ValueError("decades() requires positive bounds")
    return math.log10(high / low)
