"""The calibrated sensor pixel of Fig. 6 (M1, M2, S1..S3).

"Since the maximum signal amplitudes are between 100 uV and 5 mV, the
sensor MOSFETs (M1) must be calibrated to compensate for the effect of
their parameter variations.  This is done by closing switch S1 and
forcing a current through M1 by current source M2.  After opening S1
again, a voltage related to the calibration current is stored on the
gate of M1. ... all sensor transistors M1 within a row provide the same
current when selected independent of their individual device parameters."

The model keeps the physics explicit: Pelgrom-distributed M1/M2, the
feedback solve for the stored gate voltage, charge injection of S1,
kT/C noise of the storage node, and leakage droop between calibration
cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.mismatch import MismatchSampler
from ..core.noise import kt_over_c_noise
from ..core.process import ProcessSpec, default_process
from ..core.rng import RngLike, ensure_rng
from ..core.units import fF, um
from ..devices.mosfet import Mosfet
from ..devices.switches import MosSwitch


@dataclass
class NeuralPixelDesign:
    """Shared (design-level) parameters of every pixel in the array."""

    process: ProcessSpec = field(default_factory=default_process)
    m1_width: float = 2.0 * um
    m1_length: float = 1.0 * um
    calibration_current: float = 5e-6
    coupling_factor: float = 0.55  # electrode-to-gate capacitive divider
    # Storage node = M1 gate + the large sensor-electrode plate behind
    # the thin sensing dielectric (the Fig. 5 stack); the plate dominates.
    storage_capacitance: float = 500 * fF
    s1_width: float = 0.8 * um
    s1_length: float = 0.5 * um
    # A half-sized dummy switch clocked in antiphase cancels most of the
    # S1 channel charge; ``dummy_compensation`` is the cancelled
    # fraction, ``injection_residual_sigma`` the pixel-to-pixel spread
    # of the *net* step (relative to the gross step).  With these values
    # the residual input-referred offset lands near 100 uV — at the
    # bottom edge of the paper's signal window, as it must for the
    # recordings of [19-21] to work.
    dummy_compensation: float = 0.98
    injection_residual_sigma: float = 0.015

    def __post_init__(self) -> None:
        if self.calibration_current <= 0:
            raise ValueError("calibration current must be positive")
        if not 0.0 < self.coupling_factor <= 1.0:
            raise ValueError("coupling factor must lie in (0, 1]")
        if self.storage_capacitance <= 0:
            raise ValueError("storage capacitance must be positive")
        if not 0.0 <= self.dummy_compensation <= 1.0:
            raise ValueError("dummy compensation must lie in [0, 1]")
        if self.injection_residual_sigma < 0:
            raise ValueError("injection residual sigma must be non-negative")


class NeuralSensorPixel:
    """One pixel: sensor transistor M1, calibration source M2, switch S1.

    Parameters
    ----------
    design:
        Shared design values.
    rng:
        Per-pixel mismatch draw.
    """

    def __init__(self, design: NeuralPixelDesign | None = None, rng: RngLike = None) -> None:
        self.design = design or NeuralPixelDesign()
        generator = ensure_rng(rng)
        sampler = MismatchSampler(self.design.process, self.design.m1_width, self.design.m1_length)
        self.m1 = Mosfet(
            self.design.m1_width,
            self.design.m1_length,
            "n",
            self.design.process,
            sampler.draw(generator),
        )
        # M2's current differs pixel-to-pixel through its own mismatch.
        m2_sampler = MismatchSampler(self.design.process, 2 * self.design.m1_width, self.design.m1_length)
        m2_mismatch = m2_sampler.draw(generator)
        nominal = self.design.calibration_current
        self.i_m2 = nominal * (1.0 + m2_mismatch.delta_beta_rel) * (
            1.0 - 3.0 * m2_mismatch.delta_vth
        )
        self.s1 = MosSwitch(self.design.s1_width, self.design.s1_length, self.design.process)
        self.stored_gate_v: float | None = None
        self._kt_c_draw = float(generator.normal(0.0, 1.0))
        self._injection_draw = float(generator.normal(0.0, 1.0))

    # ------------------------------------------------------------------
    # Calibration (S1 closed -> opened)
    # ------------------------------------------------------------------
    def calibrate(self, include_imperfections: bool = True) -> float:
        """Run the calibration cycle; returns the stored gate voltage.

        The loop forces M1 to carry M2's actual current; opening S1 adds
        the dummy-compensated charge-injection residue, its pixel-to-
        pixel spread, and a kT/C sample.
        """
        v_exact = self.m1.vgs_for_current(self.i_m2)
        stored = v_exact
        if include_imperfections:
            node_c = self.design.storage_capacitance
            gross = self.s1.injection_step(v_exact, node_c) + self.s1.clock_feedthrough(node_c)
            stored += gross * (1.0 - self.design.dummy_compensation)
            stored += abs(gross) * self.design.injection_residual_sigma * self._injection_draw
            stored += kt_over_c_noise(node_c) * self._kt_c_draw
        self.stored_gate_v = stored
        return stored

    def droop(self, hold_time_s: float) -> None:
        """Leakage droop of the stored voltage between calibrations."""
        if self.stored_gate_v is None:
            raise RuntimeError("pixel has not been calibrated")
        if hold_time_s < 0:
            raise ValueError("hold time must be non-negative")
        self.stored_gate_v -= self.s1.droop_rate(self.design.storage_capacitance) * hold_time_s

    # ------------------------------------------------------------------
    # Currents
    # ------------------------------------------------------------------
    def uncalibrated_current(self) -> float:
        """M1's current if biased at the *nominal* gate voltage — what the
        array would deliver without the calibration scheme."""
        nominal_pixel = Mosfet(
            self.design.m1_width, self.design.m1_length, "n", self.design.process
        )
        v_nominal = nominal_pixel.vgs_for_current(self.design.calibration_current)
        return self.m1.ids_saturation(v_nominal)

    def readout_current(self, sensor_voltage: float = 0.0) -> float:
        """M1 current in readout mode with an electrode excursion.

        ``sensor_voltage`` is the cleft voltage V_J; the coupling factor
        attenuates it onto the stored gate.
        """
        if self.stored_gate_v is None:
            raise RuntimeError("pixel has not been calibrated")
        v_gate = self.stored_gate_v + self.design.coupling_factor * sensor_voltage
        return self.m1.ids_saturation(v_gate)

    def difference_current(self, sensor_voltage: float = 0.0) -> float:
        """The readout signal: I(M1) - I(M2), ideally gm*k*V_J."""
        return self.readout_current(sensor_voltage) - self.i_m2

    def offset_current(self) -> float:
        """Residual difference current with no signal — the calibration
        figure of merit."""
        return self.difference_current(0.0)

    def transconductance(self) -> float:
        """Small-signal gain dI/dV_J at the operating point, A/V."""
        if self.stored_gate_v is None:
            raise RuntimeError("pixel has not been calibrated")
        gm = self.m1.gm(self.stored_gate_v, self.design.process.vdd / 2.0)
        return gm * self.design.coupling_factor

    def input_referred_offset(self) -> float:
        """Offset current divided by transconductance: the equivalent
        sensor-voltage error, directly comparable to the 100 uV signals."""
        gm_eff = self.transconductance()
        if gm_eff <= 0:
            raise RuntimeError("pixel transconductance vanished")
        return self.offset_current() / gm_eff


# ---------------------------------------------------------------------------
# Vectorised array-scale equivalents (16384 pixels without 16384 objects)
# ---------------------------------------------------------------------------
def ekv_vgs_for_current_array(
    currents: np.ndarray,
    vth: np.ndarray,
    beta: np.ndarray,
    process: ProcessSpec,
    temperature_k: float = 300.0,
) -> np.ndarray:
    """Closed-form EKV inverse: gate voltage for a saturation current.

    Matches :meth:`repro.devices.mosfet.Mosfet.vgs_for_current` to the
    accuracy of the channel-length-modulation term it ignores.
    """
    from ..core.units import thermal_voltage

    vt = thermal_voltage(temperature_k)
    n = process.subthreshold_slope_n
    i_spec = 2.0 * n * beta * vt * vt
    u = np.sqrt(np.asarray(currents) / i_spec)
    # ln(e^u - 1) computed stably for small and large u.
    x = np.where(u > 30.0, u, np.log(np.expm1(np.maximum(u, 1e-12))))
    return vth + n * (2.0 * vt * x)


def ekv_ids_array(
    vgs: np.ndarray,
    vth: np.ndarray,
    beta: np.ndarray,
    process: ProcessSpec,
    temperature_k: float = 300.0,
) -> np.ndarray:
    """Vectorised saturation current of the EKV interpolation."""
    from ..core.units import thermal_voltage

    vt = thermal_voltage(temperature_k)
    n = process.subthreshold_slope_n
    i_spec = 2.0 * n * beta * vt * vt
    x = (np.asarray(vgs) - vth) / (2.0 * n * vt)
    log_term = np.where(x > 40.0, x, np.log1p(np.exp(np.minimum(x, 40.0))))
    return i_spec * log_term**2
