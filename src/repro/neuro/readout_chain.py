"""The complete Fig. 6 signal path.

"... difference currents between M1 and M2 ... are compensated by the
closed regulation loop composed of A, M3, and M4 and further amplified
through the whole signal path ... the subsequent current gain stages
also undergo a calibration procedure before used for signal
amplification."

Stage budget straight from the figure annotations:

    pixel -> regulation loop (transimpedance) -> x100 -> x7 readout
    amplifier (BW = 4 MHz) -> 8-to-1 multiplexer -> output driver
    (BW = 32 MHz) -> off-chip x4 -> x2 -> conversion

Total voltage gain 100 * 7 * 4 * 2 = 5600.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.rng import RngLike, ensure_rng
from ..core.signals import Trace
from ..core.units import MHz
from ..devices.amplifier import AmplifierChain, GainStage


# Figure annotations.
ON_CHIP_GAINS = (100.0, 7.0)
OFF_CHIP_GAINS = (4.0, 2.0)
READOUT_AMP_BW = 4 * MHz
OUTPUT_DRIVER_BW = 32 * MHz
TOTAL_GAIN = 100.0 * 7.0 * 4.0 * 2.0  # = 5600


@dataclass
class ReadoutChainBudget:
    """Static nameplate numbers for reports."""

    total_gain: float = TOTAL_GAIN
    on_chip_gain: float = ON_CHIP_GAINS[0] * ON_CHIP_GAINS[1]
    off_chip_gain: float = OFF_CHIP_GAINS[0] * OFF_CHIP_GAINS[1]
    readout_bw_hz: float = READOUT_AMP_BW
    driver_bw_hz: float = OUTPUT_DRIVER_BW


def build_readout_chain(
    rng: RngLike = None,
    gain_error_sigma: float = 0.03,
    offset_sigma_v: float = 0.004,
    noise_density_v2_hz: float = (8e-9) ** 2,
    rail_v: float = 2.5,
) -> AmplifierChain:
    """One channel's amplifier cascade with drawn imperfections.

    Offsets and gain errors are per-instance (the reason the paper
    calibrates these stages); noise density is a typical MOS amplifier
    input-referred floor (~8 nV/rtHz).
    """
    generator = ensure_rng(rng)

    def draw_stage(gain: float, bw: float, label: str) -> GainStage:
        return GainStage(
            nominal_gain=gain,
            bandwidth_hz=bw,
            gain_error=float(generator.normal(0.0, gain_error_sigma)),
            offset_v=float(generator.normal(0.0, offset_sigma_v)),
            input_noise_density=noise_density_v2_hz,
            rail_low=-rail_v,
            rail_high=rail_v,
            label=label,
        )

    return AmplifierChain(
        stages=[
            draw_stage(ON_CHIP_GAINS[0], 3 * READOUT_AMP_BW, "x100 pixel amp"),
            draw_stage(ON_CHIP_GAINS[1], READOUT_AMP_BW, "x7 readout amp (4 MHz)"),
            draw_stage(1.0, OUTPUT_DRIVER_BW, "output driver (32 MHz)"),
            draw_stage(OFF_CHIP_GAINS[0], OUTPUT_DRIVER_BW, "x4 off-chip"),
            draw_stage(OFF_CHIP_GAINS[1], OUTPUT_DRIVER_BW, "x2 off-chip"),
        ]
    )


@dataclass
class ChannelFrontEnd:
    """Pixel-facing transimpedance of the regulation loop (A, M3, M4).

    The loop absorbs the pixel difference current and presents a
    proportional voltage to the x100 stage.  Its transimpedance is set
    so gm_pixel * R_ti = 1: the chain input voltage equals the coupled
    electrode voltage, making the x5600 budget directly applicable.
    """

    transimpedance_ohm: float = 20_000.0
    input_current_noise_density: float = (0.5e-12) ** 2  # A^2/Hz

    def __post_init__(self) -> None:
        if self.transimpedance_ohm <= 0:
            raise ValueError("transimpedance must be positive")

    def current_to_voltage(self, current_trace: Trace, rng: RngLike = None) -> Trace:
        """Convert the pixel difference current into the chain input."""
        voltage = current_trace * self.transimpedance_ohm
        if self.input_current_noise_density > 0:
            from ..core.noise import white_noise_trace

            noise = white_noise_trace(
                self.input_current_noise_density,
                current_trace.duration,
                current_trace.dt,
                rng=rng,
            )
            if noise.n == voltage.n:
                voltage = voltage + noise * self.transimpedance_ohm
        voltage.label = "chain input"
        return voltage


@dataclass
class ReadoutChannel:
    """One of the 16 parallel channels: front end + calibrated cascade."""

    front_end: ChannelFrontEnd = field(default_factory=ChannelFrontEnd)
    chain: AmplifierChain = None  # type: ignore[assignment]
    calibrated: bool = False

    def __post_init__(self) -> None:
        if self.chain is None:
            self.chain = build_readout_chain()

    @classmethod
    def sample(cls, rng: RngLike = None) -> "ReadoutChannel":
        return cls(chain=build_readout_chain(rng))

    def calibrate(self, residual_v: float = 50e-6) -> None:
        """The paper's gain-stage calibration: zero each stage's offset
        to within ``residual_v``."""
        self.chain.calibrate_all(residual_v)
        self.calibrated = True

    def process_current(self, current_trace: Trace, rng: RngLike = None, include_noise: bool = True) -> Trace:
        generator = ensure_rng(rng)
        voltage = self.front_end.current_to_voltage(current_trace, rng=generator if include_noise else None)
        return self.chain.process(voltage, rng=generator, include_noise=include_noise)

    def dc_output(self, current_a: float) -> float:
        """Static output for a DC difference current — shows how an
        uncalibrated chain saturates on pixel offsets alone."""
        return self.chain.dc_transfer(current_a * self.front_end.transimpedance_ohm)

    def output_headroom_used(self, current_a: float, rail_v: float = 2.5) -> float:
        """|output| / rail for a DC input; >=1 means clipped."""
        return abs(self.dc_output(current_a)) / rail_v
