"""Spike detection and scoring on recorded pixel traces.

The downstream task the neurochip exists for: find action potentials in
the sampled 2 kframe/s data.  Detection uses the robust (median absolute
deviation) noise estimate standard in extracellular electrophysiology;
scoring matches detections against the simulation's ground-truth spike
times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.signals import Trace


def mad_noise_estimate(trace: Trace) -> float:
    """Robust noise sigma: median(|x - median|) / 0.6745."""
    samples = trace.samples
    median = np.median(samples)
    return float(np.median(np.abs(samples - median)) / 0.6745)


def detect_spikes(
    trace: Trace,
    threshold_sigma: float = 5.0,
    refractory_s: float = 2e-3,
    polarity: str = "both",
) -> np.ndarray:
    """Threshold detector returning spike times.

    Parameters
    ----------
    threshold_sigma:
        Detection level in units of the MAD noise estimate.
    refractory_s:
        Minimum separation between accepted events.
    polarity:
        "pos", "neg" or "both" — junction transients are biphasic, so
        "both" is the robust default.
    """
    if threshold_sigma <= 0:
        raise ValueError("threshold must be positive")
    if polarity not in ("pos", "neg", "both"):
        raise ValueError(f"unknown polarity {polarity!r}")
    sigma = mad_noise_estimate(trace)
    if sigma == 0:
        sigma = 1e-12
    level = threshold_sigma * sigma
    centred = trace.samples - np.median(trace.samples)
    if polarity == "pos":
        hot = centred > level
    elif polarity == "neg":
        hot = centred < -level
    else:
        hot = np.abs(centred) > level
    edges = np.nonzero(hot[1:] & ~hot[:-1])[0] + 1
    times = trace.t0 + edges * trace.dt
    if len(times) == 0:
        return times
    kept = [times[0]]
    for t in times[1:]:
        if t - kept[-1] >= refractory_s:
            kept.append(t)
    return np.asarray(kept)


@dataclass(frozen=True)
class DetectionScore:
    """Detection quality against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total else 0.0

    @property
    def recall(self) -> float:
        total = self.true_positives + self.false_negatives
        return self.true_positives / total if total else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def score_detection(
    detected: np.ndarray, truth: np.ndarray, tolerance_s: float = 2e-3
) -> DetectionScore:
    """Greedy one-to-one matching of detections to true events."""
    if tolerance_s <= 0:
        raise ValueError("tolerance must be positive")
    detected = np.sort(np.asarray(detected, dtype=float))
    truth = np.sort(np.asarray(truth, dtype=float))
    used = np.zeros(len(detected), dtype=bool)
    tp = 0
    for t in truth:
        candidates = np.nonzero(~used & (np.abs(detected - t) <= tolerance_s))[0]
        if len(candidates):
            nearest = candidates[np.argmin(np.abs(detected[candidates] - t))]
            used[nearest] = True
            tp += 1
    fp = int(np.sum(~used))
    fn = len(truth) - tp
    return DetectionScore(true_positives=tp, false_positives=fp, false_negatives=fn)


def spike_snr(trace: Trace, spike_times: np.ndarray, window_s: float = 1.5e-3) -> float:
    """Peak spike amplitude over MAD noise, in linear units.

    Noise is estimated on the spike-free segments.
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    mask = np.ones(trace.n, dtype=bool)
    for t in np.asarray(spike_times, dtype=float):
        i0 = max(0, int((t - window_s - trace.t0) / trace.dt))
        i1 = min(trace.n, int((t + window_s - trace.t0) / trace.dt) + 1)
        mask[i0:i1] = False
    quiet = trace.samples[mask]
    if quiet.size < 8:
        raise ValueError("not enough spike-free samples for a noise estimate")
    sigma = float(np.median(np.abs(quiet - np.median(quiet))) / 0.6745)
    if sigma == 0:
        return float("inf")
    centred = trace.samples - np.median(quiet)
    peak = float(np.max(np.abs(centred[~mask]))) if np.any(~mask) else 0.0
    return peak / sigma
