"""Spike detection and scoring on recorded pixel traces.

The downstream task the neurochip exists for: find action potentials in
the sampled 2 kframe/s data.  Detection uses the robust (median absolute
deviation) noise estimate standard in extracellular electrophysiology;
scoring matches detections against the simulation's ground-truth spike
times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.signals import Trace


def mad_noise_estimate(trace: Trace) -> float:
    """Robust noise sigma: median(|x - median|) / 0.6745."""
    samples = trace.samples
    median = np.median(samples)
    return float(np.median(np.abs(samples - median)) / 0.6745)


def detect_spikes(
    trace: Trace,
    threshold_sigma: float = 5.0,
    refractory_s: float = 2e-3,
    polarity: str = "both",
) -> np.ndarray:
    """Threshold detector returning spike times.

    Parameters
    ----------
    threshold_sigma:
        Detection level in units of the MAD noise estimate.
    refractory_s:
        Minimum separation between accepted events.
    polarity:
        "pos", "neg" or "both" — junction transients are biphasic, so
        "both" is the robust default.
    """
    if threshold_sigma <= 0:
        raise ValueError("threshold must be positive")
    if polarity not in ("pos", "neg", "both"):
        raise ValueError(f"unknown polarity {polarity!r}")
    sigma = mad_noise_estimate(trace)
    if sigma == 0:
        sigma = 1e-12
    level = threshold_sigma * sigma
    centred = trace.samples - np.median(trace.samples)
    if polarity == "pos":
        hot = centred > level
    elif polarity == "neg":
        hot = centred < -level
    else:
        hot = np.abs(centred) > level
    edges = np.nonzero(hot[1:] & ~hot[:-1])[0] + 1
    times = trace.t0 + edges * trace.dt
    if len(times) == 0:
        return times
    kept = [times[0]]
    for t in times[1:]:
        if t - kept[-1] >= refractory_s:
            kept.append(t)
    return np.asarray(kept)


@dataclass(frozen=True)
class DetectionScore:
    """Detection quality against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total else 0.0

    @property
    def recall(self) -> float:
        total = self.true_positives + self.false_negatives
        return self.true_positives / total if total else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def score_detection(
    detected: np.ndarray, truth: np.ndarray, tolerance_s: float = 2e-3
) -> DetectionScore:
    """Greedy one-to-one matching of detections to true events.

    The candidate search is windowed with ``np.searchsorted`` (both
    arrays are sorted), so each truth event only inspects the
    detections inside its tolerance window instead of masking the full
    detection array — same greedy nearest-unused assignment, same
    counts, O(n log n) instead of O(n_truth * n_detected).
    """
    if tolerance_s <= 0:
        raise ValueError("tolerance must be positive")
    detected = np.sort(np.asarray(detected, dtype=float))
    truth = np.sort(np.asarray(truth, dtype=float))
    used = np.zeros(len(detected), dtype=bool)
    # Window [lo, hi) per truth event, padded by one so float rounding
    # of (t - tolerance) can never exclude a boundary candidate the
    # exact |d - t| <= tolerance predicate below would accept.
    lo = np.maximum(np.searchsorted(detected, truth - tolerance_s, side="left") - 1, 0)
    hi = np.minimum(
        np.searchsorted(detected, truth + tolerance_s, side="right") + 1, len(detected)
    )
    tp = 0
    for index, t in enumerate(truth):
        window = slice(lo[index], hi[index])
        distance = np.abs(detected[window] - t)
        candidates = np.nonzero(~used[window] & (distance <= tolerance_s))[0]
        if len(candidates):
            nearest = lo[index] + candidates[np.argmin(distance[candidates])]
            used[nearest] = True
            tp += 1
    fp = int(np.sum(~used))
    fn = len(truth) - tp
    return DetectionScore(true_positives=tp, false_positives=fp, false_negatives=fn)


def spike_free_mask(trace: Trace, spike_times: np.ndarray, window_s: float) -> np.ndarray:
    """Boolean mask of samples outside every ``±window_s`` spike window.

    Vectorised interval blanking: the per-spike window bounds are
    computed in one pass (truncating exactly as the original
    ``int()``-based loop did, including Python's negative-stop slice
    semantics) and applied through a boundary difference array instead
    of one slice assignment per spike.
    """
    mask = np.ones(trace.n, dtype=bool)
    times = np.asarray(spike_times, dtype=float)
    if times.size == 0:
        return mask
    start = np.maximum(
        0, np.trunc((times - window_s - trace.t0) / trace.dt).astype(np.int64)
    )
    stop = np.minimum(
        trace.n, np.trunc((times + window_s - trace.t0) / trace.dt).astype(np.int64) + 1
    )
    # A negative stop means "from the end" in the original slice form.
    stop = np.where(stop >= 0, stop, np.maximum(0, trace.n + stop))
    covered = start < stop
    boundaries = np.zeros(trace.n + 1, dtype=np.int64)
    np.add.at(boundaries, start[covered], 1)
    np.add.at(boundaries, stop[covered], -1)
    mask[np.cumsum(boundaries[:-1]) > 0] = False
    return mask


def spike_snr(trace: Trace, spike_times: np.ndarray, window_s: float = 1.5e-3) -> float:
    """Peak spike amplitude over MAD noise, in linear units.

    Noise is estimated on the spike-free segments.
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    mask = spike_free_mask(trace, spike_times, window_s)
    quiet = trace.samples[mask]
    if quiet.size < 8:
        raise ValueError("not enough spike-free samples for a noise estimate")
    sigma = float(np.median(np.abs(quiet - np.median(quiet))) / 0.6745)
    if sigma == 0:
        return float("inf")
    centred = trace.samples - np.median(quiet)
    peak = float(np.max(np.abs(centred[~mask]))) if np.any(~mask) else 0.0
    return peak / sigma
