"""Neural-recording substrate: biophysics, junction, pixels, readout."""

from .action_potential import (
    HHParameters,
    HHResult,
    HodgkinHuxleyNeuron,
    StimulusProtocol,
    detect_spike_times,
    template_action_potential,
)
from .array import NeuralArrayModel, RecordedMovie
from .culture import (
    ArrayGeometry,
    Culture,
    NEURO_GEOMETRY,
    PlacedNeuron,
    coverage_vs_pitch,
)
from .junction import CellChipJunction, ELECTROLYTE_RESISTIVITY
from .readout_chain import (
    ChannelFrontEnd,
    ReadoutChainBudget,
    ReadoutChannel,
    TOTAL_GAIN,
    build_readout_chain,
)
from .sensor_pixel import (
    NeuralPixelDesign,
    NeuralSensorPixel,
    ekv_ids_array,
    ekv_vgs_for_current_array,
)
from .spike_detection import (
    DetectionScore,
    detect_spikes,
    mad_noise_estimate,
    score_detection,
    spike_snr,
)

__all__ = [
    "ArrayGeometry",
    "CellChipJunction",
    "ChannelFrontEnd",
    "Culture",
    "DetectionScore",
    "ELECTROLYTE_RESISTIVITY",
    "HHParameters",
    "HHResult",
    "HodgkinHuxleyNeuron",
    "NEURO_GEOMETRY",
    "NeuralArrayModel",
    "NeuralPixelDesign",
    "NeuralSensorPixel",
    "PlacedNeuron",
    "ReadoutChainBudget",
    "ReadoutChannel",
    "RecordedMovie",
    "StimulusProtocol",
    "TOTAL_GAIN",
    "build_readout_chain",
    "coverage_vs_pitch",
    "detect_spike_times",
    "detect_spikes",
    "ekv_ids_array",
    "ekv_vgs_for_current_array",
    "mad_noise_estimate",
    "score_detection",
    "spike_snr",
    "template_action_potential",
]
