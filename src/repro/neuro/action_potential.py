"""Action-potential generation (Section 3 biophysics).

"The elementary neural signals of cells, action potentials, are temporal
peaks of the intracellular voltage, which are associated with ion
currents through the cell membrane."

Two generators:

* :class:`HodgkinHuxleyNeuron` — the full conductance model, integrated
  with RK4; provides the membrane voltage *and* the per-area ionic and
  capacitive current densities that the junction model (Fig. 5) needs.
* :func:`template_action_potential` — a fast analytic AP for array-scale
  simulations where 16k pixels would make HH integration wasteful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.rng import RngLike, ensure_rng
from ..core.signals import Trace


@dataclass
class HHParameters:
    """Hodgkin-Huxley conductance parameters (squid-axon classics).

    Units follow the HH convention: mV, ms, mS/cm^2, uA/cm^2; the class
    converts to SI at its interface.
    """

    c_m: float = 1.0  # uF/cm^2
    g_na: float = 120.0  # mS/cm^2
    g_k: float = 36.0
    g_leak: float = 0.3
    e_na: float = 50.0  # mV
    e_k: float = -77.0
    e_leak: float = -54.387
    v_rest: float = -65.0


def _alpha_n(v: float) -> float:
    if abs(v + 55.0) < 1e-7:
        return 0.1
    return 0.01 * (v + 55.0) / (1.0 - math.exp(-(v + 55.0) / 10.0))


def _beta_n(v: float) -> float:
    return 0.125 * math.exp(-(v + 65.0) / 80.0)


def _alpha_m(v: float) -> float:
    if abs(v + 40.0) < 1e-7:
        return 1.0
    return 0.1 * (v + 40.0) / (1.0 - math.exp(-(v + 40.0) / 10.0))


def _beta_m(v: float) -> float:
    return 4.0 * math.exp(-(v + 65.0) / 18.0)


def _alpha_h(v: float) -> float:
    return 0.07 * math.exp(-(v + 65.0) / 20.0)


def _beta_h(v: float) -> float:
    return 1.0 / (1.0 + math.exp(-(v + 35.0) / 10.0))


@dataclass
class HHResult:
    """Integrated HH trajectory with current decomposition.

    All traces share the same grid.  Voltages in volts; current
    *densities* in A/m^2 (what the junction model consumes).
    """

    membrane_voltage: Trace
    ionic_current_density: Trace
    capacitive_current_density: Trace
    sodium_current_density: Trace
    potassium_current_density: Trace
    spike_times: np.ndarray

    def total_current_density(self) -> Trace:
        return self.ionic_current_density + self.capacitive_current_density


class HodgkinHuxleyNeuron:
    """RK4-integrated HH point neuron."""

    def __init__(self, params: HHParameters | None = None) -> None:
        self.params = params or HHParameters()

    # ------------------------------------------------------------------
    def steady_state(self, v_mv: float) -> tuple[float, float, float]:
        """Gating steady state (n, m, h) at a holding voltage."""
        n = _alpha_n(v_mv) / (_alpha_n(v_mv) + _beta_n(v_mv))
        m = _alpha_m(v_mv) / (_alpha_m(v_mv) + _beta_m(v_mv))
        h = _alpha_h(v_mv) / (_alpha_h(v_mv) + _beta_h(v_mv))
        return n, m, h

    def _derivatives(self, state: np.ndarray, i_stim_ua_cm2: float) -> np.ndarray:
        v, n, m, h = state
        p = self.params
        i_na = p.g_na * m**3 * h * (v - p.e_na)
        i_k = p.g_k * n**4 * (v - p.e_k)
        i_leak = p.g_leak * (v - p.e_leak)
        dv = (i_stim_ua_cm2 - i_na - i_k - i_leak) / p.c_m
        dn = _alpha_n(v) * (1.0 - n) - _beta_n(v) * n
        dm = _alpha_m(v) * (1.0 - m) - _beta_m(v) * m
        dh = _alpha_h(v) * (1.0 - h) - _beta_h(v) * h
        return np.array([dv, dn, dm, dh])

    def simulate(
        self,
        duration_s: float,
        dt_s: float = 10e-6,
        stimulus: "StimulusProtocol | None" = None,
    ) -> HHResult:
        """Integrate for ``duration_s`` seconds.

        ``stimulus`` provides the injected current density over time; the
        default is a single supra-threshold pulse at 2 ms.
        """
        if duration_s <= 0 or dt_s <= 0:
            raise ValueError("duration and dt must be positive")
        stimulus = stimulus or StimulusProtocol.single_pulse()
        p = self.params
        dt_ms = dt_s * 1e3
        steps = int(round(duration_s / dt_s))
        n0, m0, h0 = self.steady_state(p.v_rest)
        state = np.array([p.v_rest, n0, m0, h0])
        v_out = np.empty(steps)
        i_ion = np.empty(steps)
        i_na_out = np.empty(steps)
        i_k_out = np.empty(steps)
        for step in range(steps):
            t_s = step * dt_s
            i_stim = stimulus.current_ua_cm2(t_s)
            k1 = self._derivatives(state, i_stim)
            k2 = self._derivatives(state + 0.5 * dt_ms * k1, i_stim)
            k3 = self._derivatives(state + 0.5 * dt_ms * k2, i_stim)
            k4 = self._derivatives(state + dt_ms * k3, i_stim)
            state = state + (dt_ms / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
            v, n, m, h = state
            i_na = p.g_na * m**3 * h * (v - p.e_na)
            i_k = p.g_k * n**4 * (v - p.e_k)
            i_leak = p.g_leak * (v - p.e_leak)
            v_out[step] = v
            i_ion[step] = i_na + i_k + i_leak
            i_na_out[step] = i_na
            i_k_out[step] = i_k
        # Unit conversions: mV -> V; uA/cm^2 -> A/m^2 (x0.01).
        v_trace = Trace(v_out * 1e-3, dt_s, label="V_membrane")
        ion_trace = Trace(i_ion * 0.01, dt_s, label="ionic current density")
        # Capacitive density: C dV/dt with C in F/m^2 (1 uF/cm^2 = 0.01 F/m^2).
        cap_density = np.gradient(v_out * 1e-3, dt_s) * (p.c_m * 0.01)
        cap_trace = Trace(cap_density, dt_s, label="capacitive current density")
        spike_times = detect_spike_times(v_trace, threshold_v=0.0)
        return HHResult(
            membrane_voltage=v_trace,
            ionic_current_density=ion_trace,
            capacitive_current_density=cap_trace,
            sodium_current_density=Trace(i_na_out * 0.01, dt_s, label="I_Na density"),
            potassium_current_density=Trace(i_k_out * 0.01, dt_s, label="I_K density"),
            spike_times=spike_times,
        )


@dataclass
class StimulusProtocol:
    """Injected current-density schedule, uA/cm^2 vs seconds."""

    pulses: list[tuple[float, float, float]] = field(default_factory=list)
    # each pulse: (t_start_s, duration_s, amplitude_ua_cm2)

    def current_ua_cm2(self, t_s: float) -> float:
        total = 0.0
        for start, width, amplitude in self.pulses:
            if start <= t_s < start + width:
                total += amplitude
        return total

    @classmethod
    def single_pulse(
        cls, t_start_s: float = 2e-3, duration_s: float = 0.5e-3, amplitude: float = 40.0
    ) -> "StimulusProtocol":
        return cls(pulses=[(t_start_s, duration_s, amplitude)])

    @classmethod
    def spike_train(
        cls,
        rate_hz: float,
        duration_s: float,
        rng: RngLike = None,
        pulse_amplitude: float = 40.0,
    ) -> "StimulusProtocol":
        """Poisson stimulation pulses producing an irregular spike train."""
        if rate_hz <= 0 or duration_s <= 0:
            raise ValueError("rate and duration must be positive")
        generator = ensure_rng(rng)
        times = []
        t = 0.0
        while True:
            t += float(generator.exponential(1.0 / rate_hz))
            if t >= duration_s:
                break
            times.append(t)
        return cls(pulses=[(t, 0.5e-3, pulse_amplitude) for t in times])


def detect_spike_times(v: Trace, threshold_v: float = 0.0, refractory_s: float = 2e-3) -> np.ndarray:
    """Upward threshold crossings with a refractory hold-off."""
    above = v.samples > threshold_v
    crossings = np.nonzero(above[1:] & ~above[:-1])[0] + 1
    times = v.t0 + crossings * v.dt
    if len(times) == 0:
        return times
    kept = [times[0]]
    for t in times[1:]:
        if t - kept[-1] >= refractory_s:
            kept.append(t)
    return np.asarray(kept)


def template_action_potential(
    duration_s: float = 5e-3,
    dt_s: float = 10e-6,
    amplitude_v: float = 0.1,
    t_spike_s: float = 1e-3,
) -> Trace:
    """Analytic AP: fast depolarisation, slower repolarisation with
    undershoot — matches the HH waveform shape at ~1/1000 the cost."""
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration and dt must be positive")
    t = np.arange(0.0, duration_s, dt_s)
    x = (t - t_spike_s) / 0.4e-3
    rising = np.exp(-np.clip(-x, None, 50.0) * 2.0)
    falling = np.exp(-np.clip(x, None, 50.0) * 0.7)
    wave = np.where(x < 0, rising, falling)
    undershoot = -0.25 * np.exp(-np.clip((t - t_spike_s - 1.2e-3) / 1.5e-3, None, 50.0) ** 2)
    undershoot[t < t_spike_s + 0.5e-3] = 0.0
    samples = amplitude_v * (wave + undershoot)
    return Trace(samples, dt_s, label="template AP")
