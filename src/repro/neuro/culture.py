"""Neuron cultures on the sensor surface.

"Since typical neuron diameters are 10 um ... 100 um the chosen pitch of
7.8 um guarantees that each cell is monitored independent of its
individual position."  This module places cells on the 1 mm x 1 mm
array, maps each soma to the pixels beneath it, and quantifies that
coverage claim (the T2 in-text experiment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.rng import RngLike, ensure_rng
from ..core.units import um
from .junction import CellChipJunction


@dataclass(frozen=True)
class PlacedNeuron:
    """A soma at a physical position on the chip surface."""

    index: int
    x: float  # m, chip coordinates
    y: float
    diameter: float
    junction: CellChipJunction

    @property
    def radius(self) -> float:
        return 0.5 * self.diameter


@dataclass
class ArrayGeometry:
    """Physical sensor grid (the paper: 128x128 at 7.8 um over 1 mm^2)."""

    rows: int = 128
    cols: int = 128
    pitch: float = 7.8 * um

    def __post_init__(self) -> None:
        if min(self.rows, self.cols) < 1 or self.pitch <= 0:
            raise ValueError("invalid array geometry")

    @property
    def width(self) -> float:
        return self.cols * self.pitch

    @property
    def height(self) -> float:
        return self.rows * self.pitch

    def pixel_center(self, row: int, col: int) -> tuple[float, float]:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"pixel ({row}, {col}) outside array")
        return ((col + 0.5) * self.pitch, (row + 0.5) * self.pitch)

    def pixels_under_disk(self, x: float, y: float, radius: float) -> list[tuple[int, int]]:
        """All pixels whose centre lies under a soma disk."""
        if radius <= 0:
            raise ValueError("radius must be positive")
        col_lo = max(0, int((x - radius) / self.pitch - 1))
        col_hi = min(self.cols - 1, int((x + radius) / self.pitch + 1))
        row_lo = max(0, int((y - radius) / self.pitch - 1))
        row_hi = min(self.rows - 1, int((y + radius) / self.pitch + 1))
        covered = []
        for row in range(row_lo, row_hi + 1):
            for col in range(col_lo, col_hi + 1):
                cx, cy = self.pixel_center(row, col)
                if (cx - x) ** 2 + (cy - y) ** 2 <= radius**2:
                    covered.append((row, col))
        return covered


NEURO_GEOMETRY = ArrayGeometry()


@dataclass
class Culture:
    """A set of placed neurons plus the array they sit on."""

    geometry: ArrayGeometry
    neurons: list[PlacedNeuron] = field(default_factory=list)

    @classmethod
    def random(
        cls,
        count: int,
        geometry: ArrayGeometry | None = None,
        diameter_range: tuple[float, float] = (10 * um, 100 * um),
        rng: RngLike = None,
        min_separation_factor: float = 0.8,
        max_attempts: int = 2000,
    ) -> "Culture":
        """Place ``count`` somata uniformly with soft overlap rejection."""
        if count < 0:
            raise ValueError("count must be non-negative")
        lo, hi = diameter_range
        if not 0 < lo <= hi:
            raise ValueError("invalid diameter range")
        geometry = geometry or NEURO_GEOMETRY
        generator = ensure_rng(rng)
        neurons: list[PlacedNeuron] = []
        attempts = 0
        while len(neurons) < count and attempts < max_attempts * max(count, 1):
            attempts += 1
            diameter = float(generator.uniform(lo, hi))
            x = float(generator.uniform(0.0, geometry.width))
            y = float(generator.uniform(0.0, geometry.height))
            too_close = False
            for other in neurons:
                min_gap = min_separation_factor * 0.5 * (diameter + other.diameter)
                if math.hypot(x - other.x, y - other.y) < min_gap:
                    too_close = True
                    break
            if too_close:
                continue
            junction = CellChipJunction(cell_diameter=diameter)
            neurons.append(
                PlacedNeuron(index=len(neurons), x=x, y=y, diameter=diameter, junction=junction)
            )
        if len(neurons) < count:
            raise RuntimeError(
                f"could not place {count} neurons (placed {len(neurons)}); lower the density"
            )
        return cls(geometry=geometry, neurons=neurons)

    # ------------------------------------------------------------------
    def pixels_for_neuron(self, neuron: PlacedNeuron) -> list[tuple[int, int]]:
        return self.geometry.pixels_under_disk(neuron.x, neuron.y, neuron.radius)

    def coverage_fraction(self) -> float:
        """Fraction of neurons with at least one pixel under the soma —
        the paper's 'each cell is monitored' claim."""
        if not self.neurons:
            raise ValueError("empty culture")
        covered = sum(1 for n in self.neurons if self.pixels_for_neuron(n))
        return covered / len(self.neurons)

    def pixels_per_neuron(self) -> np.ndarray:
        return np.asarray([len(self.pixels_for_neuron(n)) for n in self.neurons])

    def occupancy_image(self) -> np.ndarray:
        """Neuron-count per pixel (for report rendering)."""
        image = np.zeros((self.geometry.rows, self.geometry.cols), dtype=int)
        for neuron in self.neurons:
            for row, col in self.pixels_for_neuron(neuron):
                image[row, col] += 1
        return image


def coverage_vs_pitch(
    pitches: list[float],
    cell_count: int = 200,
    diameter_range: tuple[float, float] = (10 * um, 100 * um),
    rng: RngLike = None,
) -> list[tuple[float, float, float]]:
    """The T2 experiment: (pitch, coverage fraction, mean pixels/cell).

    The same physical cells are re-evaluated on grids of different
    pitch, so the comparison is paired.
    """
    generator = ensure_rng(rng)
    base = Culture.random(cell_count, ArrayGeometry(128, 128, 7.8 * um), diameter_range, generator)
    results = []
    for pitch in pitches:
        if pitch <= 0:
            raise ValueError("pitch must be positive")
        rows = max(1, int(round(base.geometry.height / pitch)))
        cols = max(1, int(round(base.geometry.width / pitch)))
        geometry = ArrayGeometry(rows, cols, pitch)
        culture = Culture(geometry=geometry, neurons=base.neurons)
        results.append(
            (pitch, culture.coverage_fraction(), float(np.mean(culture.pixels_per_neuron())))
        )
    return results
