"""Cell-chip junction (Fig. 5): the point-contact model.

"When neurons within an electrolyte are brought in intimate contact with
a planar surface, a cleft of order of 60 nm between cell membrane and
surface is obtained.  Ion currents flowing through the cleft lead to a
potential drop due to the resistance of the cleft, which can be
capacitively probed ..."

The standard point-contact description: the junction membrane (the
attached patch of the cell) injects its capacitive + ionic current into
the cleft; the cleft's sheet resistance converts it into the junction
voltage V_J that the pixel electrode senses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.signals import Trace
from ..core.units import nm, um
from .action_potential import HHResult

# Physiological saline resistivity.
ELECTROLYTE_RESISTIVITY = 0.7  # ohm * m


@dataclass(frozen=True)
class CellChipJunction:
    """Geometry and electrical model of one neuron's contact.

    Parameters
    ----------
    cell_diameter:
        Soma diameter (paper: 10-100 um).
    cleft_height:
        Electrolyte gap between membrane and chip (paper: ~60 nm).
    attachment_fraction:
        Fraction of the membrane area facing the chip (junction
        membrane / total membrane).
    resistivity:
        Electrolyte resistivity.
    ion_channel_factor:
        Ion-channel density of the junction membrane relative to the
        free membrane.  In a point neuron the capacitive and ionic
        currents sum to (almost) zero; junction signals exist because
        the attached membrane's channel density differs from the
        average (channel accumulation at the adhesion zone).  Values of
        1.5-3 reproduce the measured "B-type" responses.
    """

    cell_diameter: float = 20 * um
    cleft_height: float = 60 * nm
    attachment_fraction: float = 0.3
    resistivity: float = ELECTROLYTE_RESISTIVITY
    ion_channel_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.cell_diameter <= 0 or self.cleft_height <= 0:
            raise ValueError("geometry must be positive")
        if not 0.0 < self.attachment_fraction <= 1.0:
            raise ValueError("attachment fraction must lie in (0, 1]")
        if self.resistivity <= 0:
            raise ValueError("resistivity must be positive")
        if self.ion_channel_factor < 0:
            raise ValueError("ion channel factor must be non-negative")

    # ------------------------------------------------------------------
    @property
    def junction_radius(self) -> float:
        """Radius of the attached disk."""
        return 0.5 * self.cell_diameter * math.sqrt(self.attachment_fraction)

    @property
    def junction_area(self) -> float:
        return math.pi * self.junction_radius**2

    @property
    def sheet_resistance(self) -> float:
        """Cleft sheet resistance rho/h, ohm/square."""
        return self.resistivity / self.cleft_height

    @property
    def seal_resistance(self) -> float:
        """Effective spreading resistance of the cleft disk.

        For uniform current injection over a disk draining at the rim,
        the mean potential corresponds to R = r_sheet / (8 pi).
        """
        return self.sheet_resistance / (8.0 * math.pi)

    # ------------------------------------------------------------------
    def junction_voltage(self, hh: HHResult) -> Trace:
        """Cleft voltage transient for an HH trajectory.

        V_J(t) = R_seal * A_J * (j_cap(t) + mu * j_ion(t)) — junction-
        membrane current dropped across the seal, with the ionic term
        scaled by the junction channel density ``ion_channel_factor``.
        With mu = 1 the terms cancel almost exactly (point-neuron charge
        balance) and only the stimulus residue remains.
        """
        density = (
            hh.capacitive_current_density
            + hh.ionic_current_density * self.ion_channel_factor
        )
        current = density * self.junction_area
        vj = current * self.seal_resistance
        vj.label = "V_junction"
        return vj

    def junction_voltage_from_template(self, membrane_v: Trace, c_m_f_per_m2: float = 0.01) -> Trace:
        """Fast path: capacitive coupling only, V_J = R * A * C dVm/dt.

        Used with :func:`template_action_potential` for array-scale
        simulations (the ionic component mainly sharpens the waveform).
        """
        dvdt = membrane_v.derivative()
        current = dvdt * (c_m_f_per_m2 * self.junction_area)
        vj = current * self.seal_resistance
        vj.label = "V_junction (template)"
        return vj

    def peak_amplitude_estimate(self, dv_peak: float = 0.1, rise_time_s: float = 0.3e-3) -> float:
        """Order-of-magnitude V_J peak: R * A * C * (dV/dt)_peak."""
        if rise_time_s <= 0:
            raise ValueError("rise time must be positive")
        c_m = 0.01  # F/m^2
        return self.seal_resistance * self.junction_area * c_m * dv_peak / rise_time_s

    def with_cleft(self, cleft_height: float) -> "CellChipJunction":
        """Copy with a different cleft height (parameter sweeps)."""
        return CellChipJunction(
            cell_diameter=self.cell_diameter,
            cleft_height=cleft_height,
            attachment_fraction=self.attachment_fraction,
            resistivity=self.resistivity,
        )
