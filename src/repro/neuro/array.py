"""Vectorised 128x128 sensor-array model.

16384 pixels as numpy parameter planes instead of 16384 objects: Pelgrom
threshold/beta mismatch, per-pixel M2 current error, storage-node
imperfections — the full :class:`~repro.neuro.sensor_pixel.NeuralSensorPixel`
physics, evaluated array-wide.  This is what makes whole-chip recording
and the calibration Monte Carlo (Fig. 6 benchmark) tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.noise import kt_over_c_noise
from ..core.process import ProcessSpec
from ..core.rng import RngLike, ensure_rng
from ..core.signals import Trace
from ..devices.mosfet import Mosfet
from ..devices.switches import MosSwitch
from .culture import ArrayGeometry, Culture, NEURO_GEOMETRY
from .sensor_pixel import (
    NeuralPixelDesign,
    ekv_ids_array,
    ekv_vgs_for_current_array,
)


@dataclass
class RecordedMovie:
    """Frames of electrode-referred pixel signals.

    ``frames`` has shape (n_frames, rows, cols); values are volts at the
    sensor electrode (divide by nothing — the chain budget is applied by
    the chip model).  ``frame_rate_hz`` fixes the time axis.
    """

    frames: np.ndarray
    frame_rate_hz: float

    def __post_init__(self) -> None:
        if self.frames.ndim != 3:
            raise ValueError("frames must be (n_frames, rows, cols)")
        if self.frame_rate_hz <= 0:
            raise ValueError("frame rate must be positive")

    @property
    def n_frames(self) -> int:
        return self.frames.shape[0]

    @property
    def duration_s(self) -> float:
        return self.n_frames / self.frame_rate_hz

    def pixel_trace(self, row: int, col: int) -> Trace:
        """One pixel's sampled waveform across frames."""
        if not (0 <= row < self.frames.shape[1] and 0 <= col < self.frames.shape[2]):
            raise IndexError(f"pixel ({row}, {col}) outside movie")
        return Trace(
            self.frames[:, row, col].copy(),
            dt=1.0 / self.frame_rate_hz,
            label=f"pixel ({row},{col})",
        )

    def peak_frame(self) -> int:
        """Index of the frame with the largest absolute sample."""
        flat = np.max(np.abs(self.frames.reshape(self.n_frames, -1)), axis=1)
        return int(np.argmax(flat))


class NeuralArrayModel:
    """Parameter-plane model of the sensor matrix.

    Parameters
    ----------
    geometry:
        Grid dimensions and pitch.
    design:
        Shared pixel design values.
    rng:
        Seeds all mismatch planes.
    """

    def __init__(
        self,
        geometry: ArrayGeometry | None = None,
        design: NeuralPixelDesign | None = None,
        rng: RngLike = None,
    ) -> None:
        self.geometry = geometry or NEURO_GEOMETRY
        self.design = design or NeuralPixelDesign()
        generator = ensure_rng(rng)
        rows, cols = self.geometry.rows, self.geometry.cols
        process = self.design.process
        sigma_vth = process.sigma_vth(self.design.m1_width, self.design.m1_length)
        sigma_beta = process.sigma_beta(self.design.m1_width, self.design.m1_length)
        beta_nominal = process.mu_n_cox * self.design.m1_width / self.design.m1_length
        self.vth = process.vth_n + generator.normal(0.0, sigma_vth, size=(rows, cols))
        self.beta = beta_nominal * (1.0 + generator.normal(0.0, sigma_beta, size=(rows, cols)))
        # M2 current plane: beta + threshold mismatch of the source.
        m2_sigma = process.sigma_beta(2 * self.design.m1_width, self.design.m1_length)
        m2_vth_sigma = process.sigma_vth(2 * self.design.m1_width, self.design.m1_length)
        self.i_m2 = self.design.calibration_current * (
            1.0 + generator.normal(0.0, m2_sigma, size=(rows, cols))
        ) * (1.0 - 3.0 * generator.normal(0.0, m2_vth_sigma, size=(rows, cols)))
        self._ktc_draws = generator.normal(0.0, 1.0, size=(rows, cols))
        self._injection_draws = generator.normal(0.0, 1.0, size=(rows, cols))
        self._switch = MosSwitch(self.design.s1_width, self.design.s1_length, process)
        self.stored_vgs: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def nominal_gate_voltage(self) -> float:
        """The single gate voltage an uncalibrated design would broadcast."""
        nominal = Mosfet(
            self.design.m1_width, self.design.m1_length, "n", self.design.process
        )
        return nominal.vgs_for_current(self.design.calibration_current)

    def calibrate(self, include_imperfections: bool = True) -> np.ndarray:
        """Array-parallel calibration cycle; returns the stored plane."""
        stored = ekv_vgs_for_current_array(
            self.i_m2, self.vth, self.beta, self.design.process
        )
        if include_imperfections:
            node_c = self.design.storage_capacitance
            v_typical = float(np.mean(stored))
            gross = self._switch.injection_step(v_typical, node_c) + self._switch.clock_feedthrough(node_c)
            stored = stored + gross * (1.0 - self.design.dummy_compensation)
            stored = stored + abs(gross) * self.design.injection_residual_sigma * self._injection_draws
            stored = stored + kt_over_c_noise(node_c) * self._ktc_draws
        self.stored_vgs = stored
        return stored

    def droop(self, hold_time_s: float) -> None:
        if self.stored_vgs is None:
            raise RuntimeError("array has not been calibrated")
        if hold_time_s < 0:
            raise ValueError("hold time must be non-negative")
        rate = self._switch.droop_rate(self.design.storage_capacitance)
        self.stored_vgs = self.stored_vgs - rate * hold_time_s

    # ------------------------------------------------------------------
    # Currents
    # ------------------------------------------------------------------
    def pixel_currents(self, sensor_voltages: np.ndarray | float = 0.0) -> np.ndarray:
        """M1 current plane for a plane (or scalar) of cleft voltages."""
        if self.stored_vgs is None:
            raise RuntimeError("array has not been calibrated")
        vgs = self.stored_vgs + self.design.coupling_factor * np.asarray(sensor_voltages)
        return ekv_ids_array(vgs, self.vth, self.beta, self.design.process)

    def uncalibrated_currents(self) -> np.ndarray:
        """Current plane when every gate sits at the nominal voltage."""
        v_nominal = self.nominal_gate_voltage()
        return ekv_ids_array(
            np.full_like(self.vth, v_nominal), self.vth, self.beta, self.design.process
        )

    def offset_currents(self) -> np.ndarray:
        """Residual I(M1) - I(M2) plane after calibration."""
        return self.pixel_currents(0.0) - self.i_m2

    def uncalibrated_offset_currents(self) -> np.ndarray:
        return self.uncalibrated_currents() - self.i_m2

    def transconductance_plane(self, delta_v: float = 1e-5) -> np.ndarray:
        """dI/dV_J plane (includes the coupling factor)."""
        if self.stored_vgs is None:
            raise RuntimeError("array has not been calibrated")
        up = self.pixel_currents(delta_v)
        down = self.pixel_currents(-delta_v)
        return (up - down) / (2.0 * delta_v)

    def input_referred_offsets(self) -> np.ndarray:
        """Offset plane expressed in sensor-voltage units."""
        gm = self.transconductance_plane()
        return self.offset_currents() / gm

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        culture: Culture,
        junction_traces: dict[int, Trace],
        n_frames: int,
        frame_rate_hz: float = 2000.0,
        noise_rms_v: float = 0.0,
        rng: RngLike = None,
    ) -> RecordedMovie:
        """Sample the array at the full frame rate.

        ``junction_traces`` maps neuron index -> V_J(t); each covered
        pixel samples its neuron's trace at the frame instants (the
        sub-frame mux offsets are < 0.5 us and negligible against ms-
        scale action potentials, but are applied anyway for fidelity).
        Values are electrode-referred volts; per-sample noise models the
        chain's input-referred floor.
        """
        if n_frames <= 0:
            raise ValueError("need at least one frame")
        if frame_rate_hz <= 0:
            raise ValueError("frame rate must be positive")
        if noise_rms_v < 0:
            raise ValueError("noise must be non-negative")
        generator = ensure_rng(rng)
        rows, cols = self.geometry.rows, self.geometry.cols
        frames = np.zeros((n_frames, rows, cols))
        frame_times = np.arange(n_frames) / frame_rate_hz
        row_time = 1.0 / (frame_rate_hz * rows)
        for neuron in culture.neurons:
            if neuron.index not in junction_traces:
                continue
            vj = junction_traces[neuron.index]
            covered = culture.pixels_for_neuron(neuron)
            for row, col in covered:
                sample_offset = row * row_time
                sample_times = frame_times + sample_offset
                frames[:, row, col] += np.interp(
                    sample_times, vj.times, vj.samples, left=0.0, right=0.0
                )
        if noise_rms_v > 0:
            frames += generator.normal(0.0, noise_rms_v, size=frames.shape)
        return RecordedMovie(frames=frames, frame_rate_hz=frame_rate_hz)
