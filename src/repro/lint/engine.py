"""The lint engine: files -> parsed modules -> rules -> sorted findings.

Everything downstream of this module (CLI, CI gate, baselines, the
self-clean test) depends on one property: **the same tree produces the
same report, byte for byte**.  Files are walked in sorted order,
findings sort totally, rule registries iterate by id — the linter obeys
the determinism discipline it enforces.

Exit semantics live in :mod:`repro.lint.cli`; this module only computes.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional, Sequence

# Importing the rule modules populates the registry as a side effect.
from . import rules_concurrency as _rules_concurrency  # noqa: F401
from . import rules_determinism as _rules_determinism  # noqa: F401
from . import rules_specs as _rules_specs  # noqa: F401
from .base import CATEGORIES, RULES, ModuleContext, Rule, all_rules
from .findings import Finding
from .pragmas import is_suppressed, line_suppressions

#: Rule id reserved for files the parser rejects — always active, never
#: selectable or suppressible (a file that does not parse cannot be
#: vouched for by any rule).
PARSE_ERROR_RULE = "P001"


def resolve_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Rule]:
    """The active rule set for a run.

    ``select``/``ignore`` entries are exact rule ids (``D102``) or
    category letters (``D``); unknown tokens raise ``ValueError`` so a
    typo in CI configuration fails loudly instead of silently linting
    with the wrong gate.
    """

    def expand(tokens: Iterable[str], option: str) -> frozenset[str]:
        chosen: set[str] = set()
        for token in tokens:
            token = token.strip()
            if not token:
                continue
            if token in RULES:
                chosen.add(token)
            elif token in CATEGORIES:
                chosen.update(rule_id for rule_id in RULES if rule_id.startswith(token))
            else:
                raise ValueError(
                    f"unknown rule or category {token!r} in {option}; "
                    f"known rules: {', '.join(sorted(RULES))}"
                )
        return frozenset(chosen)

    active = frozenset(RULES)
    if select is not None:
        active = expand(select, "--select")
    if ignore is not None:
        active = active - expand(ignore, "--ignore")
    return [rule for rule in all_rules() if rule.id in active]


def lint_source(
    text: str,
    path: str = "<memory>",
    *,
    rules: Optional[Sequence[Rule]] = None,
) -> list[Finding]:
    """Lint one module's source text. Findings come back sorted, with
    pragma suppressions already applied."""
    active = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(text)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=int(error.lineno or 1),
                col=int(error.offset or 1) - 1,
                rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {error.msg}",
            )
        ]
    context = ModuleContext(path=path, text=text, tree=tree)
    suppressions = line_suppressions(context.lines)
    findings = [
        finding
        for rule in active
        for finding in rule.check(context)
        if not is_suppressed(suppressions, finding.line, finding.rule)
    ]
    return sorted(findings)


def iter_python_files(paths: Sequence[str]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        elif root.is_file():
            candidates = [root]
        else:
            raise ValueError(f"no such file or directory: {entry}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                ordered.append(candidate)
    return ordered


def display_path(path: Path) -> str:
    """Stable, portable spelling for report lines: relative to the
    working directory when possible, POSIX separators always."""
    try:
        relative = path.resolve().relative_to(Path.cwd().resolve())
        return relative.as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Lint files and directory trees; the public front door.

    Returns all findings sorted by ``(path, line, col, rule)`` — the
    order every output format and baseline comparison relies on.
    """
    rules = resolve_rules(select, ignore)
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        text = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(text, path=display_path(file_path), rules=rules))
    return sorted(findings)


def apply_baseline(
    findings: Sequence[Finding], baseline: Iterable[dict[str, object]]
) -> list[Finding]:
    """Drop findings recorded in a baseline (a previous ``--json``
    payload): matching is by (path, rule, line)."""
    known = set()
    for entry in baseline:
        known.add((str(entry["path"]), str(entry["rule"]), int(entry["line"])))  # type: ignore[arg-type]
    return [finding for finding in findings if finding.baseline_key() not in known]
