"""In-source suppression pragmas.

Two spellings, both line-scoped comments:

``# repro: noqa RULE[,RULE...]``
    Suppress the named rules on this line (no rule list suppresses
    every rule — reserve that for generated code).

``# repro: allow-wallclock``
    The blessed spelling for timing-only call sites: equivalent to
    ``# repro: noqa D102`` but self-documenting — it says *why* the
    wall-clock read is acceptable (it measures, it never feeds
    results).

Pragmas are deliberately per-line, never per-file: a suppression should
sit next to the code it excuses, where review sees both together.
"""

from __future__ import annotations

import re
from typing import Optional

#: ``None`` in the map means "every rule suppressed on this line".
Suppressions = dict[int, Optional[frozenset[str]]]

_PRAGMA = re.compile(
    r"#\s*repro:\s*(?P<kind>noqa|allow-wallclock|allow-env)"
    r"(?:\s+(?P<rules>[A-Z]\d+(?:\s*,\s*[A-Z]\d+)*))?"
)

#: The self-documenting pragmas and the rule each one suppresses.
_NAMED_PRAGMAS = {
    "allow-wallclock": "D102",
    "allow-env": "D107",
}


def line_suppressions(lines: list[str]) -> Suppressions:
    """Map 1-based line numbers to their suppressed rule ids.

    A value of ``None`` suppresses all rules on that line (bare
    ``noqa``); a frozenset suppresses exactly those ids.  Lines without
    pragmas are absent from the map.
    """
    table: Suppressions = {}
    for lineno, text in enumerate(lines, start=1):
        if "#" not in text or "repro:" not in text:
            continue
        for match in _PRAGMA.finditer(text):
            kind = match.group("kind")
            if kind in _NAMED_PRAGMAS:
                ids: Optional[frozenset[str]] = frozenset({_NAMED_PRAGMAS[kind]})
            elif match.group("rules"):
                ids = frozenset(
                    token.strip() for token in match.group("rules").split(",")
                )
            else:
                ids = None  # bare noqa: everything
            previous = table.get(lineno, frozenset())
            if ids is None or previous is None:
                table[lineno] = None
            else:
                table[lineno] = previous | ids
    return table


def is_suppressed(table: Suppressions, line: int, rule: str) -> bool:
    """Whether ``rule`` is pragma-suppressed on ``line``."""
    entry = table.get(line, frozenset())
    return entry is None or rule in entry
