"""C-rules: lock discipline.

The JobManager and ResultCache serve concurrent clients; their
correctness rests on a simple protocol — state mutated under
``self._lock`` is *only* touched under ``self._lock``.  These rules
machine-check that protocol: C301 infers the guarded attribute set from
the with-blocks themselves and flags stray accesses; C302 bans bare
``.acquire()``/``.release()`` pairs that a mid-body exception can leave
unbalanced.

Convention: a helper that deliberately runs with the lock already held
is named with a ``_locked`` suffix (``_remember_locked``) — the name
carries the precondition, and C301 exempts it.  ``__init__`` is exempt
too: construction happens-before any concurrent access.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import ModuleContext, register_rule, self_attribute
from .findings import Finding

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "popleft",
        "appendleft",
        "clear",
        "update",
        "add",
        "discard",
        "setdefault",
        "move_to_end",
        "put",
        "put_nowait",
    }
)

_LOCK_CONSTRUCTORS = frozenset(
    {"threading.Lock", "threading.RLock", "multiprocessing.Lock", "multiprocessing.RLock"}
)

_LOCKED_MARK = "_repro_under_lock"


def _lock_attribute_names(ctx: ModuleContext, cls: ast.ClassDef) -> frozenset[str]:
    """Attributes of ``self`` assigned a Lock/RLock anywhere in the class."""
    names: set[str] = set()
    for node in ast.walk(cls):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        constructor = ctx.qualified(node.value.func)
        if constructor is None and isinstance(node.value.func, ast.Name):
            constructor = node.value.func.id
        if constructor not in _LOCK_CONSTRUCTORS and constructor not in ("Lock", "RLock"):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                names.add(target.attr)
    return frozenset(names)


def _is_self_lock(node: ast.expr, lock_names: frozenset[str]) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in lock_names
    )


def _mark_locked_regions(cls: ast.ClassDef, lock_names: frozenset[str]) -> None:
    """Tag every node inside a ``with self.<lock>:`` body."""
    for node in ast.walk(cls):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if not any(_is_self_lock(item.context_expr, lock_names) for item in node.items):
            continue
        for statement in node.body:
            for inner in ast.walk(statement):
                setattr(inner, _LOCKED_MARK, True)


def _guarded_attributes(cls: ast.ClassDef, lock_names: frozenset[str]) -> frozenset[str]:
    """Attributes written (assigned, augmented or mutated in place)
    inside any locked region of the class."""
    guarded: set[str] = set()
    for node in ast.walk(cls):
        if not getattr(node, _LOCKED_MARK, False):
            continue
        if isinstance(node, ast.Assign):
            for target in node.targets:
                name = self_attribute(target)
                if name is not None:
                    guarded.add(name)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            name = self_attribute(node.target)
            if name is not None:
                guarded.add(name)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                name = self_attribute(target)
                if name is not None:
                    guarded.add(name)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
        ):
            name = self_attribute(node.func.value)
            if name is not None:
                guarded.add(name)
    return frozenset(guarded - lock_names)


@register_rule(
    "C301",
    "lock-guarded attributes must stay under the lock",
    "an attribute mutated inside `with self._lock:` in one method is shared "
    "state; reading or writing it elsewhere without the lock races the "
    "mutation (torn LRU order, lost counter increments).  Helpers that run "
    "with the lock held are named `*_locked`; __init__ is exempt "
    "(construction happens-before sharing).",
)
def check_lock_discipline(ctx: ModuleContext) -> Iterator[Finding]:
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        lock_names = _lock_attribute_names(ctx, cls)
        if not lock_names:
            continue
        _mark_locked_regions(cls, lock_names)
        guarded = _guarded_attributes(cls, lock_names)
        if not guarded:
            continue
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            for node in ast.walk(method):
                if getattr(node, _LOCKED_MARK, False):
                    continue
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guarded
                ):
                    continue
                yield ctx.finding(
                    "C301",
                    node,
                    f"self.{node.attr} is mutated under self lock elsewhere in "
                    f"{cls.name} but accessed here without `with self._lock:` "
                    f"(lock-held helpers are named *_locked)",
                )


@register_rule(
    "C302",
    "no bare lock acquire()/release()",
    "a manual acquire/release pair leaks the lock on any exception between "
    "the two calls, deadlocking every later client; `with lock:` releases "
    "on all exits.",
)
def check_bare_acquire(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("acquire", "release")
        ):
            continue
        receiver = ctx.dotted(node.func.value)
        if receiver is None or "lock" not in receiver.lower():
            continue
        yield ctx.finding(
            "C302",
            node,
            f"bare {receiver}.{node.func.attr}() — use `with {receiver}:` so "
            f"the lock is released on every exit path",
        )
