"""D-rules: determinism.

The repo's core contract — same spec + seed => bit-identical results,
content keys over canonical JSON — dies quietly when code reaches for
ambient state: the global RNG, the wall clock, filesystem enumeration
order, hash randomisation, object addresses, environment variables.
Each rule here bans one such channel at the syntax level.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .base import ModuleContext, register_rule
from .findings import Finding

# ---------------------------------------------------------------------------
# D101 — global RNG
# ---------------------------------------------------------------------------
#: numpy.random names that are seedable plumbing, not global draws.
_NP_RANDOM_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@register_rule(
    "D101",
    "no global-RNG draws",
    "np.random.* module functions and the stdlib random module share hidden "
    "global state, so results depend on draw order across the whole process; "
    "all randomness must flow from a seeded numpy Generator (SeedTree).",
)
def check_global_rng(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        qualified = ctx.qualified(node)
        if qualified is None:
            continue
        parts = qualified.split(".")
        if (
            len(parts) == 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] not in _NP_RANDOM_OK
        ):
            yield ctx.finding(
                "D101",
                node,
                f"global numpy RNG `{qualified}` — draw from a seeded "
                f"Generator (SeedTree stream) instead",
            )
        elif len(parts) == 2 and parts[0] == "random":
            yield ctx.finding(
                "D101",
                node,
                f"stdlib global RNG `{qualified}` — draw from a seeded "
                f"numpy Generator (SeedTree stream) instead",
            )


# ---------------------------------------------------------------------------
# D102 — wall clock
# ---------------------------------------------------------------------------
_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_rule(
    "D102",
    "no wall-clock reads outside pragma-marked timing sites",
    "time.time/monotonic/perf_counter and datetime.now leak the clock into "
    "whatever consumes them; result-producing code must be clock-free.  "
    "Timing-only sites (wall_s bookkeeping, deadlines) carry "
    "`# repro: allow-wallclock` to assert the value never reaches results.",
)
def check_wallclock(ctx: ModuleContext) -> Iterator[Finding]:
    # References, not just calls: `field(default_factory=time.monotonic)`
    # reads the clock without a visible call expression.
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        qualified = ctx.qualified(node)
        if qualified in _WALLCLOCK:
            yield ctx.finding(
                "D102",
                node,
                f"wall-clock read `{qualified}` — results must not depend on "
                f"the clock; a timing-only site needs `# repro: allow-wallclock`",
            )


# ---------------------------------------------------------------------------
# D103 — filesystem enumeration order
# ---------------------------------------------------------------------------
_LISTING_FUNCTIONS = frozenset({"os.listdir", "os.scandir", "os.walk"})
_LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})
#: Builtins whose result does not depend on argument order.
_ORDER_FREE_CALLERS = frozenset(
    {"sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all"}
)


def _order_insensitive_context(ctx: ModuleContext, node: ast.AST) -> bool:
    """Whether ``node``'s value is consumed in a way that erases
    iteration order (sorted(), set(), a set comprehension, len(), ...)."""
    parent = ctx.parent(node)
    if (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in _ORDER_FREE_CALLERS
        and any(argument is node for argument in parent.args)
    ):
        return True
    if isinstance(parent, ast.comprehension) and parent.iter is node:
        comp = ctx.parent(parent)
        if isinstance(comp, ast.SetComp):
            return True
        if isinstance(comp, ast.GeneratorExp):
            return _order_insensitive_context(ctx, comp)
    if isinstance(parent, ast.Compare) and any(
        comparator is node for comparator in parent.comparators
    ):
        return True  # membership test
    return False


@register_rule(
    "D103",
    "no order-sensitive use of filesystem enumeration",
    "os.listdir/scandir/walk and Path.glob/iterdir return entries in "
    "filesystem order, which differs across machines and over time; wrap "
    "the listing in sorted() (or consume it order-free: set/len/membership) "
    "before it can feed manifests, keys or serialized output.",
)
def check_fs_order(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qualified = ctx.qualified(node.func)
        is_listing = qualified in _LISTING_FUNCTIONS or (
            isinstance(node.func, ast.Attribute) and node.func.attr in _LISTING_METHODS
        )
        if not is_listing:
            continue
        if _order_insensitive_context(ctx, node):
            continue
        spelled = qualified or ctx.dotted(node.func) or getattr(node.func, "attr", "listing")
        yield ctx.finding(
            "D103",
            node,
            f"filesystem enumeration `{spelled}` used order-sensitively — "
            f"wrap it in sorted() so results cannot depend on directory order",
        )


# ---------------------------------------------------------------------------
# D104 — set iteration order
# ---------------------------------------------------------------------------
def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)
    ):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


_SEQUENCING_CALLERS = frozenset({"list", "tuple", "enumerate"})


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _set_valued_names(scope: ast.AST) -> frozenset[str]:
    """Local names whose every assignment in ``scope`` is a set expression."""
    set_assigned: set[str] = set()
    otherwise: set[str] = set()
    for node in _scope_nodes(scope):
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets, value = [node.target], None  # loop target: unknown type
        if value is None and not targets:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                if value is not None and _is_set_expression(value):
                    set_assigned.add(target.id)
                else:
                    otherwise.add(target.id)
    return frozenset(set_assigned - otherwise)


def _order_sensitive_consumption(
    ctx: ModuleContext, node: ast.AST
) -> Optional[str]:
    """Describe how ``node`` (a set-valued expression or name) is consumed
    order-sensitively, or ``None`` when the use is order-free."""
    parent = ctx.parent(node)
    if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is node:
        return "iterated by a for loop"
    if isinstance(parent, ast.comprehension) and parent.iter is node:
        comp = ctx.parent(parent)
        if isinstance(comp, ast.SetComp):
            return None  # set -> set: order never materialises
        if isinstance(comp, ast.GeneratorExp) and _order_insensitive_context(ctx, comp):
            return None
        return "iterated by a comprehension"
    if isinstance(parent, ast.Call):
        if (
            isinstance(parent.func, ast.Name)
            and parent.func.id in _SEQUENCING_CALLERS
            and any(argument is node for argument in parent.args)
        ):
            return f"sequenced by {parent.func.id}()"
        if (
            isinstance(parent.func, ast.Attribute)
            and parent.func.attr == "join"
            and any(argument is node for argument in parent.args)
        ):
            return "joined into a string"
    return None


@register_rule(
    "D104",
    "no order-sensitive iteration over sets",
    "set iteration order depends on insertion history and per-process hash "
    "salting; a set that reaches a for loop, list()/tuple()/enumerate() or "
    "str.join leaks that order into results and serialized text.  Sort "
    "first: sorted(the_set).",
)
def check_set_order(ctx: ModuleContext) -> Iterator[Finding]:
    scopes: list[ast.AST] = [ctx.tree]
    scopes.extend(
        node
        for node in ast.walk(ctx.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    for scope in scopes:
        tracked = _set_valued_names(scope)
        for node in _scope_nodes(scope):
            is_set_valued = _is_set_expression(node) or (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in tracked
            )
            if not is_set_valued:
                continue
            how = _order_sensitive_consumption(ctx, node)
            if how is None:
                continue
            spelled = node.id if isinstance(node, ast.Name) else "set expression"
            yield ctx.finding(
                "D104",
                node,
                f"set `{spelled}` {how} — iteration order is "
                f"nondeterministic; use sorted(...) before consuming",
            )


# ---------------------------------------------------------------------------
# D105 — id()
# ---------------------------------------------------------------------------
@register_rule(
    "D105",
    "no id() in keys or ordering",
    "id() returns a memory address: unique only within one process lifetime "
    "and different on every run, so any key, hash input or sort order built "
    "on it is irreproducible by construction.",
)
def check_id_call(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
        ):
            yield ctx.finding(
                "D105",
                node,
                "builtin id() is an object address — never stable across "
                "runs; derive identity from content instead",
            )


# ---------------------------------------------------------------------------
# D106 — hash()
# ---------------------------------------------------------------------------
@register_rule(
    "D106",
    "no builtin hash() outside __hash__",
    "str/bytes hashing is salted per process (PYTHONHASHSEED), so hash() "
    "values must never be persisted, serialized or used to derive keys; "
    "content digests go through hashlib (see service/keys.py).  Delegating "
    "inside a __hash__ method is the one legitimate, in-process use.",
)
def check_hash_call(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
        ):
            continue
        function = ctx.enclosing_function(node)
        if function is not None and getattr(function, "name", "") == "__hash__":
            continue
        yield ctx.finding(
            "D106",
            node,
            "builtin hash() is salted per process — use hashlib digests "
            "(service.keys) for anything that outlives the process",
        )


# ---------------------------------------------------------------------------
# D108 — fault injectors must not construct RNGs
# ---------------------------------------------------------------------------
#: RNG-construction entry points (seedable plumbing D101 deliberately
#: allows) that fault-injection modules must still not reach for.
_RNG_CONSTRUCTORS = frozenset(
    {f"numpy.random.{name}" for name in _NP_RANDOM_OK}
    | {"random.Random", "random.SystemRandom"}
)


def _is_faults_module(path: str) -> bool:
    segments = path.replace("\\", "/").split("/")
    return "faults" in segments or segments[-1] == "faults.py"


@register_rule(
    "D108",
    "fault injectors draw only from named SeedTree streams",
    "a fault schedule must be a pure function of (spec, seed): fault-injection "
    "modules (any `faults` path segment) may consume a numpy Generator handed "
    "to them, but constructing one ad hoc (default_rng, SeedSequence, "
    "random.Random) detaches the schedule from the workload's named streams "
    "and from result provenance.",
)
def check_fault_injector_rng(ctx: ModuleContext) -> Iterator[Finding]:
    if not _is_faults_module(ctx.path):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qualified = ctx.qualified(node.func)
        if qualified in _RNG_CONSTRUCTORS:
            yield ctx.finding(
                "D108",
                node,
                f"RNG construction `{qualified}` inside a fault-injection "
                f"module — injectors must receive a Generator drawn from a "
                f"named SeedTree stream (the workload's 'faults' stream)",
            )


# ---------------------------------------------------------------------------
# D107 — environment reads
# ---------------------------------------------------------------------------
@register_rule(
    "D107",
    "no environment reads in library code",
    "os.environ/os.getenv make results depend on invisible machine state; "
    "configuration must arrive through specs and explicit arguments so the "
    "content key captures it.  A deliberate site carries "
    "`# repro: allow-env`.",
)
def check_env_read(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        qualified = ctx.qualified(node)
        if qualified in ("os.environ", "os.getenv", "os.environb"):
            yield ctx.finding(
                "D107",
                node,
                f"environment read `{qualified}` — config must flow through "
                f"specs/arguments so content keys capture it "
                f"(`# repro: allow-env` for deliberate sites)",
            )
