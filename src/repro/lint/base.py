"""Rule registry and per-module analysis context.

A rule is a pure function from a parsed module to findings — no
filesystem access, no configuration, no state between files.  Rules
register under stable ids (``D1xx`` determinism, ``S2xx`` specs,
``C3xx`` concurrency) so that suppression pragmas, ``--select`` /
``--ignore`` and baselines survive refactors of the linter itself.

:class:`ModuleContext` does the shared work once per file — parent
links, import alias resolution — so individual rules stay small AST
walks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from .findings import Finding

#: Rule categories in id order.  The letter is the id prefix.
CATEGORIES = {
    "D": "determinism",
    "S": "specs",
    "C": "concurrency",
}


class ModuleContext:
    """One parsed module plus the lookups every rule needs.

    Parent links are attached to the AST nodes themselves (attribute
    ``_repro_parent``) rather than kept in an address-keyed map: node
    addresses are not stable run to run, and the linter holds itself to
    the determinism rules it enforces.
    """

    def __init__(self, path: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.text = text
        self.tree = tree
        self.lines = text.splitlines()
        #: local name -> imported module ("np" -> "numpy").
        self.module_aliases: dict[str, str] = {}
        #: local name -> qualified origin ("pc" -> "time.perf_counter").
        self.from_imports: dict[str, str] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                setattr(child, "_repro_parent", parent)
            if isinstance(parent, ast.Import):
                for alias in parent.names:
                    if alias.asname is not None:
                        self.module_aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self.module_aliases[root] = root
            elif isinstance(parent, ast.ImportFrom) and parent.level == 0:
                module = parent.module or ""
                for alias in parent.names:
                    local = alias.asname or alias.name
                    self.from_imports[local] = f"{module}.{alias.name}"

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (``None`` for the module)."""
        found = getattr(node, "_repro_parent", None)
        return found if isinstance(found, ast.AST) else None

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The innermost function/method definition containing ``node``."""
        current = self.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parent(current)
        return None

    def qualified(self, node: ast.AST) -> Optional[str]:
        """Resolve a ``Name``/``Attribute`` chain through this module's
        imports to a fully qualified dotted name.

        ``np.random.normal`` (under ``import numpy as np``) resolves to
        ``"numpy.random.normal"``; ``perf_counter`` (under ``from time
        import perf_counter``) to ``"time.perf_counter"``.  Chains not
        rooted at an import resolve to ``None``.
        """
        attrs: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            attrs.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = current.id
        base = self.from_imports.get(root) or self.module_aliases.get(root)
        if base is None:
            return None
        return ".".join([base, *reversed(attrs)]) if attrs else base

    def dotted(self, node: ast.AST) -> Optional[str]:
        """The raw (unresolved) dotted spelling of a ``Name``/``Attribute``
        chain, e.g. ``"self._lock"`` — ``None`` for non-chain shapes."""
        attrs: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            attrs.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        return ".".join([current.id, *reversed(attrs)])

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """A finding anchored at ``node``'s location in this module."""
        return Finding(
            path=self.path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)),
            rule=rule,
            message=message,
        )


CheckFunction = Callable[[ModuleContext], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    id: str
    summary: str
    rationale: str
    check: CheckFunction

    @property
    def category(self) -> str:
        return CATEGORIES[self.id[0]]


#: All registered rules by id.  Populated by the ``rules_*`` modules at
#: import time; read through :func:`all_rules` for sorted access.
RULES: dict[str, Rule] = {}


def register_rule(rule_id: str, summary: str, rationale: str) -> Callable[[CheckFunction], CheckFunction]:
    """Decorator: register a check function under a stable rule id."""
    if rule_id[0] not in CATEGORIES:
        raise ValueError(f"rule id {rule_id!r} must start with one of {sorted(CATEGORIES)}")

    def decorate(check: CheckFunction) -> CheckFunction:
        if rule_id in RULES:
            raise ValueError(f"rule {rule_id!r} already registered")
        RULES[rule_id] = Rule(id=rule_id, summary=summary, rationale=rationale, check=check)
        return check

    return decorate


def all_rules() -> list[Rule]:
    """Every registered rule, id order."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def self_attribute(node: ast.AST) -> Optional[str]:
    """The first attribute off ``self`` in an access chain, descending
    through nested attributes and subscripts: ``self._jobs[k]`` ->
    ``"_jobs"``, ``self.stats.hits`` -> ``"stats"``."""
    current = node
    while True:
        if isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Attribute):
            if isinstance(current.value, ast.Name) and current.value.id == "self":
                return current.attr
            current = current.value
        else:
            return None
