"""``repro lint`` — the command-line face of the determinism linter.

Exit codes follow the convention CI scripts expect::

    0   clean (no findings after pragmas/select/baseline)
    1   findings reported
    2   usage error (unknown rule id, missing path, unreadable baseline)

Output is line-per-finding, sorted, stable; ``--json`` emits the same
findings as a machine-readable object whose layout doubles as the
``--baseline`` file format.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, NoReturn, Optional, Sequence

from .engine import all_rules, apply_baseline, lint_paths
from .findings import Finding


def _usage_error(message: str) -> NoReturn:
    # SystemExit(str) would exit 1 — indistinguishable from "findings
    # reported".  Usage errors get their own code so CI can tell a
    # broken invocation from a failing tree.
    print(f"repro lint: {message}", file=sys.stderr)
    raise SystemExit(2)


def _split_rule_list(value: Optional[str]) -> Optional[list[str]]:
    if value is None:
        return None
    return [token.strip() for token in value.split(",") if token.strip()]


def _load_baseline(path: str) -> list[dict[str, Any]]:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        _usage_error(f"no such baseline file: {path}")
    except (OSError, json.JSONDecodeError) as error:
        _usage_error(f"cannot read baseline {path}: {error}")
    entries = payload.get("findings") if isinstance(payload, dict) else payload
    if not isinstance(entries, list):
        _usage_error(
            f"baseline {path} must be a findings list or a "
            f"--json payload with a 'findings' key"
        )
    return entries


def _render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
        "rules": [rule.id for rule in all_rules()],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _render_rule_table() -> str:
    rules = all_rules()
    width = max(len(rule.id) for rule in rules)
    cat_width = max(len(rule.category) for rule in rules)
    lines = [
        f"{rule.id:<{width}}  {rule.category:<{cat_width}}  {rule.summary}"
        for rule in rules
    ]
    lines.append("")
    lines.append(
        "suppress per line with `# repro: noqa RULE[,RULE...]`; wall-clock "
        "timing sites use `# repro: allow-wallclock`"
    )
    return "\n".join(lines)


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(_render_rule_table())
        return 0
    paths = list(args.paths)
    if not paths:
        paths = ["src"] if Path("src").is_dir() else ["."]
    try:
        findings = lint_paths(
            paths,
            select=_split_rule_list(args.select),
            ignore=_split_rule_list(args.ignore),
        )
    except (ValueError, OSError) as error:
        _usage_error(str(error))
    if args.baseline:
        findings = apply_baseline(findings, _load_baseline(args.baseline))
    if args.json:
        print(_render_json(findings))
    else:
        for finding in findings:
            print(finding.render())
        print(f"{len(findings)} finding{'s' if len(findings) != 1 else ''}")
    return 1 if findings else 0


def add_lint_parser(subparsers: "argparse._SubParsersAction[argparse.ArgumentParser]") -> None:
    """Attach the ``lint`` subcommand to the ``repro`` CLI."""
    parser = subparsers.add_parser(
        "lint",
        help="statically check the determinism/purity invariants",
        description=(
            "AST-based linter for the repo's reproduction contract: no global "
            "RNG, no wall-clock in result paths, stable iteration orders, "
            "frozen serializable specs, lock discipline.  Exit 0 clean, 1 "
            "findings, 2 usage error."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ if present, else .)",
    )
    parser.add_argument("--json", action="store_true", help="emit findings as JSON")
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids or category letters to run (e.g. D102,C)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids or category letters to skip",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in FILE (a previous --json payload)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (id, category, summary) and exit",
    )
    parser.set_defaults(func=cmd_lint)
