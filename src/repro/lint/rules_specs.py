"""S-rules: registered spec hygiene.

Everything registered through ``register_experiment`` /
``register_analysis`` becomes sweepable, serializable and content-
addressable: campaign axes replace its fields, ``to_dict()`` payloads
feed canonical JSON, and ``spec_hash()`` keys the result cache.  These
rules make the preconditions of that machinery — frozen, plain-typed,
hash-reachable dataclasses — mechanical instead of reviewed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .base import ModuleContext, register_rule
from .findings import Finding

#: Decorator names that put a class into a spec registry.
_REGISTER_DECORATORS = frozenset({"register_experiment", "register_analysis"})

#: Base classes known to provide spec_hash()/content_hash machinery.
_HASH_PROVIDING_BASES = frozenset({"ExperimentSpec", "AnalysisSpec"})

_HASH_METHODS = frozenset({"spec_hash", "content_hash"})


def _decorator_name(node: ast.expr) -> Optional[str]:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _registered_classes(ctx: ModuleContext) -> Iterator[ast.ClassDef]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and any(
            _decorator_name(decorator) in _REGISTER_DECORATORS
            for decorator in node.decorator_list
        ):
            yield node


def _dataclass_decorator(cls: ast.ClassDef) -> Optional[ast.expr]:
    for decorator in cls.decorator_list:
        if _decorator_name(decorator) == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False  # bare @dataclass: frozen defaults to False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is True
    return False


# ---------------------------------------------------------------------------
# S201 — frozen dataclass
# ---------------------------------------------------------------------------
@register_rule(
    "S201",
    "registered specs must be @dataclass(frozen=True)",
    "a spec that can mutate after construction can drift between the moment "
    "its content hash is taken and the moment it runs — the cache would then "
    "address the wrong computation.  Freezing makes the hash a property of "
    "the object, not of a moment.",
)
def check_frozen_spec(ctx: ModuleContext) -> Iterator[Finding]:
    for cls in _registered_classes(ctx):
        decorator = _dataclass_decorator(cls)
        if decorator is None:
            yield ctx.finding(
                "S201",
                cls,
                f"registered spec {cls.name} is not a dataclass — specs must "
                f"be @dataclass(frozen=True)",
            )
        elif not _is_frozen(decorator):
            yield ctx.finding(
                "S201",
                cls,
                f"registered spec {cls.name} is a mutable dataclass — "
                f"declare it @dataclass(frozen=True)",
            )


# ---------------------------------------------------------------------------
# S202 — serializable field types
# ---------------------------------------------------------------------------
_ATOM_NAMES = frozenset({"int", "float", "str", "bool"})
_GENERIC_NAMES = frozenset({"tuple", "Tuple", "Optional", "Union", "Literal"})


def _annotation_allowed(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        if node.value is None or node.value is Ellipsis:
            return True
        if isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                return False
            return _annotation_allowed(parsed.body)
        # Literal[...] members: plain scalars are serializable.
        return isinstance(node.value, (int, float, str, bool))
    if isinstance(node, ast.Name):
        return node.id in _ATOM_NAMES or node.id in _GENERIC_NAMES or node.id == "None"
    if isinstance(node, ast.Attribute):  # typing.Optional, t.Tuple, ...
        return node.attr in _GENERIC_NAMES
    if isinstance(node, ast.Subscript):
        if not _annotation_allowed(node.value):
            return False
        inner = node.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        head = node.value
        head_name = (
            head.id
            if isinstance(head, ast.Name)
            else head.attr
            if isinstance(head, ast.Attribute)
            else None
        )
        if head_name == "Literal":
            # Literal members are *values*, not type references — a string
            # here is the literal "fast", never a forward reference.
            return all(
                isinstance(element, ast.Constant)
                and (
                    element.value is None
                    or isinstance(element.value, (int, float, str, bool))
                )
                for element in elements
            )
        return all(_annotation_allowed(element) for element in elements)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_allowed(node.left) and _annotation_allowed(node.right)
    return False


def _is_classvar(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    name = (
        annotation.id
        if isinstance(annotation, ast.Name)
        else annotation.attr
        if isinstance(annotation, ast.Attribute)
        else None
    )
    return name == "ClassVar"


@register_rule(
    "S202",
    "registered spec fields must have serializable annotations",
    "spec fields travel through to_dict() -> canonical JSON -> spec_hash(); "
    "a field typed list/dict/set/ndarray/Any either fails to serialize, "
    "serializes unstably, or is mutable inside a frozen shell.  Allowed "
    "atoms: int/float/str/bool/None, tuples thereof, Optional/Union/Literal "
    "combinations.",
)
def check_spec_field_types(ctx: ModuleContext) -> Iterator[Finding]:
    for cls in _registered_classes(ctx):
        for statement in cls.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            if not isinstance(statement.target, ast.Name):
                continue
            if _is_classvar(statement.annotation):
                continue
            if _annotation_allowed(statement.annotation):
                continue
            spelled = ast.unparse(statement.annotation)
            yield ctx.finding(
                "S202",
                statement,
                f"spec field {cls.name}.{statement.target.id}: {spelled} is "
                f"not canonically serializable — use "
                f"int/float/str/bool/None/tuple compositions",
            )


# ---------------------------------------------------------------------------
# S203 — content hash reachable
# ---------------------------------------------------------------------------
def _provides_hash(
    cls: ast.ClassDef, local_classes: dict[str, ast.ClassDef], seen: frozenset[str]
) -> bool:
    if any(
        isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        and statement.name in _HASH_METHODS
        for statement in cls.body
    ):
        return True
    for base in cls.bases:
        name = (
            base.id
            if isinstance(base, ast.Name)
            else base.attr
            if isinstance(base, ast.Attribute)
            else None
        )
        if name is None or name in seen:
            continue
        if name in _HASH_PROVIDING_BASES:
            return True
        local = local_classes.get(name)
        if local is not None and _provides_hash(local, local_classes, seen | {name}):
            return True
    return False


@register_rule(
    "S203",
    "registered specs must reach spec_hash()/content_hash()",
    "the campaign cache and the SeedTree both address specs by their content "
    "hash; a registered class outside the ExperimentSpec/AnalysisSpec "
    "hierarchy (and without its own spec_hash/content_hash) cannot be "
    "content-addressed and silently falls out of the purity contract.",
)
def check_spec_hash_reachable(ctx: ModuleContext) -> Iterator[Finding]:
    local_classes = {
        node.name: node
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.ClassDef)
    }
    for cls in _registered_classes(ctx):
        if not _provides_hash(cls, local_classes, frozenset({cls.name})):
            yield ctx.finding(
                "S203",
                cls,
                f"registered spec {cls.name} has no reachable "
                f"spec_hash()/content_hash() — derive from "
                f"ExperimentSpec/AnalysisSpec or define one",
            )


# ---------------------------------------------------------------------------
# S204 — immutable defaults
# ---------------------------------------------------------------------------
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set"})


def _mutable_default(value: ast.expr) -> Optional[str]:
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in _MUTABLE_CONSTRUCTORS:
            return value.func.id
        if value.func.id == "field":
            for keyword in value.keywords:
                if (
                    keyword.arg == "default_factory"
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id in _MUTABLE_CONSTRUCTORS
                ):
                    return keyword.value.id
                if keyword.arg == "default" and keyword.value is not None:
                    nested = _mutable_default(keyword.value)
                    if nested is not None:
                        return nested
    return None


@register_rule(
    "S204",
    "registered spec fields must not default to mutables",
    "a list/dict/set default (literal or default_factory) hides shared "
    "mutable state inside a frozen spec: two points of a sweep could alias "
    "one object, and to_dict() payloads stop being value-determined.  Use "
    "tuples.",
)
def check_spec_mutable_defaults(ctx: ModuleContext) -> Iterator[Finding]:
    for cls in _registered_classes(ctx):
        for statement in cls.body:
            if not (
                isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and statement.value is not None
            ):
                continue
            kind = _mutable_default(statement.value)
            if kind is not None:
                yield ctx.finding(
                    "S204",
                    statement,
                    f"spec field {cls.name}.{statement.target.id} defaults to "
                    f"a mutable {kind} — use a tuple (frozen specs must hold "
                    f"immutable values)",
                )
