"""Lint findings — the one value type every layer of the linter trades in.

A finding is frozen and totally ordered so that the linter's output is
*stable*: the same tree always renders the same report, line for line,
whatever order files were walked or rules ran in.  That matters for the
same reason the rest of the repo sorts its JSON keys — diffs, baselines
and CI logs must be reproducible artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is ``(path, line, col, rule, message)`` — the render order
    of every report format.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> dict[str, object]:
        """JSON-safe payload (``repro lint --json`` and baseline files)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        """The human-readable report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def baseline_key(self) -> tuple[str, str, int]:
        """Identity used by ``--baseline`` suppression: a finding is
        "known" if the same rule fired at the same path and line."""
        return (self.path, self.rule, self.line)
