"""repro.lint — AST-based determinism & purity linter.

Machine-enforces the invariants the rest of the repo hand-enforces:
same spec + seed => bit-identical results, content keys over canonical
JSON, frozen sweepable specs, lock discipline in the service layer.
Thirteen rules in three families:

* **D-rules** (determinism): no global RNG, no wall-clock in result
  paths, no order-sensitive filesystem/set iteration, no ``id()``,
  no salted ``hash()``, no environment reads.
* **S-rules** (specs): everything registered via ``register_experiment``
  / ``register_analysis`` must be a frozen dataclass with canonically
  serializable fields, immutable defaults and a reachable
  ``spec_hash``/``content_hash``.
* **C-rules** (concurrency): attributes mutated under ``self._lock``
  stay under it; no bare ``acquire()``/``release()``.

Run ``repro lint [paths]`` (exit 0 clean / 1 findings / 2 usage error),
``repro lint --list-rules`` for the table, and suppress per line with
``# repro: noqa RULE`` or ``# repro: allow-wallclock``.  Stdlib-only —
``ast`` all the way down — so the gate costs nothing to install.
"""

from __future__ import annotations

from .base import CATEGORIES, RULES, ModuleContext, Rule, all_rules
from .engine import (
    PARSE_ERROR_RULE,
    apply_baseline,
    lint_paths,
    lint_source,
    resolve_rules,
)
from .findings import Finding

__all__ = [
    "CATEGORIES",
    "Finding",
    "ModuleContext",
    "PARSE_ERROR_RULE",
    "RULES",
    "Rule",
    "all_rules",
    "apply_baseline",
    "lint_paths",
    "lint_source",
    "resolve_rules",
]
