"""Redox species definitions.

The Infineon redox-cycling chips ([12, 13] in the paper) detect
p-aminophenol (pAP), generated from p-aminophenyl phosphate (pAPP) by an
alkaline-phosphatase label bound to hybridized targets.  pAP is oxidised
to quinone imine (QI) at the generator electrode and re-reduced at the
collector — each molecule contributes many electrons as it shuttles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RedoxSpecies:
    """An electrochemically active molecule.

    Parameters
    ----------
    name:
        Human-readable identifier.
    diffusion_coefficient:
        D in m^2/s (aqueous, room temperature).
    electrons_transferred:
        n, electrons per redox event.
    standard_potential_v:
        E0 versus the on-chip reference electrode.
    """

    name: str
    diffusion_coefficient: float
    electrons_transferred: int
    standard_potential_v: float

    def __post_init__(self) -> None:
        if self.diffusion_coefficient <= 0:
            raise ValueError("diffusion coefficient must be positive")
        if self.electrons_transferred < 1:
            raise ValueError("need at least one electron per event")


# p-aminophenol / quinone-imine couple: D ~ 6e-10 m^2/s, n = 2,
# E0 ~ +0.1 V vs Ag/AgCl.
P_AMINOPHENOL = RedoxSpecies(
    name="p-aminophenol",
    diffusion_coefficient=6.0e-10,
    electrons_transferred=2,
    standard_potential_v=0.10,
)

# Ferrocene derivatives are a common alternative label chemistry.
FERROCENE = RedoxSpecies(
    name="ferrocene-methanol",
    diffusion_coefficient=7.8e-10,
    electrons_transferred=1,
    standard_potential_v=0.22,
)


@dataclass(frozen=True)
class EnzymeLabel:
    """An enzyme label attached to each hybridized target molecule.

    Alkaline phosphatase (the chemistry of [6, 13]) converts pAPP into
    the redox-active pAP with Michaelis-Menten kinetics.
    """

    name: str
    k_cat: float  # substrate conversions per second per enzyme
    k_m: float  # Michaelis constant, mol/m^3
    product: RedoxSpecies

    def __post_init__(self) -> None:
        if self.k_cat <= 0 or self.k_m <= 0:
            raise ValueError("enzyme kinetic constants must be positive")

    def turnover_rate(self, substrate_concentration: float) -> float:
        """Per-enzyme product generation rate, 1/s."""
        if substrate_concentration < 0:
            raise ValueError("substrate concentration must be non-negative")
        return self.k_cat * substrate_concentration / (self.k_m + substrate_concentration)


ALKALINE_PHOSPHATASE = EnzymeLabel(
    name="alkaline-phosphatase",
    k_cat=80.0,
    k_m=0.05,  # 50 uM in mol/m^3 units (1 mM = 1 mol/m^3)
    product=P_AMINOPHENOL,
)
