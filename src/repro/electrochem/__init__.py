"""Electrochemical substrate: species, electrodes, diffusion, redox cycling."""

from .diffusion import (
    DiffusionDomain,
    ramp_time_constant,
    surface_concentration_quasi_static,
)
from .electrode import DOUBLE_LAYER_F_PER_M2, InterdigitatedElectrode
from .enzyme import LabelledSurface
from .labelfree import ImpedanceSensor, MassResonator, compare_detection_limits
from .potentiostat import Potentiostat
from .redox_cycling import RedoxCyclingSensor
from .species import (
    ALKALINE_PHOSPHATASE,
    FERROCENE,
    P_AMINOPHENOL,
    EnzymeLabel,
    RedoxSpecies,
)

__all__ = [
    "ALKALINE_PHOSPHATASE",
    "DOUBLE_LAYER_F_PER_M2",
    "DiffusionDomain",
    "EnzymeLabel",
    "FERROCENE",
    "ImpedanceSensor",
    "InterdigitatedElectrode",
    "LabelledSurface",
    "MassResonator",
    "compare_detection_limits",
    "P_AMINOPHENOL",
    "Potentiostat",
    "RedoxCyclingSensor",
    "RedoxSpecies",
    "ramp_time_constant",
    "surface_concentration_quasi_static",
]
