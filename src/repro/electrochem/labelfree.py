"""Label-free detection principles (Section 2, refs [7-11]).

"Alternative label-free principles are under development.  They focus
on the effect of impedance or mass changes at the sensors' surfaces
after hybridization."

Two behavioural models:

* :class:`ImpedanceSensor` — capacitance of the electrode/electrolyte
  interface drops as hybridized DNA displaces counter-ions and thickens
  the dielectric stack (refs [7, 8]).
* :class:`MassResonator` — a film bulk acoustic resonator (FBAR, refs
  [9, 10]) whose resonance frequency shifts down with the areal mass of
  bound DNA (Sauerbrey regime).

Both expose ``signal(occupancy)`` and a detection limit so the
ablation bench can compare them against the labelled redox-cycling
chain on equal footing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.units import AVOGADRO, nm

# Mean molar mass of one DNA base pair (g/mol -> kg/mol).
BASE_PAIR_MASS_KG_PER_MOL = 650.0 * 1e-3
# Relative permittivity of a hybridized DNA layer vs the double layer.
DNA_LAYER_EPS_R = 8.0
DOUBLE_LAYER_EPS_R = 30.0
EPS0 = 8.8541878128e-12


@dataclass(frozen=True)
class ImpedanceSensor:
    """Capacitive (impedance-change) DNA sensor.

    Parameters
    ----------
    electrode_area:
        Active electrode area, m^2.
    double_layer_thickness:
        Effective Helmholtz/diffuse-layer thickness, m.
    dna_layer_thickness:
        Added dielectric thickness at full duplex coverage, m (a 20-mer
        duplex stands a few nm tall).
    capacitance_resolution:
        Smallest relative capacitance change the readout can resolve
        (limited by drift and reference matching; ~1e-3 typical).
    """

    electrode_area: float = 1e-8  # 100 um x 100 um
    double_layer_thickness: float = 1.0 * nm
    dna_layer_thickness: float = 4.0 * nm
    capacitance_resolution: float = 1e-3

    def __post_init__(self) -> None:
        if self.electrode_area <= 0:
            raise ValueError("electrode area must be positive")
        if self.double_layer_thickness <= 0 or self.dna_layer_thickness <= 0:
            raise ValueError("layer thicknesses must be positive")
        if not 0 < self.capacitance_resolution < 1:
            raise ValueError("capacitance resolution must lie in (0, 1)")

    def bare_capacitance(self) -> float:
        """Interface capacitance with no DNA layer, F."""
        return EPS0 * DOUBLE_LAYER_EPS_R * self.electrode_area / self.double_layer_thickness

    def capacitance(self, occupancy: float) -> float:
        """Interface capacitance at duplex coverage ``occupancy``.

        The DNA layer adds a series dielectric over the covered
        fraction; covered and bare regions act in parallel.
        """
        if not 0.0 <= occupancy <= 1.0:
            raise ValueError("occupancy must lie in [0, 1]")
        c_bare = self.bare_capacitance()
        if occupancy == 0.0:
            return c_bare
        c_dl_areal = EPS0 * DOUBLE_LAYER_EPS_R / self.double_layer_thickness
        c_dna_areal = EPS0 * DNA_LAYER_EPS_R / self.dna_layer_thickness
        covered_areal = 1.0 / (1.0 / c_dl_areal + 1.0 / c_dna_areal)
        areal = occupancy * covered_areal + (1.0 - occupancy) * c_dl_areal
        return areal * self.electrode_area

    def signal(self, occupancy: float) -> float:
        """Relative capacitance change |dC/C0| — the measured quantity."""
        c0 = self.bare_capacitance()
        return abs(self.capacitance(occupancy) - c0) / c0

    def detection_limit_occupancy(self) -> float:
        """Smallest resolvable duplex coverage."""
        full = self.signal(1.0)
        if full <= 0:
            raise ValueError("sensor produces no signal at full coverage")
        return min(1.0, self.capacitance_resolution / full)


@dataclass(frozen=True)
class MassResonator:
    """FBAR-style gravimetric DNA sensor (refs [9, 10]).

    Parameters
    ----------
    resonance_hz:
        Unloaded resonance (FBARs: ~2 GHz).
    mass_sensitivity:
        |df/f| per areal mass, m^2/kg (FBAR: ~1000-3000 cm^2/g =
        0.1-0.3 m^2/kg... expressed here as relative shift per kg/m^2).
    frequency_resolution_hz:
        Short-term stability of the oscillator readout.
    probe_density:
        Immobilized probes per m^2.
    target_length_bases:
        Captured strand length in bases (sets the added mass).
    """

    resonance_hz: float = 2.0e9
    mass_sensitivity: float = 2000.0  # relative shift per kg/m^2
    frequency_resolution_hz: float = 200.0
    probe_density: float = 3.0e16
    target_length_bases: int = 200

    def __post_init__(self) -> None:
        if self.resonance_hz <= 0 or self.mass_sensitivity <= 0:
            raise ValueError("resonance and sensitivity must be positive")
        if self.frequency_resolution_hz <= 0:
            raise ValueError("frequency resolution must be positive")
        if self.probe_density <= 0 or self.target_length_bases < 1:
            raise ValueError("invalid probe/target parameters")

    def areal_mass(self, occupancy: float) -> float:
        """Bound-DNA areal mass, kg/m^2."""
        if not 0.0 <= occupancy <= 1.0:
            raise ValueError("occupancy must lie in [0, 1]")
        per_molecule = self.target_length_bases * BASE_PAIR_MASS_KG_PER_MOL / AVOGADRO
        return occupancy * self.probe_density * per_molecule

    def frequency_shift(self, occupancy: float) -> float:
        """Downward resonance shift, Hz (Sauerbrey regime)."""
        return -self.resonance_hz * self.mass_sensitivity * self.areal_mass(occupancy)

    def signal(self, occupancy: float) -> float:
        """|df| in Hz — the measured quantity."""
        return abs(self.frequency_shift(occupancy))

    def detection_limit_occupancy(self) -> float:
        """Smallest resolvable duplex coverage."""
        full = self.signal(1.0)
        if full <= 0:
            raise ValueError("resonator produces no shift at full coverage")
        return min(1.0, self.frequency_resolution_hz / full)


def compare_detection_limits(
    redox_background_a: float = 0.5e-12,
    redox_full_scale_a: float = 100e-9,
    impedance: ImpedanceSensor | None = None,
    resonator: MassResonator | None = None,
) -> dict[str, float]:
    """Occupancy detection limits of the three principles.

    The labelled redox-cycling chain resolves down to a current equal to
    its background; the label-free sensors to their instrument
    resolutions.  Returns {principle: minimal occupancy}.
    """
    if redox_background_a <= 0 or redox_full_scale_a <= redox_background_a:
        raise ValueError("invalid redox current window")
    impedance = impedance or ImpedanceSensor()
    resonator = resonator or MassResonator()
    return {
        "redox cycling (enzyme label)": redox_background_a / redox_full_scale_a,
        "impedance (label-free)": impedance.detection_limit_occupancy(),
        "mass resonator (label-free)": resonator.detection_limit_occupancy(),
    }
