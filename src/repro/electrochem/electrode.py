"""Interdigitated noble-metal sensor electrodes.

Each DNA sensor site carries a gold interdigitated electrode array (IDA):
alternating generator and collector fingers.  Geometry sets both the
redox-cycling collection efficiency and the double-layer capacitance that
the potentiostat must charge at startup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.units import um

# Typical gold/electrolyte double-layer capacitance.
DOUBLE_LAYER_F_PER_M2 = 0.2  # 20 uF/cm^2


@dataclass(frozen=True)
class InterdigitatedElectrode:
    """IDA geometry of one sensor site.

    Parameters
    ----------
    finger_width:
        Width of each metal finger, m.
    gap:
        Spacing between adjacent fingers, m.
    finger_length:
        Length of each finger, m.
    finger_pairs:
        Number of generator/collector pairs.
    """

    finger_width: float = 1.0 * um
    gap: float = 1.0 * um
    finger_length: float = 100.0 * um
    finger_pairs: int = 25

    def __post_init__(self) -> None:
        if min(self.finger_width, self.gap, self.finger_length) <= 0:
            raise ValueError("electrode dimensions must be positive")
        if self.finger_pairs < 1:
            raise ValueError("need at least one finger pair")

    @property
    def metal_area(self) -> float:
        """Total metal area of both electrodes, m^2."""
        return 2 * self.finger_pairs * self.finger_width * self.finger_length

    @property
    def footprint_area(self) -> float:
        """Site area including gaps, m^2."""
        pitch = 2 * (self.finger_width + self.gap)
        return self.finger_pairs * pitch * self.finger_length

    @property
    def gap_count(self) -> int:
        """Number of generator-collector gaps (2 per pair minus edge)."""
        return 2 * self.finger_pairs - 1

    @property
    def double_layer_capacitance(self) -> float:
        """Double-layer capacitance of one electrode comb, F."""
        return 0.5 * self.metal_area * DOUBLE_LAYER_F_PER_M2

    def geometry_factor(self) -> float:
        """Diffusive conductance factor G (meters) for cycling current.

        For closely spaced IDAs the quasi-steady cycling current is
        I = n F D c * G with G ~ (number of gaps) * finger_length *
        f(width/gap); f is an order-one conformal-mapping factor,
        approximated by the Aoki expression ln-form.
        """
        ratio = self.finger_width / self.gap
        shape = 0.637 * math.log(2.55 * (1.0 + ratio))
        return self.gap_count * self.finger_length * shape

    def collection_efficiency(self) -> float:
        """Fraction of generator product captured by the collector.

        Tight gaps give >0.9; approximated from the gap/width ratio.
        """
        ratio = self.gap / self.finger_width
        return 1.0 / (1.0 + 0.12 * ratio)

    def cycling_gain(self, boundary_layer: float = 50.0 * um) -> float:
        """Amplification of cycling vs a single electrode.

        A molecule shuttles between fingers (distance ~ gap) instead of
        escaping through the boundary layer (distance ~ boundary_layer);
        the current gain is roughly the ratio, damped by the collection
        efficiency per crossing.
        """
        if boundary_layer <= 0:
            raise ValueError("boundary layer must be positive")
        eta = self.collection_efficiency()
        single_pass = boundary_layer / self.gap
        return 1.0 + eta * single_pass / (1.0 + (1.0 - eta) * single_pass)
