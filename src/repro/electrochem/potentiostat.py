"""Electrode-potential regulation (the Fig. 3 loop's electrochemical job).

"The voltage of the sensor electrode is controlled by a regulation loop
via an operational amplifier and a source follower transistor."  The
potentiostat must (a) hold the generator/collector potentials provided by
the periphery DACs and (b) recover quickly after each reset pulse so the
integration restarts from a clean state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices.opamp import OpAmp
from ..devices.source_follower import SourceFollower, default_follower
from .electrode import InterdigitatedElectrode


@dataclass
class Potentiostat:
    """Regulation loop holding one electrode at a DAC-set potential.

    Parameters
    ----------
    opamp:
        The loop amplifier.
    follower:
        The source follower between amplifier and electrode.
    electrode:
        Supplies the double-layer capacitance the loop must drive.
    """

    opamp: OpAmp = field(default_factory=lambda: OpAmp(dc_gain=20_000.0, gbw_hz=5e6))
    follower: SourceFollower = field(default_factory=default_follower)
    electrode: InterdigitatedElectrode = field(default_factory=InterdigitatedElectrode)

    def static_error(self, v_target: float) -> float:
        """Residual electrode-voltage error once the loop has settled.

        Loop feedback absorbs the follower level shift; the residue is
        the finite-gain error plus the amplifier offset.
        """
        gain = self.opamp.dc_gain
        return v_target / (1.0 + gain) + self.opamp.offset_v * gain / (1.0 + gain)

    def electrode_voltage(self, v_target: float) -> float:
        """The settled electrode potential for a requested target."""
        return v_target - self.static_error(v_target)

    def recovery_time(self, disturbance_v: float, tolerance_v: float = 1e-4) -> float:
        """Time to re-pin the electrode after a reset step of
        ``disturbance_v`` (e.g. the integration swing).

        The loop bandwidth is reduced by the pole at the electrode node
        (follower output resistance driving the double-layer cap).
        """
        if tolerance_v <= 0:
            raise ValueError("tolerance must be positive")
        if disturbance_v == 0:
            return 0.0
        import math

        loop_bw = self.opamp.closed_loop_bandwidth(1.0)
        electrode_pole = 1.0 / (
            2.0
            * math.pi
            * self.follower.output_resistance()
            * self.electrode.double_layer_capacitance
        )
        effective_bw = min(loop_bw, electrode_pole)
        tau = 1.0 / (2.0 * math.pi * effective_bw)
        ratio = abs(disturbance_v) / tolerance_v
        return tau * math.log(max(ratio, 1.0 + 1e-12))

    def charging_current_peak(self, step_v: float) -> float:
        """Peak double-layer charging current after a potential step —
        must not be confused with sensor signal by the ADC."""
        r_out = self.follower.output_resistance()
        return abs(step_v) / r_out
