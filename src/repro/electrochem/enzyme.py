"""Enzyme-label product generation at a sensor surface.

Bound targets carry alkaline-phosphatase labels; the surface flux of
redox product is the label surface density times the Michaelis-Menten
turnover.  This couples the DNA layer (bound-target density) to the
electrochemical layer (surface flux -> concentration -> current).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.units import AVOGADRO
from .species import ALKALINE_PHOSPHATASE, EnzymeLabel


@dataclass
class LabelledSurface:
    """Enzyme-labelled captured targets on one sensor site.

    Parameters
    ----------
    label:
        The enzyme chemistry.
    labels_per_target:
        Average enzyme count per hybridized target molecule.
    substrate_concentration:
        Bulk substrate (pAPP) concentration, mol/m^3; assumed unconsumed
        (large excess) over the measurement window.
    """

    label: EnzymeLabel = ALKALINE_PHOSPHATASE
    labels_per_target: float = 1.0
    substrate_concentration: float = 1.0  # 1 mM

    def __post_init__(self) -> None:
        if self.labels_per_target <= 0:
            raise ValueError("labels_per_target must be positive")
        if self.substrate_concentration < 0:
            raise ValueError("substrate concentration must be non-negative")

    def product_flux(self, bound_target_density: float) -> float:
        """Surface product-generation flux, mol/(m^2 s).

        ``bound_target_density`` in molecules/m^2 (from the hybridization
        model).
        """
        if bound_target_density < 0:
            raise ValueError("bound target density must be non-negative")
        enzymes_per_area = bound_target_density * self.labels_per_target
        rate_per_enzyme = self.label.turnover_rate(self.substrate_concentration)
        return enzymes_per_area * rate_per_enzyme / AVOGADRO

    def time_to_concentration(
        self,
        bound_target_density: float,
        target_concentration: float,
        boundary_layer: float,
    ) -> float:
        """Rough time until the quasi-static surface concentration is
        reached (diffusive time constant), used for assay scheduling."""
        from .diffusion import ramp_time_constant

        return ramp_time_constant(boundary_layer, self.label.product.diffusion_coefficient)
