"""1-D diffusion solver for the analyte compartment above a sensor site.

After the substrate (pAPP) is applied, the enzyme labels on the sensor
surface generate redox product (pAP) at z = 0; the product diffuses into
the bulk.  The surface concentration — which sets the redox-cycling
current — therefore *ramps up* over seconds, exactly the measured signal
shape of the redox-cycling chips.  Crank-Nicolson on a uniform grid with
a flux (Neumann) boundary at the surface and a sink (Dirichlet) at the
top of the boundary layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_banded


@dataclass
class DiffusionDomain:
    """Uniform 1-D grid from the sensor surface (z=0) to the bulk.

    Parameters
    ----------
    height:
        Domain height (boundary-layer thickness), m.
    cells:
        Number of grid cells.
    diffusion_coefficient:
        D of the transported species, m^2/s.
    """

    height: float
    cells: int
    diffusion_coefficient: float

    def __post_init__(self) -> None:
        if self.height <= 0:
            raise ValueError("height must be positive")
        if self.cells < 3:
            raise ValueError("need at least 3 cells")
        if self.diffusion_coefficient <= 0:
            raise ValueError("D must be positive")
        self.dz = self.height / self.cells
        self.z = (np.arange(self.cells) + 0.5) * self.dz
        self.concentration = np.zeros(self.cells)

    def reset(self, value: float = 0.0) -> None:
        if value < 0:
            raise ValueError("concentration must be non-negative")
        self.concentration[:] = value

    def stable_dt(self) -> float:
        """Explicit-scheme stability bound, used as a default step."""
        return 0.25 * self.dz * self.dz / self.diffusion_coefficient

    def step(self, dt: float, surface_flux: float, consume_fraction: float = 0.0) -> None:
        """Advance by ``dt`` with Crank-Nicolson.

        Parameters
        ----------
        surface_flux:
            Product injection at z=0 in mol/(m^2 s) (from the enzyme
            layer).  May be zero.
        consume_fraction:
            Fraction of the *surface-cell* content consumed per pass by
            the electrode reaction (redox cycling conserves the shuttling
            species, so this is ~0 for cycling and >0 for a consuming
            single electrode).
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if not 0.0 <= consume_fraction <= 1.0:
            raise ValueError("consume_fraction must lie in [0, 1]")
        n = self.cells
        r = self.diffusion_coefficient * dt / (2.0 * self.dz * self.dz)
        # Build the implicit tridiagonal (I - r*L) and explicit (I + r*L)
        # with Neumann at i=0 (flux handled as a source term) and
        # Dirichlet c=0 at the far boundary (ghost node at bulk value 0).
        main_imp = np.full(n, 1.0 + 2.0 * r)
        main_exp = np.full(n, 1.0 - 2.0 * r)
        main_imp[0] = 1.0 + r  # reflecting surface
        main_exp[0] = 1.0 - r
        upper = np.full(n - 1, -r)
        lower = np.full(n - 1, -r)
        rhs = main_exp * self.concentration
        rhs[1:] += r * self.concentration[:-1]
        rhs[:-1] += r * self.concentration[1:]
        # Surface source: flux spread over the first cell.
        rhs[0] += dt * surface_flux / self.dz
        # Electrode consumption as first-order loss in the surface cell.
        if consume_fraction > 0:
            rhs[0] *= 1.0 - consume_fraction
        banded = np.zeros((3, n))
        banded[0, 1:] = upper
        banded[1, :] = main_imp
        banded[2, :-1] = lower
        self.concentration = solve_banded((1, 1), banded, rhs)
        np.clip(self.concentration, 0.0, None, out=self.concentration)

    @property
    def surface_concentration(self) -> float:
        """Concentration in the cell adjacent to the electrode, mol/m^3."""
        return float(self.concentration[0])

    def total_amount(self) -> float:
        """Moles per unit area currently in the domain."""
        return float(np.sum(self.concentration) * self.dz)


def surface_concentration_quasi_static(
    flux: float, boundary_layer: float, diffusion_coefficient: float
) -> float:
    """Steady-state surface concentration for constant injection flux.

    c_s = J * delta / D — the closed-form shortcut used by array-level
    assay simulations where running a PDE per site would be wasteful.
    """
    if boundary_layer <= 0 or diffusion_coefficient <= 0:
        raise ValueError("boundary layer and D must be positive")
    if flux < 0:
        raise ValueError("flux must be non-negative")
    return flux * boundary_layer / diffusion_coefficient


def ramp_time_constant(boundary_layer: float, diffusion_coefficient: float) -> float:
    """Diffusive settling time delta^2/(2D) of the surface concentration."""
    if boundary_layer <= 0 or diffusion_coefficient <= 0:
        raise ValueError("boundary layer and D must be positive")
    return boundary_layer * boundary_layer / (2.0 * diffusion_coefficient)
