"""Redox-cycling current model (the paper's Section 2 detection principle).

"Using a redox-cycling based technique, CMOS chips have recently been
published which detect currents between 1 pA and 100 nA per sensor."

The generator electrode oxidises pAP, the collector re-reduces it; the
quasi-steady cycling current is diffusion-limited across the finger gaps:

    I = n * F * D * c_surface * G(geometry)

plus a background (capacitive + trace-impurity) current that sets the
~pA floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import math

from ..core.units import FARADAY
from .electrode import InterdigitatedElectrode
from .species import RedoxSpecies, P_AMINOPHENOL


@dataclass
class RedoxCyclingSensor:
    """One sensor site's electrochemical transducer.

    Parameters
    ----------
    electrode:
        IDA geometry.
    species:
        The shuttling redox couple.
    background_current:
        Residual current with no analyte (electrode leakage, trace
        impurities); the paper-level floor is ~1 pA.
    bias_ok:
        Set by :meth:`check_bias`; cycling only runs when the generator /
        collector potentials straddle the species' standard potential.
    """

    electrode: InterdigitatedElectrode = field(default_factory=InterdigitatedElectrode)
    species: RedoxSpecies = P_AMINOPHENOL
    background_current: float = 0.5e-12
    bias_ok: bool = True

    def __post_init__(self) -> None:
        if self.background_current < 0:
            raise ValueError("background current must be non-negative")

    def check_bias(self, v_generator: float, v_collector: float, margin_v: float = 0.05) -> bool:
        """Validate the DAC-provided electrode potentials.

        Cycling requires the generator above and the collector below the
        standard potential by at least ``margin_v`` (activation margin).
        Stores and returns the result; a mis-biased sensor produces only
        background current — a realistic chip-configuration failure mode.
        """
        e0 = self.species.standard_potential_v
        self.bias_ok = (v_generator >= e0 + margin_v) and (v_collector <= e0 - margin_v)
        return self.bias_ok

    def current(self, surface_concentration: float) -> float:
        """Cycling current (A) for a given product concentration at the
        surface (mol/m^3)."""
        if surface_concentration < 0:
            raise ValueError("concentration must be non-negative")
        if not self.bias_ok:
            return self.background_current
        diffusive = (
            self.species.electrons_transferred
            * FARADAY
            * self.species.diffusion_coefficient
            * surface_concentration
            * self.electrode.geometry_factor()
        )
        return self.background_current + diffusive

    def concentration_for_current(self, current: float) -> float:
        """Invert :meth:`current` (background subtracted); used for
        chip-side calibration of concentration read-outs."""
        if current < self.background_current:
            return 0.0
        denom = (
            self.species.electrons_transferred
            * FARADAY
            * self.species.diffusion_coefficient
            * self.electrode.geometry_factor()
        )
        return (current - self.background_current) / denom

    def single_electrode_current(self, surface_concentration: float, boundary_layer: float = 50e-6) -> float:
        """Current without cycling (collector disconnected) — the
        ablation baseline.  Diffusion-limited through the boundary layer
        instead of across the finger gaps."""
        if surface_concentration < 0:
            raise ValueError("concentration must be non-negative")
        if boundary_layer <= 0:
            raise ValueError("boundary layer must be positive")
        area = 0.5 * self.electrode.metal_area
        diffusive = (
            self.species.electrons_transferred
            * FARADAY
            * self.species.diffusion_coefficient
            * surface_concentration
            * area
            / boundary_layer
        )
        return self.background_current + diffusive

    def amplification_factor(self, surface_concentration: float = 1e-3) -> float:
        """Cycling current over single-electrode current at the same
        concentration — the redox-cycling gain the technique exists for."""
        single = self.single_electrode_current(surface_concentration) - self.background_current
        cycled = self.current(surface_concentration) - self.background_current
        if single <= 0:
            raise ValueError("single-electrode current vanished; cannot form ratio")
        return cycled / single

    def shot_noise_rms(self, current: float, bandwidth_hz: float) -> float:
        """Shot-noise RMS of the sensor current in a given bandwidth."""
        if bandwidth_hz < 0:
            raise ValueError("bandwidth must be non-negative")
        from ..core.noise import shot_noise_density

        return math.sqrt(shot_noise_density(current) * bandwidth_hz)
