"""Replay a spec's digital readout sequence under a trace recorder.

:func:`replay_readout` rebuilds the exact chip a workload would build —
same :class:`~repro.core.rng.SeedTree` stream paths, same construction
order — but with a :class:`~repro.trace.recorder.TraceRecorder`
attached, runs the spec through the Runner, then drives the serial
counter readout (optionally with injected bit corruption).  Because
streams depend only on ``(root, path)``, the replayed chip is
bit-identical to the one the plain workload builds, and the captured
trace is a pure function of ``(spec, seed)``.

This module imports the chip and experiment layers, so it loads lazily
behind ``repro.trace.__getattr__`` — the trace core never depends on
the model stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..chip.dna_chip import ChipSpecs, DnaMicroarrayChip
from ..chip.sequencer import NEURO_SCAN, ScanTiming
from ..chip.serial_interface import Command, Frame, FrameError
from ..experiments.runner import Runner
from ..experiments.specs import ArrayScaleSpec, DnaAssaySpec, ExperimentSpec
from ..experiments.workloads import workload_for
from .recorder import TraceRecorder
from .table import TraceTable


@dataclass
class ReplayResult:
    """Outcome of one traced replay."""

    trace: TraceTable
    counters: Optional[list] = None
    #: The FrameError text when injected corruption killed the readout.
    readout_error: Optional[str] = None
    #: Response-chunk index whose decode failed (None when ok — or when
    #: the failing frame could not be attributed, e.g. the request).
    failed_frame: Optional[int] = None
    result: Any = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.readout_error is None


def _traced_dna_chip(
    spec: "DnaAssaySpec | ArrayScaleSpec", runner: Runner, recorder: TraceRecorder
) -> DnaMicroarrayChip:
    """Build-and-configure the DNA chip exactly as the workload's
    ``_build_dna_chip``/``_build_array_scale_chips`` would (same stream
    paths, same call order), with the recorder attached."""
    paths = workload_for(spec.kind).streams(spec)
    chip_rng = runner.seed_tree.generator(*paths["chip"])
    calibration_rng = runner.seed_tree.generator(*paths["calibration"])
    chip = DnaMicroarrayChip(
        ChipSpecs(rows=spec.rows, cols=spec.cols), rng=chip_rng, recorder=recorder
    )
    if isinstance(spec, DnaAssaySpec):
        chip.bias_ok = chip.configure_bias(spec.v_generator, spec.v_collector)
    if spec.calibrate:
        chip.auto_calibrate(frame_s=spec.calibration_frame_s, rng=calibration_rng)
    return chip


def replay_readout(
    spec: Optional[ExperimentSpec] = None,
    seed: int = 0,
    recorder: Optional[TraceRecorder] = None,
    flip_bits: Optional[list[int]] = None,
    flip_frame: int = 0,
    flip_frames: Optional[dict[int, list[int]]] = None,
) -> ReplayResult:
    """Run ``spec``'s full measurement under a trace recorder and return
    the capture.

    Sequence: register configuration and calibration over the serial
    link, a RUN_FRAME trigger, the workload's measurement (through the
    Runner, so records/metrics match a plain run), then the serial
    counter shift-out.  ``flip_bits`` corrupts response chunk
    ``flip_frame`` of the shift-out; ``flip_frames`` (a chunk-index →
    bit-positions mapping, superseding the singular pair) corrupts
    several chunks at once.  The first checksum failure is recorded as
    a corrupt serial-frame event and reported as ``readout_error`` —
    naming the failing chunk, also exposed as ``failed_frame`` — instead
    of raising.

    Supports the DNA-chip kinds (``dna_assay``, ``array_scale`` with
    ``n_chips=1``).
    """
    spec = spec if spec is not None else DnaAssaySpec()
    if not isinstance(spec, (DnaAssaySpec, ArrayScaleSpec)):
        raise ValueError(
            f"replay_readout supports dna_assay and array_scale specs, not {spec.kind!r}"
        )
    if isinstance(spec, ArrayScaleSpec) and spec.n_chips != 1:
        raise ValueError("replay_readout traces a single chip; use n_chips=1")
    if recorder is None:
        recorder = TraceRecorder()
    runner = Runner(seed=seed)
    chip = _traced_dna_chip(spec, runner, recorder)
    # The host triggers the counting frame over the wire.
    chip.link.transfer(Frame(Command.RUN_FRAME, 0x00))
    inputs = {"chip": chip if isinstance(spec, DnaAssaySpec) else [chip]}
    result = runner.run(spec, backend="object", inputs=inputs)
    counters: Optional[list] = None
    readout_error: Optional[str] = None
    failed_frame: Optional[int] = None
    try:
        counters = chip.read_counters_serial(
            flip_bits=flip_bits, flip_frame=flip_frame, flip_frames=flip_frames
        )
    except FrameError as exc:
        # The corrupt frame is already in the trace; surface the error
        # as data rather than an exception so callers can render it.
        failed_frame = getattr(exc, "frame_index", None)
        prefix = "" if failed_frame is None else f"response chunk {failed_frame}: "
        readout_error = f"{prefix}{exc}"
    return ReplayResult(
        trace=recorder.trace(),
        counters=counters,
        readout_error=readout_error,
        failed_frame=failed_frame,
        result=result,
    )


def record_scan_frame(
    recorder: TraceRecorder,
    scan: Optional[ScanTiming] = None,
    rows: Optional[int] = None,
) -> TraceTable:
    """Capture one frame of a :class:`ScanTiming` schedule as sample
    slots: every pixel's mux slot at its in-frame time, then the clock
    advanced by one frame.  ``rows`` limits the capture to the first
    rows (a full 128x128 frame is 16384 events)."""
    scan = scan if scan is not None else NEURO_SCAN
    n_rows = scan.rows if rows is None else min(rows, scan.rows)
    recorder.seq_state(
        "frame",
        detail=f"{scan.rows}x{scan.cols} @ {scan.frame_rate_hz:g} Hz, "
        f"{scan.channels} channels",
    )
    base = recorder.now
    for row, col in scan.pixel_order():
        if row >= n_rows:
            break
        recorder.seq_sample(
            row,
            col,
            time_s=base + scan.sample_time_s(row, col),
            slot_s=scan.slot_time_s,
            channel_index=col // scan.mux_depth,
            slot=col % scan.mux_depth,
        )
    recorder.advance(scan.frame_time_s)
    return recorder.trace()
