"""Cycle-accurate digital-path tracing.

Capture (:class:`TraceRecorder`), container (:class:`TraceTable`),
rendering (``render_waveform``/``render_events``/``render_html``/
``render_frame_bits``) and assertions (``check_trace`` and friends) for
the chip's control plane: register traffic, sequencer states,
per-pixel sample slots and serial frames down to individual DIN/DOUT
bits.  All timestamps are simulated time derived from
``ScanTiming``/``SiteSequence`` and serial wire arithmetic — a trace is
a pure function of ``(spec, seed)`` and serializes byte-identically.

The chip models never import this package; they accept a recorder
duck-typed.  The replay helpers (``replay_readout``) import the chip
and experiment layers, so they load lazily via PEP 562 to keep
``repro.trace`` import-light and cycle-free.
"""

from .events import (
    CHIP_TO_HOST,
    DIN,
    DOUT,
    FAULT_INJECT,
    HOST_TO_CHIP,
    KINDS,
    READOUT_DETECT,
    READOUT_GIVEUP,
    READOUT_RECOVER,
    READOUT_RETRY,
    REG_READ,
    REG_REJECT,
    REG_RESET,
    REG_WRITE,
    SCHEMA_VERSION,
    SEQ_SAMPLE,
    SEQ_STATE,
    SERIAL_FRAME,
    TraceEvent,
    frame_data,
)
from .match import (
    Ever,
    Never,
    Precedes,
    SlotSettles,
    TraceAssertionError,
    Violation,
    assert_trace,
    check_trace,
    readout_invariants,
    where,
)
from .recorder import TraceRecorder
from .render import (
    render_events,
    render_frame_bits,
    render_html,
    render_waveform,
    signal_steps,
)
from .table import TraceTable

_CAPTURE_EXPORTS = ("replay_readout", "record_scan_frame")

__all__ = [
    "CHIP_TO_HOST",
    "DIN",
    "DOUT",
    "FAULT_INJECT",
    "HOST_TO_CHIP",
    "KINDS",
    "READOUT_DETECT",
    "READOUT_GIVEUP",
    "READOUT_RECOVER",
    "READOUT_RETRY",
    "REG_READ",
    "REG_REJECT",
    "REG_RESET",
    "REG_WRITE",
    "SCHEMA_VERSION",
    "SEQ_SAMPLE",
    "SEQ_STATE",
    "SERIAL_FRAME",
    "Ever",
    "Never",
    "Precedes",
    "SlotSettles",
    "TraceAssertionError",
    "TraceEvent",
    "TraceRecorder",
    "TraceTable",
    "Violation",
    "assert_trace",
    "check_trace",
    "frame_data",
    "readout_invariants",
    "record_scan_frame",
    "render_events",
    "render_frame_bits",
    "render_html",
    "render_waveform",
    "replay_readout",
    "signal_steps",
    "where",
]


def __getattr__(name: str):
    # capture.py imports the chip/experiment layers; loading it eagerly
    # would couple `import repro.trace` to the whole model stack.
    if name in _CAPTURE_EXPORTS:
        from . import capture

        return getattr(capture, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
