"""The ``repro trace`` subcommand.

Replays a spec's readout sequence under a
:class:`~repro.trace.recorder.TraceRecorder` and renders the capture::

    repro trace                                   # default DNA assay, event table
    repro trace --render waveform --width 100
    repro trace --spec examples/specs/dna_assay.json --seed 3
    repro trace --flip 42,43 --render bits        # localize injected corruption
    repro trace --assert                          # readout invariants, exit 1 on violation
    repro trace --out trace.jsonl                 # store the canonical capture

Everything printed derives from the captured trace alone, and the trace
is a pure function of ``(spec, seed)`` — two invocations with the same
flags emit identical bytes.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional

from .events import SERIAL_FRAME
from .match import SlotSettles, check_trace, readout_invariants
from .render import render_events, render_frame_bits, render_html, render_waveform


def _parse_ints(text: Optional[str], option: str) -> Optional[list[int]]:
    if text is None:
        return None
    try:
        return [int(token) for token in text.split(",") if token.strip()]
    except ValueError:
        raise SystemExit(f"repro: {option} expects comma-separated integers, got {text!r}")


def _parse_names(text: Optional[str]) -> Optional[list[str]]:
    if text is None:
        return None
    return [token.strip() for token in text.split(",") if token.strip()]


def _cmd_trace(args: argparse.Namespace) -> int:
    from ..experiments import spec_from_dict
    from .capture import replay_readout

    spec = None
    if args.spec:
        try:
            payload = json.loads(Path(args.spec).read_text(encoding="utf-8"))
            spec = spec_from_dict(payload)
        except FileNotFoundError:
            raise SystemExit(f"repro: no such file: {args.spec}")
        except (KeyError, TypeError, ValueError) as error:
            raise SystemExit(f"repro: {error}")
    flips = _parse_ints(args.flip, "--flip")
    frames = _parse_ints(args.flip_frame, "--flip-frame") or [0]
    # One chunk keeps the singular API; several corrupt every listed
    # chunk with the same bit positions.
    flip_frames = (
        {frame: list(flips) for frame in frames}
        if flips and len(frames) > 1
        else None
    )
    try:
        replay = replay_readout(
            spec,
            seed=args.seed,
            flip_bits=flips,
            flip_frame=frames[0],
            flip_frames=flip_frames,
        )
    except (IndexError, ValueError) as error:
        raise SystemExit(f"repro: {error}")
    trace = replay.trace

    if args.out:
        Path(args.out).write_text(trace.to_jsonl(), encoding="utf-8")
        print(f"trace written to {args.out} ({len(trace)} events)")

    view = trace.filter(
        kinds=_parse_names(args.kinds), channels=_parse_names(args.channels)
    )
    if args.render == "events":
        print(render_events(view, limit=args.limit))
    elif args.render == "waveform":
        print(render_waveform(view, width=args.width))
    elif args.render == "html":
        print(render_html(view, limit=args.limit))
    elif args.render == "bits":
        frames = [e for e in view if e.kind == SERIAL_FRAME]
        corrupt = [e for e in frames if not e.data.get("ok", True)]
        for event in corrupt or frames[: args.limit or len(frames)]:
            print(render_frame_bits(event))
    elif args.render == "jsonl":
        print(trace.to_jsonl(), end="")

    status = 0
    if replay.readout_error is not None:
        print(f"\nreadout FAILED: {replay.readout_error}")
        status = 1
    if args.check:
        invariants = readout_invariants()
        if args.bw is not None:
            invariants.append(SlotSettles(args.bw))
        violations = check_trace(trace, invariants)
        if violations:
            print(f"\n{len(violations)} trace violation(s):")
            for violation in violations:
                print(f"  {violation.render()}")
            status = 1
        else:
            print("\ntrace assertions: all invariants hold")
    return status


def add_trace_parser(sub: "argparse._SubParsersAction") -> None:
    trace = sub.add_parser(
        "trace",
        help="replay a spec's digital readout under a trace recorder and render it",
    )
    trace.add_argument("--spec", default=None, help="ExperimentSpec JSON (default: DNA assay)")
    trace.add_argument("--seed", type=int, default=0, help="replay root seed (default 0)")
    trace.add_argument(
        "--flip",
        default=None,
        metavar="B1,B2,...",
        help="bit positions to corrupt in one readout response frame",
    )
    trace.add_argument(
        "--flip-frame",
        default="0",
        metavar="N1,N2,...",
        help="which response chunk(s) --flip corrupts (default 0); a "
        "comma list corrupts every listed chunk",
    )
    trace.add_argument(
        "--render",
        choices=("events", "waveform", "html", "bits", "jsonl"),
        default="events",
        help="output view (default: aligned event table)",
    )
    trace.add_argument("--kinds", default=None, help="comma-separated event kinds to keep")
    trace.add_argument(
        "--channels",
        default=None,
        help="comma-separated channels to keep ('reg.' matches as a prefix)",
    )
    trace.add_argument("--width", type=int, default=72, help="waveform width in columns")
    trace.add_argument("--limit", type=int, default=None, help="max events to print")
    trace.add_argument(
        "--check",
        "--assert",
        dest="check",
        action="store_true",
        help="run the readout invariants; exit 1 on any violation",
    )
    trace.add_argument(
        "--bw",
        type=float,
        default=None,
        metavar="HZ",
        help="with --check: also require every sample slot to settle a "
        "single-pole amplifier of this bandwidth",
    )
    trace.add_argument("--out", default=None, help="write the canonical trace JSONL to a file")
    trace.set_defaults(func=_cmd_trace)
