"""Trace assertions: match patterns over a capture, return structured
violations.

The protocol-level counterpart of the analog parity suites: instead of
asserting on final numbers, these assert on the *shape* of the digital
sequence — "every RUN_FRAME is preceded by a calibration_enable write",
"no serial frame arrived corrupt", "no sample slot is shorter than the
amplifier can settle".  Each check returns :class:`Violation` records
(rule id, message, offending event) rather than booleans, so campaign
tooling can store, count and render failures; :func:`assert_trace`
raises with the rendered list for test use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from .events import REG_REJECT, REG_WRITE, SEQ_SAMPLE, SERIAL_FRAME, TraceEvent
from .table import TraceTable

Predicate = Callable[[TraceEvent], bool]


@dataclass(frozen=True)
class Violation:
    """One failed expectation, anchored to the trace."""

    rule: str
    message: str
    seq: Optional[int] = None
    time_s: Optional[float] = None
    channel: Optional[str] = None
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "message": self.message,
            "seq": self.seq,
            "time_s": self.time_s,
            "channel": self.channel,
            "data": dict(self.data),
        }

    def render(self) -> str:
        where = ""
        if self.seq is not None:
            where = f" [event {self.seq}"
            if self.time_s is not None:
                where += f" @ {self.time_s:.6g} s"
            where += "]"
        return f"{self.rule}: {self.message}{where}"


class TraceAssertionError(AssertionError):
    """Raised by :func:`assert_trace`; carries the structured list."""

    def __init__(self, violations: Sequence[Violation]) -> None:
        self.violations = list(violations)
        lines = [f"{len(self.violations)} trace violation(s):"]
        lines.extend("  " + violation.render() for violation in self.violations)
        super().__init__("\n".join(lines))


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------
def where(
    kind: Optional[str] = None, channel: Optional[str] = None, **data_eq: Any
) -> Predicate:
    """Event predicate: kind and/or channel and/or data-field equality.

    ``channel`` ending in ``.`` or ``*`` matches as a prefix, mirroring
    :meth:`TraceTable.filter`.
    """

    prefix = None
    if channel is not None and channel.endswith(("*", ".")):
        prefix = channel.rstrip("*")

    def predicate(event: TraceEvent) -> bool:
        if kind is not None and event.kind != kind:
            return False
        if channel is not None:
            if prefix is not None:
                if not event.channel.startswith(prefix):
                    return False
            elif event.channel != channel:
                return False
        for name, expected in data_eq.items():
            if event.data.get(name) != expected:
                return False
        return True

    return predicate


def _violation_from(rule: str, message: str, event: TraceEvent) -> Violation:
    return Violation(
        rule=rule,
        message=message,
        seq=event.seq,
        time_s=event.time_s,
        channel=event.channel,
        data=dict(event.data),
    )


# ---------------------------------------------------------------------------
# Assertions
# ---------------------------------------------------------------------------
class Never:
    """No event may match ``predicate``."""

    def __init__(self, predicate: Predicate, rule: str, message: str = "") -> None:
        self.predicate = predicate
        self.rule = rule
        self.message = message or "matched a forbidden event"

    def check(self, trace: TraceTable) -> list[Violation]:
        return [
            _violation_from(self.rule, f"{self.message}: {event.summary()}", event)
            for event in trace
            if self.predicate(event)
        ]


class Ever:
    """At least one event must match ``predicate``."""

    def __init__(self, predicate: Predicate, rule: str, message: str = "") -> None:
        self.predicate = predicate
        self.rule = rule
        self.message = message or "no event matched the required pattern"

    def check(self, trace: TraceTable) -> list[Violation]:
        if any(self.predicate(event) for event in trace):
            return []
        return [Violation(rule=self.rule, message=self.message)]


class Precedes:
    """Every ``effect`` event must have an earlier ``cause`` event.

    ``within_s`` optionally bounds how far back the cause may lie.
    """

    def __init__(
        self,
        cause: Predicate,
        effect: Predicate,
        rule: str,
        message: str = "",
        within_s: Optional[float] = None,
    ) -> None:
        self.cause = cause
        self.effect = effect
        self.rule = rule
        self.message = message or "effect event without a preceding cause"
        self.within_s = within_s

    def check(self, trace: TraceTable) -> list[Violation]:
        violations = []
        cause_times: list[float] = []
        for event in trace:
            if self.cause(event):
                cause_times.append(event.time_s)
            if self.effect(event):
                satisfied = any(
                    t <= event.time_s
                    and (self.within_s is None or event.time_s - t <= self.within_s)
                    for t in cause_times
                )
                if not satisfied:
                    violations.append(
                        _violation_from(
                            self.rule, f"{self.message}: {event.summary()}", event
                        )
                    )
        return violations


class SlotSettles:
    """Every sample slot must give a single-pole amplifier of bandwidth
    ``amplifier_bw_hz`` at least ``settle_taus`` time constants — the
    :meth:`~repro.chip.sequencer.ScanTiming.settling_ok` criterion,
    checked per recorded slot instead of once per timing solution."""

    def __init__(
        self,
        amplifier_bw_hz: float,
        settle_taus: float = 3.0,
        rule: str = "slot-settling",
    ) -> None:
        if amplifier_bw_hz <= 0:
            raise ValueError("bandwidth must be positive")
        self.min_slot_s = settle_taus / (2.0 * math.pi * amplifier_bw_hz)
        self.amplifier_bw_hz = amplifier_bw_hz
        self.rule = rule

    def check(self, trace: TraceTable) -> list[Violation]:
        violations = []
        for event in trace:
            if event.kind != SEQ_SAMPLE:
                continue
            slot_s = float(event.data.get("slot_s", 0.0))
            if slot_s < self.min_slot_s:
                violations.append(
                    _violation_from(
                        self.rule,
                        f"slot {slot_s:.3e} s < settling minimum "
                        f"{self.min_slot_s:.3e} s at {self.amplifier_bw_hz:.3g} Hz",
                        event,
                    )
                )
        return violations


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------
def check_trace(trace: TraceTable, assertions: Sequence[Any]) -> list[Violation]:
    """Run every assertion, return all violations in trace order (then
    assertion order for positionless ones)."""
    violations: list[Violation] = []
    for assertion in assertions:
        violations.extend(assertion.check(trace))
    violations.sort(key=lambda v: (v.seq is None, v.seq if v.seq is not None else 0))
    return violations


def assert_trace(trace: TraceTable, assertions: Sequence[Any]) -> None:
    """Raise :class:`TraceAssertionError` if any assertion fails."""
    violations = check_trace(trace, assertions)
    if violations:
        raise TraceAssertionError(violations)


def readout_invariants(amplifier_bw_hz: Optional[float] = None) -> list[Any]:
    """The standard contract of a well-formed readout sequence:

    * ``frames-intact`` — no serial frame arrived corrupt,
    * ``writes-accepted`` — no register write was rejected,
    * ``calibrate-before-run`` — every RUN_FRAME command follows a
      ``calibration_enable`` write of 1,
    * ``slot-settling`` (when a bandwidth is given) — no sample slot is
      shorter than the amplifier can settle.

    Used by ``repro trace --assert`` and reusable in campaign checks.
    """
    invariants: list[Any] = [
        Never(
            where(kind=SERIAL_FRAME, ok=False),
            rule="frames-intact",
            message="serial frame failed decode",
        ),
        Never(
            where(kind=REG_REJECT),
            rule="writes-accepted",
            message="register write rejected",
        ),
        Precedes(
            cause=where(kind=REG_WRITE, channel="reg.calibration_enable", value=1),
            effect=where(kind=SERIAL_FRAME, command="RUN_FRAME"),
            rule="calibrate-before-run",
            message="RUN_FRAME without prior calibration_enable=1",
        ),
    ]
    if amplifier_bw_hz is not None:
        invariants.append(SlotSettles(amplifier_bw_hz))
    return invariants
