"""Waveform and table rendering of digital-path traces.

Terminal-first, in the spirit of HDL "peeker" tools: every channel of a
:class:`~repro.trace.table.TraceTable` becomes one lane of an ASCII
waveform —

* serial wires (``serial.din``/``serial.dout``) render their recorded
  bit streams as high/low marks (``▔``/``▁``),
* register and sequencer-state channels render as labelled buses
  (``|value====``),
* sample slots and injected bit flips render as tick lanes,

plus an aligned event table (:func:`render_events`), an HTML table for
notebooks (:func:`render_html`), and a per-frame bit dump
(:func:`render_frame_bits`) that lines up sent vs received bits and
points ``^`` at every flipped position.

Rendering only reads the trace — no model state, no wall clock — so the
same trace always renders to the same text.
"""

from __future__ import annotations

import html as _html
from typing import Any, Optional, Sequence, Union

from ..core.tables import render_table
from ..core.units import si_format
from .events import (
    REG_RESET,
    REG_WRITE,
    SEQ_SAMPLE,
    SEQ_STATE,
    SERIAL_FRAME,
    TraceEvent,
)
from .table import TraceTable

#: Lane glyphs.
HIGH = "▔"  # ▔
LOW = "▁"  # ▁
IDLE = " "
FLIP = "x"
TICK = "|"

Step = tuple[float, Optional[Union[int, str]]]


# ---------------------------------------------------------------------------
# Signal extraction
# ---------------------------------------------------------------------------
def signal_steps(trace: TraceTable, channel: str) -> list[Step]:
    """Value-vs-time step series of one channel.

    Returns ``(time_s, value)`` pairs sorted by time; each value holds
    until the next step.  ``None`` means the line is idle/undriven.
    Register channels step on writes and resets, ``seq.state`` on state
    entries, serial wires on every recorded *bit* (received side, i.e.
    what actually crossed the pin).
    """
    steps: list[Step] = []
    for event in trace:
        if event.channel != channel:
            # A reset drives every register channel at once.
            if event.kind == REG_RESET and channel.startswith("reg."):
                name = channel[len("reg."):]
                values = event.data.get("values", {})
                if name in values:
                    steps.append((event.time_s, values[name]))
            continue
        if event.kind == REG_WRITE:
            steps.append((event.time_s, event.data["value"]))
        elif event.kind == SEQ_STATE:
            steps.append((event.time_s, event.data["state"]))
        elif event.kind == SERIAL_FRAME:
            steps.extend(_frame_bit_steps(event, which="received_bits"))
            steps.append((event.time_s + float(event.data.get("duration_s", 0.0)), None))
    steps.sort(key=lambda step: step[0])
    return steps


def _frame_bit_steps(event: TraceEvent, which: str) -> list[Step]:
    bits = event.data.get(which)
    if not bits:
        # Bit streams not recorded: represent the frame as a single
        # labelled segment so the lane still shows traffic.
        return [(event.time_s, event.data.get("command", "frame"))]
    duration = float(event.data.get("duration_s", 0.0))
    bit_s = duration / len(bits) if duration > 0 else 0.0
    return [
        (event.time_s + index * bit_s, int(bit)) for index, bit in enumerate(bits)
    ]


def _flip_times(trace: TraceTable) -> list[float]:
    """Simulated times of every injected bit flip on either wire."""
    times = []
    for event in trace:
        if event.kind != SERIAL_FRAME or not event.data.get("flipped"):
            continue
        bits = event.data.get("received_bits") or event.data.get("sent_bits")
        duration = float(event.data.get("duration_s", 0.0))
        n_bits = len(bits) if bits else 8 * (5 + event.data.get("length", 0))
        bit_s = duration / n_bits if duration > 0 and n_bits else 0.0
        for position in event.data["flipped"]:
            times.append(event.time_s + position * bit_s)
    return times


def _sample_times(trace: TraceTable) -> list[float]:
    return [e.time_s for e in trace if e.kind == SEQ_SAMPLE]


# ---------------------------------------------------------------------------
# Lane rendering
# ---------------------------------------------------------------------------
def _value_at(steps: list[Step], t: float) -> Optional[Union[int, str]]:
    value: Optional[Union[int, str]] = None
    for step_t, step_value in steps:
        if step_t > t:
            break
        value = step_value
    return value


def _binary_lane(steps: list[Step], t0: float, dt: float, width: int) -> str:
    cells = []
    for index in range(width):
        value = _value_at(steps, t0 + (index + 0.5) * dt)
        if value is None:
            cells.append(IDLE)
        else:
            cells.append(HIGH if value else LOW)
    return "".join(cells)


def _bus_lane(steps: list[Step], t0: float, dt: float, width: int) -> str:
    cells: list[str] = []
    previous: Any = object()  # sentinel != any value
    index = 0
    while index < width:
        value = _value_at(steps, t0 + (index + 0.5) * dt)
        if value is None:
            cells.append(IDLE)
            previous = value
            index += 1
            continue
        if value != previous:
            # Segment boundary: '|' then the label, padded with '='.
            span = 1
            while index + span < width:
                nxt = _value_at(steps, t0 + (index + span + 0.5) * dt)
                if nxt != value:
                    break
                span += 1
            label = str(value)[: max(0, span - 1)]
            cells.append(TICK + label.ljust(span - 1, "="))
            previous = value
            index += span
        else:  # continuation after an idle gap collapse
            cells.append("=")
            index += 1
    return "".join(cells)


def _tick_lane(times: Sequence[float], t0: float, dt: float, width: int, mark: str) -> str:
    cells = [IDLE] * width
    for t in times:
        index = int((t - t0) / dt) if dt > 0 else 0
        if index == width and t <= t0 + width * dt:
            index = width - 1  # tick exactly on the window's end edge
        if 0 <= index < width:
            cells[index] = mark
    return "".join(cells)


def _is_binary(steps: list[Step]) -> bool:
    values = {value for _, value in steps if value is not None}
    return bool(values) and values <= {0, 1}


# ---------------------------------------------------------------------------
# Public renderers
# ---------------------------------------------------------------------------
def render_waveform(
    trace: TraceTable,
    channels: Optional[Sequence[str]] = None,
    width: int = 72,
    start_s: Optional[float] = None,
    stop_s: Optional[float] = None,
) -> str:
    """ASCII waveform, one lane per channel.

    ``channels`` defaults to every channel in the trace (first-seen
    order), with a ``serial.flip`` tick lane appended automatically when
    the window contains injected corruption and a ``seq.sample`` tick
    lane when it contains sample slots.
    """
    if width < 8:
        raise ValueError("waveform width must be at least 8 columns")
    if len(trace) == 0:
        return "(empty trace)"
    t0 = trace.start_s if start_s is None else start_s
    t1 = trace.stop_s if stop_s is None else stop_s
    if t1 <= t0:
        t1 = t0 + 1e-9
    dt = (t1 - t0) / width
    lane_names = list(channels) if channels is not None else trace.channels()
    if channels is None:
        if any(e.kind == SERIAL_FRAME and e.data.get("flipped") for e in trace):
            lane_names.append("serial.flip")

    lanes: list[tuple[str, str]] = []
    for name in lane_names:
        if name == "seq.sample":
            lanes.append((name, _tick_lane(_sample_times(trace), t0, dt, width, TICK)))
            continue
        if name == "serial.flip":
            lanes.append((name, _tick_lane(_flip_times(trace), t0, dt, width, FLIP)))
            continue
        steps = signal_steps(trace, name)
        if not steps:
            lanes.append((name, IDLE * width))
        elif _is_binary(steps):
            lanes.append((name, _binary_lane(steps, t0, dt, width)))
        else:
            lanes.append((name, _bus_lane(steps, t0, dt, width)))

    label_width = max(len(name) for name, _ in lanes)
    header = (
        f"t: {si_format(t0, 's')} .. {si_format(t1, 's')}  "
        f"({si_format(dt, 's/col')})"
    )
    lines = [header]
    for name, lane in lanes:
        lines.append(f"{name.ljust(label_width)}  {lane}")
    return "\n".join(lines)


def render_events(trace: TraceTable, limit: Optional[int] = None) -> str:
    """Aligned event table: seq, simulated time, kind, channel, detail."""
    events = trace.events
    clipped = ""
    if limit is not None and len(events) > limit:
        events = events[:limit]
        clipped = f"\n... {len(trace) - limit} more events"
    rows = [
        (event.seq, si_format(event.time_s, "s"), event.kind, event.channel, event.summary())
        for event in events
    ]
    title = f"trace: {len(trace)} events"
    if trace.n_dropped:
        title += f" (+{trace.n_dropped} dropped at the recorder limit)"
    return render_table(["seq", "t", "kind", "channel", "detail"], rows, title=title) + clipped


def render_html(trace: TraceTable, limit: Optional[int] = None) -> str:
    """Minimal notebook-ready HTML table of the event stream."""
    events = trace.events
    if limit is not None:
        events = events[:limit]
    head = "".join(
        f"<th>{name}</th>" for name in ("seq", "t [s]", "kind", "channel", "detail")
    )
    rows = []
    for event in events:
        corrupt = event.kind == SERIAL_FRAME and not event.data.get("ok", True)
        style = ' style="background:#fdd"' if corrupt or event.kind == "reg.reject" else ""
        cells = (
            str(event.seq),
            f"{event.time_s:.9g}",
            event.kind,
            event.channel,
            event.summary(),
        )
        rows.append(
            f"<tr{style}>" + "".join(f"<td>{_html.escape(cell)}</td>" for cell in cells) + "</tr>"
        )
    caption = f"{len(trace)} events"
    if trace.n_dropped:
        caption += f" (+{trace.n_dropped} dropped)"
    return (
        '<table class="repro-trace">'
        f"<caption>{caption}</caption>"
        f"<thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def render_frame_bits(event: TraceEvent, bytes_per_line: int = 8) -> str:
    """Bit-level dump of one serial frame, flips pointed out.

    Lines up the transmitted and received MSB-first bit streams byte by
    byte and draws ``^`` under every position where they differ — the
    view that localizes injected corruption to exact bits.
    """
    if event.kind != SERIAL_FRAME:
        raise ValueError(f"expected a {SERIAL_FRAME} event, got {event.kind!r}")
    sent = event.data.get("sent_bits")
    received = event.data.get("received_bits")
    if not sent or not received:
        raise ValueError(
            "frame was recorded without bit streams (recorder bit_level=False)"
        )
    status = "ok" if event.data.get("ok") else f"CORRUPT ({event.data.get('error')})"
    lines = [
        f"frame seq={event.seq} {event.data.get('direction')} "
        f"{event.data.get('command')} addr {event.data.get('address'):#04x} "
        f"len {event.data.get('length')} at {si_format(event.time_s, 's')} -- {status}"
    ]
    n_bytes = len(sent) // 8
    for start_byte in range(0, n_bytes, bytes_per_line):
        stop_byte = min(start_byte + bytes_per_line, n_bytes)
        chunks = slice(start_byte * 8, stop_byte * 8)
        sent_chunk = _group_bytes(sent[chunks])
        received_chunk = _group_bytes(received[chunks])
        marks = "".join(
            "^" if s != r else " " for s, r in zip(sent[chunks], received[chunks])
        )
        lines.append(f"  byte {start_byte:>3}  sent      {sent_chunk}")
        lines.append(f"            received  {received_chunk}")
        mark_line = _group_bytes(marks)
        if mark_line.strip():
            lines.append(f"            flipped   {mark_line}")
    return "\n".join(lines)


def _group_bytes(bits: str) -> str:
    return " ".join(bits[i : i + 8] for i in range(0, len(bits), 8))
