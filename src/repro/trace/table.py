"""Columnar trace container with a stable serialized schema.

A :class:`TraceTable` is the immutable snapshot of a capture: events in
``seq`` order, exposed both as typed records and as numpy columns
(``seq``, ``time_s``, ``kind``, ``channel``) for vectorized filtering.
Serialization round-trips byte-identically: ``to_jsonl`` emits a header
line plus one canonical JSON line per event, so "same spec + seed =>
byte-identical trace" is testable with a string comparison.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterator, Optional, Sequence

import numpy as np

from .events import SCHEMA_VERSION, TraceEvent


class TraceTable:
    """Ordered, columnar view of captured trace events."""

    def __init__(self, events: Sequence[TraceEvent], n_dropped: int = 0) -> None:
        self._events = list(events)
        if n_dropped < 0:
            raise ValueError("n_dropped must be non-negative")
        self.n_dropped = n_dropped
        self._columns: Optional[dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def column(self, name: str) -> np.ndarray:
        """One of the core columns: ``seq``, ``time_s``, ``kind``,
        ``channel``."""
        if self._columns is None:
            self._columns = {
                "seq": np.asarray([e.seq for e in self._events], dtype=np.int64),
                "time_s": np.asarray([e.time_s for e in self._events], dtype=float),
                "kind": np.asarray([e.kind for e in self._events], dtype=object),
                "channel": np.asarray([e.channel for e in self._events], dtype=object),
            }
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {sorted(self._columns)}"
            ) from None

    def channels(self) -> list[str]:
        """Channel names in first-seen order (the waveform lane order)."""
        seen: dict[str, None] = {}
        for event in self._events:
            seen.setdefault(event.channel, None)
        return list(seen)

    def kinds(self) -> list[str]:
        seen: dict[str, None] = {}
        for event in self._events:
            seen.setdefault(event.kind, None)
        return list(seen)

    @property
    def start_s(self) -> float:
        return float(self.column("time_s").min()) if self._events else 0.0

    @property
    def stop_s(self) -> float:
        """End of the last event (its timestamp plus any duration)."""
        if not self._events:
            return 0.0
        ends = self.column("time_s") + np.asarray(
            [float(e.data.get("duration_s", 0.0)) for e in self._events]
        )
        return float(ends.max())

    @property
    def duration_s(self) -> float:
        return self.stop_s - self.start_s

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------
    def filter(
        self,
        kinds: Optional[Sequence[str]] = None,
        channels: Optional[Sequence[str]] = None,
        start_s: Optional[float] = None,
        stop_s: Optional[float] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> "TraceTable":
        """Events matching every given criterion, original order kept.

        ``channels`` entries ending in ``.`` or ``*`` match as prefixes
        (``reg.`` selects every register channel)."""
        kind_set = set(kinds) if kinds is not None else None
        exact: Optional[set] = None
        prefixes: list[str] = []
        if channels is not None:
            exact = set()
            for name in channels:
                if name.endswith("*"):
                    prefixes.append(name[:-1])
                elif name.endswith("."):
                    prefixes.append(name)
                else:
                    exact.add(name)
        selected = []
        for event in self._events:
            if kind_set is not None and event.kind not in kind_set:
                continue
            if exact is not None or prefixes:
                if not (
                    (exact is not None and event.channel in exact)
                    or any(event.channel.startswith(p) for p in prefixes)
                ):
                    continue
            if start_s is not None and event.time_s < start_s:
                continue
            if stop_s is not None and event.time_s > stop_s:
                continue
            if predicate is not None and not predicate(event):
                continue
            selected.append(event)
        return TraceTable(selected, n_dropped=self.n_dropped)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        return [event.to_dict() for event in self._events]

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "n_events": len(self._events),
            "n_dropped": self.n_dropped,
            "events": self.to_dicts(),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TraceTable":
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"trace schema {schema!r} does not match this library's "
                f"{SCHEMA_VERSION}; re-record or convert the trace"
            )
        return cls(
            [TraceEvent.from_dict(entry) for entry in payload["events"]],
            n_dropped=int(payload.get("n_dropped", 0)),
        )

    def to_jsonl(self) -> str:
        """Header line + one canonical JSON line per event.  Canonical
        means sorted keys, no whitespace — byte-identical for identical
        captures."""
        header = json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "n_events": len(self._events),
                "n_dropped": self.n_dropped,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        lines = [header]
        lines.extend(event.to_json() for event in self._events)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "TraceTable":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            return cls([])
        first = json.loads(lines[0])
        if "schema" in first and "kind" not in first:
            if first["schema"] != SCHEMA_VERSION:
                raise ValueError(
                    f"trace schema {first['schema']!r} does not match this "
                    f"library's {SCHEMA_VERSION}; re-record or convert the trace"
                )
            n_dropped = int(first.get("n_dropped", 0))
            body = lines[1:]
        else:  # headerless stream (a raw recorder sink file)
            n_dropped = 0
            body = lines
        return cls(
            [TraceEvent.from_dict(json.loads(line)) for line in body],
            n_dropped=n_dropped,
        )

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceTable):
            return NotImplemented
        return self._events == other._events and self.n_dropped == other.n_dropped

    def __repr__(self) -> str:
        dropped = f" (+{self.n_dropped} dropped)" if self.n_dropped else ""
        return (
            f"<TraceTable {len(self._events)} events{dropped}, "
            f"{len(self.channels())} channels, {self.duration_s:.3g} s>"
        )
