"""The cycle-accurate trace recorder.

A :class:`TraceRecorder` is handed to the digital-path models
(:class:`~repro.chip.serial_interface.SerialLink`,
:class:`~repro.chip.registers.RegisterFile`, the chip classes) and
collects :class:`~repro.trace.events.TraceEvent` records as the models
run.  It owns the *simulated clock*: components advance it by derived
wire/frame time (bit counts over ``clock_hz``, ``ScanTiming`` slot
arithmetic), so timestamps are deterministic functions of the replayed
sequence and ``repro lint`` D102 (no wall clock) holds by construction.

Memory is bounded: the in-memory buffer keeps the first ``limit``
events and counts the rest as dropped; an optional ``sink`` (any object
with ``write(str)``) streams *every* event out as canonical JSON lines
regardless of the buffer, so arbitrarily long sequences can be captured
to disk in O(1) memory.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

from .events import (
    FAULT_INJECT,
    READOUT_DETECT,
    READOUT_GIVEUP,
    READOUT_RECOVER,
    READOUT_RETRY,
    REG_READ,
    REG_REJECT,
    REG_RESET,
    REG_WRITE,
    SEQ_SAMPLE,
    SEQ_STATE,
    SERIAL_FRAME,
    TraceEvent,
    frame_data,
)
from .table import TraceTable


class _Writable(Protocol):  # pragma: no cover - typing only
    def write(self, text: str) -> Any: ...


class TraceRecorder:
    """Capture digital-path events with a simulated clock.

    Parameters
    ----------
    limit:
        Maximum events retained in memory (the first ``limit`` captured;
        later ones are counted in ``n_dropped``).  ``None`` = unbounded.
    bit_level:
        Record per-bit DIN/DOUT streams inside serial-frame events.
        Costs ~8 chars/byte; turn off for very long captures.
    sink:
        Optional stream (``write(str)``): every event is appended as one
        canonical JSON line the moment it is recorded, independent of
        the in-memory buffer.
    """

    def __init__(
        self,
        limit: Optional[int] = 200_000,
        bit_level: bool = True,
        sink: Optional[_Writable] = None,
    ) -> None:
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative (or None for unbounded)")
        self.limit = limit
        self.bit_level = bit_level
        self.sink = sink
        self._events: list[TraceEvent] = []
        self._time_s = 0.0
        self.n_events = 0
        self.n_dropped = 0

    # ------------------------------------------------------------------
    # Simulated clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._time_s

    def advance(self, dt_s: float) -> float:
        """Move simulated time forward by ``dt_s`` (wire time of a
        frame, one counting frame, a settling pause...)."""
        if dt_s < 0:
            raise ValueError("cannot advance the simulated clock backwards")
        self._time_s += dt_s
        return self._time_s

    # ------------------------------------------------------------------
    # Core capture
    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        channel: str,
        data: Optional[dict[str, Any]] = None,
        time_s: Optional[float] = None,
    ) -> TraceEvent:
        """Record one event (at ``now`` unless ``time_s`` is given)."""
        event = TraceEvent(
            seq=self.n_events,
            time_s=self._time_s if time_s is None else time_s,
            kind=kind,
            channel=channel,
            data=data or {},
        )
        self.n_events += 1
        if self.sink is not None:
            self.sink.write(event.to_json() + "\n")
        if self.limit is None or len(self._events) < self.limit:
            self._events.append(event)
        else:
            self.n_dropped += 1
        return event

    def trace(self) -> TraceTable:
        """Snapshot the capture as a columnar :class:`TraceTable`."""
        return TraceTable(list(self._events), n_dropped=self.n_dropped)

    def clear(self) -> None:
        """Drop captured events and rewind the clock (a fresh capture
        with the same attachment points)."""
        self._events.clear()
        self._time_s = 0.0
        self.n_events = 0
        self.n_dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # Typed helpers — the one place event payload shapes are decided.
    # The chip models call these duck-typed (no import of this package),
    # so the schema lives here, next to the recorder.
    # ------------------------------------------------------------------
    def reg_write(
        self, name: str, address: int, value: int, old: int, source: str = "host"
    ) -> TraceEvent:
        return self.emit(
            REG_WRITE,
            f"reg.{name}",
            {"address": address, "value": value, "old": old, "source": source},
        )

    def reg_read(self, name: str, address: int, value: int) -> TraceEvent:
        return self.emit(REG_READ, f"reg.{name}", {"address": address, "value": value})

    def reg_reset(self, values: dict[str, int]) -> TraceEvent:
        return self.emit(REG_RESET, "reg", {"values": dict(values)})

    def reg_reject(
        self, name: str, address: int, value: int, reason: str, source: str = "host"
    ) -> TraceEvent:
        return self.emit(
            REG_REJECT,
            f"reg.{name}",
            {"address": address, "value": value, "reason": reason, "source": source},
        )

    def seq_state(self, state: str, detail: Optional[str] = None) -> TraceEvent:
        return self.emit(SEQ_STATE, "seq.state", {"state": state, "detail": detail})

    def seq_sample(
        self,
        row: int,
        col: int,
        time_s: float,
        slot_s: float,
        channel_index: Optional[int] = None,
        slot: Optional[int] = None,
    ) -> TraceEvent:
        data: dict[str, Any] = {"row": row, "col": col, "slot_s": slot_s}
        if channel_index is not None:
            data["channel_index"] = channel_index
        if slot is not None:
            data["slot"] = slot
        return self.emit(SEQ_SAMPLE, "seq.sample", data, time_s=time_s)

    def fault_inject(self, fault: str, channel: str, **details: Any) -> TraceEvent:
        """One injected fault occurrence (kind + injector-chosen detail:
        flip positions, stall length, corrupted bits...)."""
        return self.emit(FAULT_INJECT, f"fault.{channel}", {"fault": fault, **details})

    def readout_detect(
        self,
        channel: str,
        error: str,
        frame: Optional[int] = None,
        attempt: int = 0,
    ) -> TraceEvent:
        """The resilient controller caught corruption (checksum failure,
        register read-back mismatch)."""
        return self.emit(
            READOUT_DETECT,
            channel,
            {"frame": frame, "attempt": attempt, "error": error},
        )

    def readout_retry(
        self,
        channel: str,
        delay_s: float,
        frame: Optional[int] = None,
        attempt: int = 0,
    ) -> TraceEvent:
        """A bounded-backoff retry decision (the caller advances the
        simulated clock by ``delay_s`` separately)."""
        return self.emit(
            READOUT_RETRY,
            channel,
            {"frame": frame, "attempt": attempt, "delay_s": delay_s},
        )

    def readout_recover(
        self, channel: str, attempts: int, frame: Optional[int] = None
    ) -> TraceEvent:
        """Corruption cleared within the retry budget."""
        return self.emit(
            READOUT_RECOVER, channel, {"frame": frame, "attempts": attempts}
        )

    def readout_giveup(
        self,
        channel: str,
        attempts: int,
        frame: Optional[int] = None,
        sites_lost: int = 0,
    ) -> TraceEvent:
        """Retry budget exhausted: the affected sites are marked dead
        instead of raising."""
        return self.emit(
            READOUT_GIVEUP,
            channel,
            {"frame": frame, "attempts": attempts, "sites_lost": sites_lost},
        )

    def serial_frame(
        self,
        direction: str,
        command: str,
        address: int,
        length: int,
        sent: bytes,
        received: bytes,
        flipped: tuple[int, ...] = (),
        ok: bool = True,
        error: Optional[str] = None,
        duration_s: float = 0.0,
    ) -> TraceEvent:
        from .events import CHIP_TO_HOST, DIN, DOUT

        channel = DOUT if direction == CHIP_TO_HOST else DIN
        return self.emit(
            SERIAL_FRAME,
            channel,
            frame_data(
                direction,
                command,
                address,
                length,
                sent,
                received,
                flipped=flipped,
                ok=ok,
                error=error,
                duration_s=duration_s,
                bits=self.bit_level,
            ),
        )
