"""Typed events of the digital-path trace.

One event is one observable fact on the chip's control plane: a
register write crossing the serial link, a sequencer phase change, a
per-pixel sample slot, a serial frame down to its DIN/DOUT bit streams.
Every event carries a *simulated* timestamp — arithmetic over
:class:`~repro.chip.sequencer.ScanTiming`/:class:`~repro.chip.sequencer.SiteSequence`
and serial wire time, never the wall clock — so a recorded sequence is
a pure function of ``(spec, seed)``.

The serialized layout (``to_dict``/``from_dict``) is the trace schema;
:data:`SCHEMA_VERSION` gates round-trips so stored traces fail loudly
instead of silently re-interpreting fields.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

#: Version of the serialized event/trace layout.  Bump when field
#: names or meanings change; loaders reject mismatched traces.
SCHEMA_VERSION = 1

# Event kinds — the closed vocabulary of the digital path.  Kept as
# plain strings (not an Enum) so serialized traces read naturally and
# filters can be typed on a command line.
REG_WRITE = "reg.write"
REG_READ = "reg.read"
REG_RESET = "reg.reset"
REG_REJECT = "reg.reject"
SEQ_STATE = "seq.state"
SEQ_SAMPLE = "seq.sample"
SERIAL_FRAME = "serial.frame"
FAULT_INJECT = "fault.inject"
READOUT_DETECT = "readout.detect"
READOUT_RETRY = "readout.retry"
READOUT_RECOVER = "readout.recover"
READOUT_GIVEUP = "readout.giveup"

KINDS = (
    REG_WRITE,
    REG_READ,
    REG_RESET,
    REG_REJECT,
    SEQ_STATE,
    SEQ_SAMPLE,
    SERIAL_FRAME,
    FAULT_INJECT,
    READOUT_DETECT,
    READOUT_RETRY,
    READOUT_RECOVER,
    READOUT_GIVEUP,
)

#: Channel names of the serial wires, as rendered in waveforms.
DIN = "serial.din"
DOUT = "serial.dout"

#: Direction tags: host -> chip crosses DIN, chip -> host crosses DOUT.
HOST_TO_CHIP = "->"
CHIP_TO_HOST = "<-"


@dataclass(frozen=True)
class TraceEvent:
    """One record of the trace.

    ``seq`` is the capture order (dense, 0-based), ``time_s`` the
    simulated time, ``kind`` one of :data:`KINDS`, ``channel`` the
    named signal/site the event belongs to (``reg.generator_dac``,
    ``serial.din``, ``seq.state`` ...), and ``data`` the kind-specific
    payload with JSON-serializable values only.
    """

    seq: int
    time_s: float
    kind: str
    channel: str
    data: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError("event seq must be non-negative")
        if self.kind not in KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; known: {KINDS}")
        if not self.channel:
            raise ValueError("event channel must be non-empty")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "t": self.time_s,
            "kind": self.kind,
            "channel": self.channel,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TraceEvent":
        return cls(
            seq=int(payload["seq"]),
            time_s=float(payload["t"]),
            kind=payload["kind"],
            channel=payload["channel"],
            data=dict(payload.get("data", {})),
        )

    def to_json(self) -> str:
        """Canonical one-line JSON (sorted keys, no whitespace) — the
        unit of the byte-identical serialization contract."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Short human description for event tables."""
        d = self.data
        if self.kind == REG_WRITE:
            old = f" (was {d['old']})" if "old" in d else ""
            return f"{d.get('source', 'host')} write {d.get('value')}{old}"
        if self.kind == REG_READ:
            return f"read -> {d.get('value')}"
        if self.kind == REG_RESET:
            return f"reset {len(d.get('values', {}))} registers"
        if self.kind == REG_REJECT:
            return f"REJECTED write {d.get('value')}: {d.get('reason')}"
        if self.kind == SEQ_STATE:
            detail = f" ({d['detail']})" if d.get("detail") else ""
            return f"enter {d.get('state')}{detail}"
        if self.kind == SEQ_SAMPLE:
            where = f"({d.get('row')}, {d.get('col')})"
            return f"sample {where} slot {d.get('slot_s'):.3e} s"
        if self.kind == SERIAL_FRAME:
            status = "ok" if d.get("ok") else f"CORRUPT: {d.get('error')}"
            flips = f" flips={d['flipped']}" if d.get("flipped") else ""
            return (
                f"{d.get('direction')} {d.get('command')} addr {d.get('address'):#04x} "
                f"len {d.get('length')} [{status}]{flips}"
            )
        if self.kind == FAULT_INJECT:
            detail = {k: v for k, v in d.items() if k != "fault"}
            return f"INJECT {d.get('fault')} {detail}"
        if self.kind == READOUT_DETECT:
            where = f" frame {d['frame']}" if d.get("frame") is not None else ""
            return f"DETECT{where} attempt {d.get('attempt')}: {d.get('error')}"
        if self.kind == READOUT_RETRY:
            where = f" frame {d['frame']}" if d.get("frame") is not None else ""
            return f"retry{where} attempt {d.get('attempt')} after {d.get('delay_s'):.3e} s"
        if self.kind == READOUT_RECOVER:
            where = f" frame {d['frame']}" if d.get("frame") is not None else ""
            return f"recovered{where} in {d.get('attempts')} attempt(s)"
        if self.kind == READOUT_GIVEUP:
            where = f" frame {d['frame']}" if d.get("frame") is not None else ""
            return (
                f"GIVE UP{where} after {d.get('attempts')} attempt(s): "
                f"{d.get('sites_lost')} site(s) lost"
            )
        return str(dict(d))


def frame_data(
    direction: str,
    command: str,
    address: int,
    length: int,
    sent: bytes,
    received: bytes,
    flipped: tuple[int, ...] = (),
    ok: bool = True,
    error: Optional[str] = None,
    duration_s: float = 0.0,
    bits: bool = True,
) -> dict[str, Any]:
    """Build the :data:`SERIAL_FRAME` payload in its one canonical
    shape, shared by every producer so the schema cannot drift.

    ``sent`` is what the transmitter drove onto the wire, ``received``
    what arrived after any injected corruption; bytes are hex strings in
    the payload, and ``bits`` expands both to MSB-first '0'/'1' strings
    (the per-bit DIN/DOUT streams waveforms render).
    """
    payload: dict[str, Any] = {
        "direction": direction,
        "command": command,
        "address": address,
        "length": length,
        "sent": sent.hex(),
        "received": received.hex(),
        "flipped": list(flipped),
        "ok": bool(ok),
        "error": error,
        "duration_s": duration_s,
    }
    if bits:
        payload["sent_bits"] = "".join(f"{byte:08b}" for byte in sent)
        payload["received_bits"] = "".join(f"{byte:08b}" for byte in received)
    return payload
