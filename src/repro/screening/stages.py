"""Screening-stage models with Fig. 1 economics.

Fig. 1's two axes: moving from molecular assays toward clinical trials,
*costs/datapoint* rises and *datapoints/day* falls, each by orders of
magnitude.  A stage is a noisy thresholded classifier over one of the
library's latent scores, plus its cost/throughput book-keeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import RngLike, ensure_rng
from .compounds import CompoundLibrary


@dataclass(frozen=True)
class ScreeningStage:
    """One funnel stage.

    Parameters
    ----------
    name:
        Stage label as in Fig. 1.
    score_attr:
        Which latent compound score the stage observes.
    cost_per_datapoint:
        Currency units per measured compound.
    datapoints_per_day:
        Throughput of the stage.
    measurement_sigma:
        Noise added to the latent score before thresholding — sets the
        stage's sensitivity/specificity.
    pass_threshold:
        Compounds whose noisy score exceeds this survive.
    """

    name: str
    score_attr: str
    cost_per_datapoint: float
    datapoints_per_day: float
    measurement_sigma: float
    pass_threshold: float

    def __post_init__(self) -> None:
        if self.cost_per_datapoint <= 0 or self.datapoints_per_day <= 0:
            raise ValueError("cost and throughput must be positive")
        if self.measurement_sigma < 0:
            raise ValueError("measurement noise must be non-negative")
        if self.score_attr not in ("binding_score", "cell_score", "safety_score"):
            raise ValueError(f"unknown score attribute {self.score_attr!r}")

    # ------------------------------------------------------------------
    def screen(self, library: CompoundLibrary, rng: RngLike = None) -> np.ndarray:
        """Run the assay: returns the pass mask."""
        generator = ensure_rng(rng)
        scores = getattr(library, self.score_attr)
        observed = scores + generator.normal(0.0, self.measurement_sigma, size=library.size)
        return observed > self.pass_threshold

    def stage_cost(self, count: int) -> float:
        if count < 0:
            raise ValueError("count must be non-negative")
        return count * self.cost_per_datapoint

    def stage_days(self, count: int) -> float:
        if count < 0:
            raise ValueError("count must be non-negative")
        return count / self.datapoints_per_day

    def sensitivity_estimate(self, library: CompoundLibrary, rng: RngLike = None, trials: int = 5) -> float:
        """Empirical true-positive rate of the stage on this library."""
        generator = ensure_rng(rng)
        viable = library.is_viable
        if not viable.any():
            raise ValueError("library contains no viable compounds")
        hits = 0
        for _ in range(trials):
            mask = self.screen(library, generator)
            hits += int((mask & viable).sum())
        return hits / (trials * int(viable.sum()))


# ---------------------------------------------------------------------------
# The Fig. 1 funnel stages.  Costs/throughputs follow the figure's
# monotone orders-of-magnitude arrows; absolute values are representative
# industry numbers (currency units per datapoint).
# ---------------------------------------------------------------------------
def molecular_stage(cmos_array: bool = True) -> ScreeningStage:
    """Molecular-based assay: DNA/protein binding.

    The CMOS microarray variant is the paper's pitch: electronic
    readout, 128 sensor sites in parallel, no optical scanner — an
    order of magnitude cheaper and faster per datapoint than the
    conventional fluorescence workflow.
    """
    if cmos_array:
        return ScreeningStage(
            name="molecular (CMOS microarray)",
            score_attr="binding_score",
            cost_per_datapoint=0.1,
            datapoints_per_day=100_000.0,
            measurement_sigma=0.18,
            pass_threshold=0.55,
        )
    return ScreeningStage(
        name="molecular (optical)",
        score_attr="binding_score",
        cost_per_datapoint=1.0,
        datapoints_per_day=10_000.0,
        measurement_sigma=0.15,
        pass_threshold=0.55,
    )


def cell_based_stage(cmos_array: bool = True) -> ScreeningStage:
    """Cell-based assay: functional response of living cells.

    The CMOS neurochip variant records 16k sites at 2 kframe/s without
    patch pipettes or dyes.
    """
    if cmos_array:
        return ScreeningStage(
            name="cell-based (CMOS neurochip)",
            score_attr="cell_score",
            cost_per_datapoint=10.0,
            datapoints_per_day=2_000.0,
            measurement_sigma=0.12,
            pass_threshold=0.60,
        )
    return ScreeningStage(
        name="cell-based (patch clamp)",
        score_attr="cell_score",
        cost_per_datapoint=100.0,
        datapoints_per_day=100.0,
        measurement_sigma=0.10,
        pass_threshold=0.60,
    )


def animal_stage() -> ScreeningStage:
    return ScreeningStage(
        name="animal tests",
        score_attr="safety_score",
        cost_per_datapoint=10_000.0,
        datapoints_per_day=10.0,
        measurement_sigma=0.08,
        pass_threshold=0.65,
    )


def clinical_stage() -> ScreeningStage:
    return ScreeningStage(
        name="clinical trials",
        score_attr="safety_score",
        cost_per_datapoint=1_000_000.0,
        datapoints_per_day=0.5,
        measurement_sigma=0.05,
        pass_threshold=0.70,
    )


def default_funnel_stages(cmos: bool = True) -> list[ScreeningStage]:
    """The four Fig. 1 stages in order."""
    return [
        molecular_stage(cmos),
        cell_based_stage(cmos),
        animal_stage(),
        clinical_stage(),
    ]
