"""Drug-screening funnel (Fig. 1): compound libraries, stages, economics."""

from .compounds import CompoundLibrary
from .funnel import (
    FunnelResult,
    ScreeningFunnel,
    StageOutcome,
    compare_cmos_vs_conventional,
)
from .stages import (
    ScreeningStage,
    animal_stage,
    cell_based_stage,
    clinical_stage,
    default_funnel_stages,
    molecular_stage,
)

__all__ = [
    "CompoundLibrary",
    "FunnelResult",
    "ScreeningFunnel",
    "ScreeningStage",
    "StageOutcome",
    "animal_stage",
    "cell_based_stage",
    "clinical_stage",
    "compare_cmos_vs_conventional",
    "default_funnel_stages",
    "molecular_stage",
]
