"""The drug-screening funnel simulation (Fig. 1).

Runs a compound library through the staged screen, accumulating cost and
calendar time per stage, and reports the two Fig. 1 series —
datapoints/day (falling) and cost/datapoint (rising) — alongside the
attrition from ~10^5 compounds to ~1 drug candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.rng import RngLike, ensure_rng
from .compounds import CompoundLibrary
from .stages import ScreeningStage, default_funnel_stages


@dataclass(frozen=True)
class StageOutcome:
    """Book-keeping of one funnel stage."""

    stage_name: str
    candidates_in: int
    candidates_out: int
    viable_in: int
    viable_out: int
    cost: float
    days: float
    cost_per_datapoint: float
    datapoints_per_day: float

    @property
    def pass_rate(self) -> float:
        return self.candidates_out / self.candidates_in if self.candidates_in else 0.0

    @property
    def viable_retention(self) -> float:
        return self.viable_out / self.viable_in if self.viable_in else 1.0


@dataclass
class FunnelResult:
    """Full funnel outcome."""

    outcomes: list[StageOutcome]
    final_library: CompoundLibrary

    @property
    def total_cost(self) -> float:
        return sum(outcome.cost for outcome in self.outcomes)

    @property
    def total_days(self) -> float:
        return sum(outcome.days for outcome in self.outcomes)

    @property
    def survivors(self) -> int:
        return self.final_library.size

    @property
    def surviving_viable(self) -> int:
        return self.final_library.viable_count()

    def cost_series(self) -> list[float]:
        return [outcome.cost_per_datapoint for outcome in self.outcomes]

    def throughput_series(self) -> list[float]:
        return [outcome.datapoints_per_day for outcome in self.outcomes]

    def monotone_cost_increase(self) -> bool:
        """Fig. 1's rising cost arrow."""
        series = self.cost_series()
        return all(b > a for a, b in zip(series, series[1:]))

    def monotone_throughput_decrease(self) -> bool:
        """Fig. 1's falling datapoints/day arrow."""
        series = self.throughput_series()
        return all(b < a for a, b in zip(series, series[1:]))

    def as_rows(self) -> list[tuple]:
        return [
            (
                outcome.stage_name,
                outcome.candidates_in,
                outcome.candidates_out,
                outcome.datapoints_per_day,
                outcome.cost_per_datapoint,
                outcome.cost,
                outcome.days,
            )
            for outcome in self.outcomes
        ]


class ScreeningFunnel:
    """A staged screen over a compound library."""

    def __init__(self, stages: list[ScreeningStage] | None = None) -> None:
        self.stages = stages if stages is not None else default_funnel_stages()
        if not self.stages:
            raise ValueError("funnel needs at least one stage")

    def run(self, library: CompoundLibrary, rng: RngLike = None) -> FunnelResult:
        generator = ensure_rng(rng)
        outcomes: list[StageOutcome] = []
        current = library
        for stage in self.stages:
            mask = stage.screen(current, generator)
            survivors = current.subset(mask)
            outcomes.append(
                StageOutcome(
                    stage_name=stage.name,
                    candidates_in=current.size,
                    candidates_out=survivors.size,
                    viable_in=current.viable_count(),
                    viable_out=survivors.viable_count(),
                    cost=stage.stage_cost(current.size),
                    days=stage.stage_days(current.size),
                    cost_per_datapoint=stage.cost_per_datapoint,
                    datapoints_per_day=stage.datapoints_per_day,
                )
            )
            current = survivors
            if current.size == 0:
                break
        return FunnelResult(outcomes=outcomes, final_library=current)


def compare_cmos_vs_conventional(
    library: CompoundLibrary, rng: RngLike = None
) -> dict[str, FunnelResult]:
    """Run the same library through the CMOS-array funnel and the
    conventional one — the paper's economic argument in one call.

    .. deprecated::
        Delegates to :class:`repro.experiments.Runner` with a pair of
        ``ScreeningSpec`` (same numbers as before); call the Runner
        directly in new code.
    """
    import warnings

    from ..experiments import Runner, ScreeningSpec

    warnings.warn(
        "compare_cmos_vs_conventional is deprecated; run a pair of "
        "ScreeningSpec(cmos=True/False) through repro.experiments.Runner",
        DeprecationWarning,
        stacklevel=2,
    )
    generator = ensure_rng(rng)
    seed = int(generator.integers(0, 2**32 - 1))
    runner = Runner()
    results = {}
    for label, cmos in (("cmos", True), ("conventional", False)):
        spec = ScreeningSpec(library_size=library.size, cmos=cmos)
        result_set = runner.run(
            spec,
            rng_overrides={"funnel": seed},
            inputs={"library": library},
        )
        results[label] = result_set.artifacts["funnel"]
    return results
