"""Compound libraries for the drug-screening funnel (Fig. 1).

"... aiming to identify one (combination of) compound(s) out of millions
of (combinations of) compounds from a library as a suitable drug for a
given purpose."

Each compound carries latent ground truth (is it actually a viable
drug?) plus continuous scores that the noisy per-stage assays observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.rng import RngLike, ensure_rng


@dataclass
class CompoundLibrary:
    """A library of candidate compounds with hidden ground truth.

    Attributes
    ----------
    is_viable:
        Boolean ground truth per compound (would survive all stages in
        a perfect world).
    binding_score, cell_score, safety_score:
        Latent per-compound qualities in [0, 1] that the molecular,
        cell-based and animal/clinical stages respectively probe.
        Viable compounds score high on all three.
    """

    size: int
    is_viable: np.ndarray
    binding_score: np.ndarray
    cell_score: np.ndarray
    safety_score: np.ndarray

    @classmethod
    def generate(
        cls,
        size: int = 100_000,
        viable_rate: float = 1e-4,
        rng: RngLike = None,
    ) -> "CompoundLibrary":
        """Draw a library with ``viable_rate`` true positives.

        Viable compounds have scores Beta(8, 2)-distributed (high);
        non-viable ones Beta(2, 6) (low, with an overlapping tail that
        produces the false positives every real screen fights).
        """
        if size < 1:
            raise ValueError("library must contain at least one compound")
        if not 0.0 <= viable_rate <= 1.0:
            raise ValueError("viable rate must lie in [0, 1]")
        generator = ensure_rng(rng)
        viable = generator.uniform(size=size) < viable_rate
        # Guarantee at least one viable compound so funnels terminate
        # meaningfully in small test libraries.
        if not viable.any() and viable_rate > 0:
            viable[int(generator.integers(0, size))] = True

        def scores(flag: np.ndarray) -> np.ndarray:
            out = np.empty(size)
            n_pos = int(flag.sum())
            out[flag] = generator.beta(8.0, 2.0, size=n_pos)
            out[~flag] = generator.beta(2.0, 6.0, size=size - n_pos)
            return out

        return cls(
            size=size,
            is_viable=viable,
            binding_score=scores(viable),
            cell_score=scores(viable),
            safety_score=scores(viable),
        )

    def viable_count(self) -> int:
        return int(self.is_viable.sum())

    def subset(self, mask: np.ndarray) -> "CompoundLibrary":
        """Surviving sub-library after a screening stage."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.size,):
            raise ValueError("mask shape must match library size")
        return CompoundLibrary(
            size=int(mask.sum()),
            is_viable=self.is_viable[mask],
            binding_score=self.binding_score[mask],
            cell_score=self.cell_score[mask],
            safety_score=self.safety_score[mask],
        )
