"""Digital-path tracing: watch a DNA assay cross the 6-pin interface.

Every register write, sequencer phase, sample slot and serial frame of
a readout is capturable as a cycle-accurate trace — timestamps are
simulated time derived from ``ScanTiming``/``SiteSequence`` and serial
wire arithmetic, so the trace is a pure function of (spec, seed) and
serializes byte-identically.  This walkthrough:

1. replays a small assay under a ``TraceRecorder`` and renders the
   capture as an event table and an ASCII waveform,
2. re-runs it with two bits flipped in the counter readout, localizes
   the corruption to exact bit positions, and
3. shows the trace assertion API turning the corruption into a
   structured violation.

Run:  python examples/trace_readout.py
"""

from repro.experiments import DnaAssaySpec
from repro.trace import (
    SERIAL_FRAME,
    TraceAssertionError,
    assert_trace,
    readout_invariants,
    render_events,
    render_frame_bits,
    render_waveform,
    replay_readout,
)

SPEC = DnaAssaySpec(probe_count=4, replicates=4, target_subset=(0, 1))


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A clean replay: configure -> calibrate -> RUN_FRAME -> measure
    #    -> serial counter shift-out, all captured.
    # ------------------------------------------------------------------
    replay = replay_readout(SPEC, seed=3)
    trace = replay.trace
    print(f"captured {len(trace)} events over {trace.duration_s:.3g} s "
          f"of simulated time\n")
    print(render_events(trace, limit=12))

    print("\nwaveform (register buses, sequencer state, serial wires):\n")
    print(render_waveform(trace, width=72))

    # The readout worked: 128 counters came back over DOUT, and the
    # standard invariants (frames intact, writes accepted, calibration
    # before RUN_FRAME) all hold.
    assert replay.ok and len(replay.counters) == 128
    assert_trace(trace, readout_invariants())
    print("\nclean replay: all readout invariants hold")

    # Same spec + seed => byte-identical serialized trace.
    again = replay_readout(SPEC, seed=3)
    assert again.trace.to_jsonl() == trace.to_jsonl()
    print("replay is deterministic: serialized traces are byte-identical")

    # ------------------------------------------------------------------
    # 2. Inject corruption: flip bits 42 and 43 of the first READ_COUNTERS
    #    response chunk.  The checksum catches it; the trace localizes it.
    # ------------------------------------------------------------------
    corrupt = replay_readout(SPEC, seed=3, flip_bits=[42, 43])
    assert not corrupt.ok
    print(f"\ncorrupted replay failed as it should: {corrupt.readout_error}")

    bad_frame = next(
        e for e in corrupt.trace
        if e.kind == SERIAL_FRAME and not e.data["ok"]
    )
    print("\nbit-level localization of the corrupt frame:\n")
    print(render_frame_bits(bad_frame))

    # ------------------------------------------------------------------
    # 3. The assertion API reports the same failure as structured data.
    # ------------------------------------------------------------------
    try:
        assert_trace(corrupt.trace, readout_invariants())
    except TraceAssertionError as error:
        violation = error.violations[0]
        print(f"\ntrace assertion caught it: {violation.render()}")
        print(f"structured payload: rule={violation.rule!r} "
              f"channel={violation.channel!r} "
              f"flipped={violation.data['flipped']}")
    else:
        raise AssertionError("corruption must violate frames-intact")


if __name__ == "__main__":
    main()
