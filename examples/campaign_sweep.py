"""Campaign sweep: Fig. 4's concentration series × Fig. 6-style chip
Monte Carlo, through the declarative campaign front door.

One ``CampaignSpec`` replaces the for-loop: a ``grid`` axis sweeps the
target concentration (the Fig. 4 dose series) while ``replicates``
re-runs every dose on freshly seeded chips (chip-to-chip spread, the
Fig. 6 argument).  The process executor fans points out across cores —
bit-identical to a serial run — and the JSONL store streams results to
disk with a provenance manifest, so nothing accumulates in RAM and the
sweep can be reloaded and re-reported later without re-running.

Run:  python examples/campaign_sweep.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.campaigns import CampaignSpec, JsonlResultStore, manifest_summary, run_campaign
from repro.core import units
from repro.experiments import DnaAssaySpec


def main() -> None:
    campaign = CampaignSpec(
        base=DnaAssaySpec(
            probe_count=8,
            replicates=8,
            target_subset=(0, 1, 2, 3),
        ),
        grid={"concentration": tuple(c * units.nM for c in (0.1, 1.0, 10.0, 100.0))},
        replicates=4,  # 4 independently seeded chips per dose
        name="fig4-dose-series-x-chip-mc",
    )
    print(campaign.summary())

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "campaign"
        result = run_campaign(
            campaign,
            seed=1,
            executor="process",      # serial / thread give bit-identical results
            store="jsonl",
            out=out,
        )
        print()
        print(manifest_summary(result.manifest))
        print()
        print(result.table(metrics=["discrimination_ratio", "median_match_current_a"]))

        # The store is the archive: reload and aggregate without re-running.
        # Each replicate is an independently seeded chip, so the spread
        # of the *measured* match current across replicates is the
        # chip-to-chip variation (mismatch + measurement noise) on top
        # of the shared chemistry.
        loaded = JsonlResultStore.load(out)
        per_dose: dict = {}
        for meta, point_result in loaded.iter_results():
            match = point_result.select(point_result.column("is_match"))
            measured = float(np.median(match["current_estimate_a"]))
            per_dose.setdefault(meta["assignment"]["concentration"], []).append(measured)
        print()
        print("chip-to-chip spread of the measured match current (4 chips/dose):")
        for dose, medians in sorted(per_dose.items()):
            values = np.asarray(medians)
            spread = (values.max() - values.min()) / values.mean()
            print(
                f"  {dose / units.nM:6.1f} nM: "
                f"median {units.si_format(float(np.median(values)), 'A')}, "
                f"chip-to-chip spread {100 * spread:.2f}%"
            )


if __name__ == "__main__":
    main()
