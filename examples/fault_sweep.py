"""Fault injection: sweep readout fault rates and measure resilience.

Protocol-level failure modes — serial bit flips on the 6-pin link,
sequencer stalls, register upsets, stuck pixels — ride on experiment
specs as frozen, serializable entries and sweep as ordinary campaign
axes.  Occurrence patterns are a pure function of (spec, seed), so the
cache, every executor, and resume all work unchanged.  This
walkthrough:

1. runs a faulted assay once and reads the resilient-readout
   accounting (detected, retried, recovered, degraded) off its
   metrics,
2. sweeps ``faults.rate`` as a campaign axis and proves executor
   parity and cache-replay bit-identity under injected faults, and
3. analyzes the campaign with the ``fault_tolerance`` inference spec:
   detection rate, silent-corruption rate and site survival with
   Wilson and bootstrap confidence intervals.

Run:  python examples/fault_sweep.py
"""

import tempfile

from repro.campaigns import CampaignSpec, run_campaign
from repro.experiments import DnaAssaySpec, Runner

FAULTS = (
    # 30% of serial frames get 2 flipped bits (checksum-detectable);
    {"kind": "serial_bitflip", "rate": 0.3, "n_flips": 2},
    # 2% of pixels stick at zero (silent — no checksum sees them).
    {"kind": "stuck_pixel", "rate": 0.02},
)
SPEC = DnaAssaySpec(
    probe_count=4, replicates=4, target_subset=(0, 1), faults=FAULTS
)
CAMPAIGN = CampaignSpec(
    base=SPEC,
    grid={"faults.rate": (0.0, 0.1, 0.3, 0.6)},
    replicates=4,
    name="fault-rate-sweep",
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. One faulted run: the host reads through the resilient
    #    controller (detect -> bounded retry -> degrade) and the
    #    accounting lands in the metrics.
    # ------------------------------------------------------------------
    result = Runner(seed=3).run(SPEC, backend="object")
    m = result.metrics
    print(
        f"frames: {m['fault_frames_total']} total, "
        f"{m['fault_frames_corrupted']} corrupted, "
        f"{m['fault_frames_recovered']} recovered after "
        f"{m['fault_retries']} retries, {m['fault_frames_lost']} lost"
    )
    print(
        f"sites:  {m['fault_sites_dead']} dead, "
        f"{m['fault_sites_silent']} silently corrupted, "
        f"survival {m['fault_site_survival']:.3f}"
    )

    # Same (spec, seed) => byte-identical result, faults and all.
    assert Runner(seed=3).run(SPEC, backend="object").to_json() == result.to_json()
    print("faulted run is deterministic: serialized results are byte-identical")

    # ------------------------------------------------------------------
    # 2. Sweep the fault rate as a campaign axis.  A dotted grid key
    #    rewrites every fault entry, so one axis scales the whole
    #    fault environment.
    # ------------------------------------------------------------------
    serial = run_campaign(CAMPAIGN, seed=11)
    threaded = run_campaign(CAMPAIGN, seed=11, executor="thread", workers=4)
    reference = [r.to_json() for r in serial.results()]
    assert [r.to_json() for r in threaded.results()] == reference
    print(f"\n{len(serial)} points, thread executor bit-identical to serial")

    with tempfile.TemporaryDirectory() as tmp:
        cold = run_campaign(CAMPAIGN, seed=11, cache=tmp)
        warm = run_campaign(CAMPAIGN, seed=11, cache=tmp)
        assert warm.manifest["cache"]["hits"] == len(serial)
        assert [r.to_json() for r in warm.results()] == reference
    print("cache replay of the faulted campaign is bit-identical (100% hits)")

    # ------------------------------------------------------------------
    # 3. The fault_tolerance analysis: how often corruption was
    #    *detected* vs silent, and what fraction of sites survived,
    #    with confidence intervals — grouped by the swept rate.
    # ------------------------------------------------------------------
    report = serial.analyze()  # auto-picks fault_tolerance
    assert report.analysis["kind"] == "fault_tolerance"
    s = report.scalars
    print(
        f"\ndetection rate {s['detection_rate']:.3f} "
        f"[{s['detection_ci_low']:.3f}, {s['detection_ci_high']:.3f}]  "
        f"silent-corruption rate {s['silent_corruption_rate']:.4f}  "
        f"site survival {s['site_survival']:.3f}"
    )
    print()
    print(report.to_text())


if __name__ == "__main__":
    main()
