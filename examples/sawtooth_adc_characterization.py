"""Characterise the in-pixel current-to-frequency ADC (Fig. 3).

Reproduces both halves of the figure:
  * the sawtooth waveform with its tau1 (ramp), comparator delay and
    tau_delay (reset pulse) segments (direct device-model calls),
  * the frequency-vs-current transfer over the 1 pA - 100 nA range as
    an ``AdcTransferSpec`` experiment — the registry's fourth workload —
    with the dead-time compression and counting quantisation that bound
    the usable dynamic range.

Run:  python examples/sawtooth_adc_characterization.py
"""

from repro.core import render_kv, render_table, units
from repro.experiments import AdcTransferSpec, Runner


def main() -> None:
    runner = Runner(seed=1)
    spec = AdcTransferSpec(i_low_a=1e-12, i_high_a=100e-9, points_per_decade=4, frame_s=4.0)
    result = runner.run(spec)
    adc = result.artifacts["adc"]

    print(render_kv("ADC design values", [
        ("Cint", units.si_format(adc.cint.capacitance_f, "F")),
        ("comparator threshold", units.si_format(adc.swing_v, "V")),
        ("comparator delay", units.si_format(adc.comparator.delay_s, "s")),
        ("reset pulse (tau_delay)", units.si_format(adc.tau_delay_s, "s")),
        ("dead-time frequency limit", units.si_format(result.metrics["max_frequency_hz"], "Hz")),
    ]))

    # --- waveform segments (Fig. 3 sketch) ---------------------------------
    i_demo = 1e-9
    tau1 = adc.ramp_time(i_demo)
    period = adc.cycle_period(i_demo)
    print()
    print(render_kv(f"Sawtooth timing at {units.si_format(i_demo, 'A')}", [
        ("tau1 (ramp)", units.si_format(tau1, "s")),
        ("tau2 (full period)", units.si_format(period, "s")),
        ("frequency", units.si_format(1.0 / period, "Hz")),
        ("ideal I/(Cint*dV)", units.si_format(adc.ideal_frequency(i_demo), "Hz")),
    ]))
    wave = adc.waveform(i_demo, duration=3.5 * period, dt=period / 400)
    print(f"waveform peak {units.si_format(wave.peak_abs(), 'V')}, "
          f"{len(adc.reset_pulse_times(i_demo, 3.5 * period))} reset pulses in 3.5 periods")

    # --- transfer characteristic (the registered experiment) ---------------
    rows = [
        (units.si_format(row["current_a"], "A"),
         units.si_format(row["frequency_hz"], "Hz"),
         row["count"],
         units.si_format(row["measured_frequency_hz"], "Hz"),
         f"{row['relative_error'] * 100:+.2f}%")
        for row in result.to_rows()
    ]
    print()
    print(render_table(
        ["sensor current", "f (model)", "counts (4 s frame)", "f (counted)", "error"],
        rows, title="Transfer characteristic, 1 pA ... 100 nA"))
    print()
    print(render_kv("Summary", [
        ("log-log slope", f"{result.metrics['loglog_slope']:.4f}"),
        ("usable range (5% error)",
         f"{units.si_format(result.metrics['usable_low_a'], 'A')} ... "
         f"{units.si_format(result.metrics['usable_high_a'], 'A')}"),
        ("usable decades", f"{result.metrics['usable_decades']:.1f}"),
    ]))


if __name__ == "__main__":
    main()
