"""Quantify unknown target concentrations — the microarray's purpose.

"The purpose of DNA microarray chips is the parallel investigation
concerning the amount of specific DNA sequences in a given sample."
This example builds a calibration curve from standards measured on the
chip, then quantifies blinded samples and reports recovery accuracy.

Run:  python examples/concentration_quantification.py
"""

import numpy as np

from repro import DnaMicroarrayChip, ProbeLayout, Sample, perfect_target_for
from repro.core import render_table
from repro.dna import ConcentrationEstimator


def main() -> None:
    chip = DnaMicroarrayChip(rng=81)
    chip.configure_bias(0.45, -0.25)
    chip.auto_calibrate(frame_s=0.1, rng=82)

    layout = ProbeLayout.random_panel(4, replicates=16, rng=83)
    probe = layout.probes()[0]
    estimator = ConcentrationEstimator(chip, layout)

    standards = [1e-7, 1e-6, 1e-5, 1e-4]  # 0.1 nM ... 100 nM
    curve = estimator.calibrate(probe, standards, rng=84)
    print(render_table(
        ["standard", "median count"],
        [(f"{p.concentration * 1e6:g} nM", f"{p.median_count:.0f}") for p in curve.points],
        title="Calibration curve (known standards)"))

    unknowns = [3e-7, 2e-6, 7e-6, 5e-5]
    rows = []
    for i, true_conc in enumerate(unknowns):
        sample = Sample({perfect_target_for(probe, total_length=2000): true_conc})
        result = estimator.quantify(probe, sample, rng=100 + i)
        recovery = result.estimated_concentration / true_conc * 100
        rows.append((
            f"{true_conc * 1e6:g} nM",
            f"{result.estimated_concentration * 1e6:.3g} nM",
            f"[{result.ci_low * 1e6:.3g}, {result.ci_high * 1e6:.3g}]",
            f"{recovery:.1f}%",
            "yes" if result.in_calibrated_range else "no",
        ))
    print()
    print(render_table(
        ["true", "estimated", "68% CI (nM)", "recovery", "in range"],
        rows, title="Blinded-sample quantification"))
    print("\nRecoveries within ~15% across three decades: the chip's "
          "counts are a quantitative concentration readout, not just a "
          "match/mismatch classifier.")


if __name__ == "__main__":
    main()
